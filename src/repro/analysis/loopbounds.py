"""Automatic loop-bound inference from induction variables + interval facts.

For every natural loop with a single back edge the *continue literal* — the
predicate guarding the back-edge branch — is expanded through in-loop
predicate definitions into a conjunction of compare *atoms*, each of which
is a necessary condition for another iteration.  An atom of the shape
``counter rel limit`` where the counter is updated by a constant step once
per iteration and the limit is loop-invariant yields a closed-form bound on
the number of header executions; the loop bound is the minimum over all
bounded atoms.

Soundness is the contract: every formula below is an upper bound on header
executions for *any* concrete run whose entry state is described by the
abstract loop-entry state.  Derivation sketch (up-counting ``<``): with the
counter updated once per iteration by ``+c``, the value tested by the
compare in iteration ``i`` is ``t_i = v0 + c*(i - uoff)`` where ``uoff`` is
1 when the compare executes before the update and 0 otherwise.  Iteration
``i+1`` requires ``t_i < K``; maximising over the concrete ranges of ``v0``
and ``K`` gives ``H <= max(1, ceil((K.hi - v0.lo) / c) + uoff)``.  Guards
reject any parameter combination that could make the counter wrap (the
formulas reason over unbounded integers, the machine over 32 bits).

The audit rule reconciles inference with manual ``builder.loop_bound``
annotations: the *effective* bound is the minimum of the two; an annotation
tighter than anything provable is kept but flagged (``--strict`` turns the
flag into an error), an inferred bound tighter than the annotation is
adopted and reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import Format, Opcode
from ..program.cfg import ControlFlowGraph, Loop
from .domain import INT_MAX, INT_MIN, AbsState, Interval, const
from .fixpoint import FixpointResult

#: Statuses produced by the audit rule.
STATUS_MATCH = "match"
STATUS_ADOPTED = "adopted_inferred"
STATUS_TIGHTER = "annotation_tighter"
STATUS_ANNOTATED_ONLY = "annotated_only"
STATUS_INFERRED_ONLY = "inferred_only"
STATUS_UNBOUNDED = "unbounded"

_EXPAND_DEPTH = 8


@dataclass(frozen=True)
class InferredBound:
    """A proven upper bound on a loop header's executions per loop entry."""

    function: str
    header: str
    bound: int
    counter: int
    relation: str
    detail: str


@dataclass(frozen=True)
class LoopBoundAudit:
    """Reconciliation of an annotated and an inferred bound for one loop."""

    function: str
    header: str
    annotated: Optional[int]
    inferred: Optional[int]
    effective: Optional[int]
    status: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "header": self.header,
            "annotated": self.annotated,
            "inferred": self.inferred,
            "effective": self.effective,
            "status": self.status,
            "detail": self.detail,
        }


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _signed32(value: int) -> int:
    value &= 0xFFFF_FFFF
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


# Relation of "counter REL limit" when the counter is rs1; `flip` swaps
# sides, `negate` complements.
_REL_BY_OPCODE = {
    Opcode.CMPEQ: ("eq", False), Opcode.CMPIEQ: ("eq", False),
    Opcode.CMPNEQ: ("ne", False), Opcode.CMPINEQ: ("ne", False),
    Opcode.CMPLT: ("lt", False), Opcode.CMPILT: ("lt", False),
    Opcode.CMPLE: ("le", False), Opcode.CMPILE: ("le", False),
    Opcode.CMPULT: ("lt", True), Opcode.CMPIULT: ("lt", True),
    Opcode.CMPULE: ("le", True), Opcode.CMPIULE: ("le", True),
}
_FLIP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}
_NEGATE = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}


@dataclass
class _LoopContext:
    cfg: ControlFlowGraph
    fix: FixpointResult
    loop: Loop
    tail: str
    entry_state: AbsState
    idom: dict
    innermost: dict
    gpr_defs: dict
    pred_defs: dict
    positions: dict
    term_index: int
    clobber_gprs: frozenset
    clobber_preds: frozenset
    clobber_total: bool


def _dominates(idom: dict, a: str, b: str) -> bool:
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return a == node
        node = parent


def _build_context(cfg: ControlFlowGraph, fix: FixpointResult,
                   loop: Loop, tail: str) -> _LoopContext:
    gpr_defs: dict[int, list] = {}
    pred_defs: dict[int, list] = {}
    positions: dict[int, tuple[str, int]] = {}
    clobber_gprs: set[int] = set()
    clobber_preds: set[int] = set()
    clobber_total = False
    for label in loop.body:
        block = cfg.function.block(label)
        for index, instr in enumerate(block.instrs):
            positions[id(instr)] = (label, index)
            for reg in instr.gpr_defs():
                gpr_defs.setdefault(reg, []).append(instr)
            for pred in instr.pred_defs():
                pred_defs.setdefault(pred, []).append(instr)
            fmt = instr.info.fmt
            if fmt is Format.CALLR:
                clobber_total = True
            elif fmt is Format.CALL:
                summary = None
                if isinstance(instr.target, str):
                    summary = fix.may_writes.get(instr.target)
                if summary is None or summary.total:
                    clobber_total = True
                else:
                    clobber_gprs |= summary.gprs
                    clobber_preds |= summary.preds
    innermost: dict[str, str] = {}
    loops = cfg.natural_loops()
    for label in cfg.function.block_labels():
        containing = [lp for lp in loops if lp.contains(label)]
        if containing:
            innermost[label] = min(containing, key=lambda lp: len(lp.body)).header
    entry_state = fix.loop_entry_states.get(loop.header, AbsState())
    tail_block = cfg.function.block(tail)
    term = tail_block.terminator()
    term_index = len(tail_block.instrs)
    for index, instr in enumerate(tail_block.instrs):
        if instr is term:
            term_index = index
            break
    return _LoopContext(
        cfg=cfg, fix=fix, loop=loop, tail=tail,
        entry_state=entry_state, idom=cfg.dominators(),
        innermost=innermost, gpr_defs=gpr_defs, pred_defs=pred_defs,
        positions=positions, term_index=term_index,
        clobber_gprs=frozenset(clobber_gprs),
        clobber_preds=frozenset(clobber_preds),
        clobber_total=clobber_total,
    )


def _once_per_iteration(ctx: _LoopContext, instr: Instruction) -> bool:
    """True if ``instr`` provably executes exactly once per loop iteration."""
    if not instr.guard.is_always:
        return False
    pos = ctx.positions.get(id(instr))
    if pos is None:
        return False
    label = pos[0]
    if ctx.innermost.get(label) != ctx.loop.header:
        return False  # nested in an inner loop: may run many times
    if label == ctx.tail and pos[1] >= ctx.term_index:
        # In the tail's branch-delay region: its result is only visible to
        # the *next* iteration's branch decision.
        return False
    return _dominates(ctx.idom, label, ctx.tail)


def _expand_literal(ctx: _LoopContext, pred: int, negated: bool,
                    depth: int) -> list[tuple[Instruction, bool]]:
    """Compare atoms that are each necessary for the literal to hold."""
    if depth <= 0 or pred == 0:
        return []
    defs = ctx.pred_defs.get(pred, [])
    if len(defs) != 1:
        return []
    if ctx.clobber_total or pred in ctx.clobber_preds:
        return []
    instr = defs[0]
    if not _once_per_iteration(ctx, instr):
        return []
    fmt = instr.info.fmt
    if fmt in (Format.CMP_R, Format.CMP_I):
        return [(instr, negated)]
    if fmt is Format.PRED:
        op = instr.opcode
        if op is Opcode.PNOT:
            return _expand_literal(ctx, instr.ps1, not negated, depth - 1)
        operands = [instr.ps1, instr.ps2 if instr.ps2 is not None else 0]
        if (op is Opcode.PAND and not negated) or (op is Opcode.POR and negated):
            atoms = []
            for ps in operands:
                atoms.extend(_expand_literal(ctx, ps, negated, depth - 1))
            return atoms
    return []


def _invariant_interval(ctx: _LoopContext, reg: int) -> Optional[Interval]:
    """Interval of a loop-invariant register at loop entry (else ``None``)."""
    if reg in ctx.gpr_defs:
        return None
    if ctx.clobber_total or reg in ctx.clobber_gprs:
        return None
    value = ctx.entry_state.gpr(reg)
    if value.base is not None:
        return None
    return value.offset


def _step_of(ctx: _LoopContext, instr: Instruction, counter: int) -> Optional[int]:
    """Signed per-iteration step of ``counter`` from its update instruction."""
    op = instr.opcode
    if isinstance(instr.target, str):
        return None
    if op in (Opcode.ADDI, Opcode.ADDL):
        if instr.rs1 == counter and instr.imm is not None:
            return _signed32(instr.imm)
        return None
    if op in (Opcode.SUBI, Opcode.SUBL):
        if instr.rs1 == counter and instr.imm is not None:
            return -_signed32(instr.imm)
        return None
    if op in (Opcode.ADD, Opcode.SUB):
        if instr.rs1 == counter:
            other = instr.rs2
        elif op is Opcode.ADD and instr.rs2 == counter:
            other = instr.rs1
        else:
            # counter = x - counter / counter = a + b: not an induction update
            return None
        interval = _invariant_interval(ctx, other)
        if interval is None:
            return None
        value = interval.value()
        if value is None:
            return None
        return value if op is Opcode.ADD else -value
    return None


def _relation_bound(relation: str, unsigned: bool, v0: Interval,
                    limit: Interval, step: int, uoff: int) -> Optional[int]:
    """Closed-form header-execution bound for one atom (None = unbounded)."""
    c = abs(step)
    if relation == "eq":
        # The counter changes every iteration while the limit stands still:
        # equality can hold for at most one tested value.
        return 2
    if unsigned and (v0.lo < 0 or limit.lo < 0):
        return None
    if relation in ("lt", "le"):
        if step < 0:
            return None
        target = limit.hi if relation == "lt" else limit.hi + 1
        peak = target - 1 + c
        if peak > INT_MAX:
            return None  # counter could wrap before the exit test
        return max(1, _ceil_div(target - v0.lo, c) + uoff)
    if relation in ("gt", "ge"):
        if step > 0:
            return None
        target = limit.lo if relation == "gt" else limit.lo - 1
        trough = target + 1 - c
        if trough < (0 if unsigned else INT_MIN):
            return None  # counter could wrap (or go unsigned-negative)
        return max(1, _ceil_div(v0.hi - target, c) + uoff)
    if relation == "ne":
        if not limit.is_singleton:
            return None
        k = limit.lo
        if c != 1 and not v0.is_singleton:
            return None
        if step > 0:
            if v0.hi > k - c * (1 - uoff):
                return None  # could start past the target and run away
            if (k - v0.lo) % c != 0:
                return None
            return max(1, (k - v0.lo) // c + uoff)
        if v0.lo < k + c * (1 - uoff):
            return None
        if (v0.hi - k) % c != 0:
            return None
        return max(1, (v0.hi - k) // c + uoff)
    return None


def _atom_bound(ctx: _LoopContext, instr: Instruction,
                negated: bool) -> Optional[tuple[int, int, str]]:
    """Bound from one compare atom: ``(bound, counter_reg, relation)``."""
    rel = _REL_BY_OPCODE.get(instr.opcode)
    if rel is None:
        return None  # btest
    relation, unsigned = rel
    is_imm = instr.info.fmt is Format.CMP_I

    candidates = []
    rs1_defs = ctx.gpr_defs.get(instr.rs1, [])
    if len(rs1_defs) == 1:
        candidates.append((instr.rs1, False))
    if not is_imm:
        rs2_defs = ctx.gpr_defs.get(instr.rs2, [])
        if len(rs2_defs) == 1:
            candidates.append((instr.rs2, True))
    if len(candidates) != 1:
        return None  # zero or two in-loop-defined operands: not induction
    counter, flipped = candidates[0]
    if ctx.clobber_total or counter in ctx.clobber_gprs:
        return None

    update = ctx.gpr_defs[counter][0]
    if not _once_per_iteration(ctx, update):
        return None
    step = _step_of(ctx, update, counter)
    if step is None or step == 0:
        return None

    if is_imm:
        if instr.imm is None:
            return None
        limit = const(_signed32(instr.imm))
    else:
        limit_reg = instr.rs2 if not flipped else instr.rs1
        interval = _invariant_interval(ctx, limit_reg)
        if interval is None:
            return None
        limit = interval

    v0_val = ctx.entry_state.gpr(counter)
    if v0_val.base is not None:
        return None
    v0 = v0_val.offset

    if flipped:
        relation = _FLIP[relation]
    if negated:
        relation = _NEGATE[relation]

    upos = ctx.positions[id(update)]
    cpos = ctx.positions[id(instr)]
    if upos[0] == cpos[0]:
        update_first = upos[1] < cpos[1]
    else:
        update_first = _dominates(ctx.idom, upos[0], cpos[0])
    uoff = 0 if update_first else 1

    bound = _relation_bound(relation, unsigned, v0, limit, step, uoff)
    if bound is None:
        return None
    return min(bound, INT_MAX), counter, relation


def _continue_literal(ctx: _LoopContext) -> Optional[tuple[int, bool]]:
    """The predicate literal that must hold for the back edge to be taken."""
    block = ctx.cfg.function.block(ctx.tail)
    term = block.terminator()
    if term is None or term.opcode not in (Opcode.BR, Opcode.BRCF):
        return None
    if term.guard.is_always:
        return None  # unconditional back edge: the exit is elsewhere
    taken = term.target
    fallthrough = ctx.cfg.function.fallthrough_label(ctx.tail)
    if taken == ctx.loop.header:
        return term.guard.pred, term.guard.negate
    if fallthrough == ctx.loop.header:
        return term.guard.pred, not term.guard.negate
    return None


def infer_loop_bound(cfg: ControlFlowGraph, fix: FixpointResult,
                     loop: Loop) -> Optional[InferredBound]:
    """Infer a sound header-execution bound for one natural loop."""
    if len(loop.back_edges) != 1:
        return None
    (tail, _header), = loop.back_edges
    ctx = _build_context(cfg, fix, loop, tail)
    literal = _continue_literal(ctx)
    if literal is None:
        return None
    atoms = _expand_literal(ctx, literal[0], literal[1], _EXPAND_DEPTH)
    best: Optional[tuple[int, int, str]] = None
    for instr, negated in atoms:
        candidate = _atom_bound(ctx, instr, negated)
        if candidate is not None and (best is None or candidate[0] < best[0]):
            best = candidate
    if best is None:
        return None
    bound, counter, relation = best
    return InferredBound(
        function=cfg.function.name,
        header=loop.header,
        bound=bound,
        counter=counter,
        relation=relation,
        detail=(f"r{counter} {relation} limit, entry "
                f"{ctx.entry_state.gpr(counter)}"),
    )


def infer_loop_bounds(cfg: ControlFlowGraph,
                      fix: FixpointResult) -> dict[str, InferredBound]:
    """Inferred bounds for every natural loop of the function, by header."""
    bounds: dict[str, InferredBound] = {}
    for loop in cfg.natural_loops():
        inferred = infer_loop_bound(cfg, fix, loop)
        if inferred is not None:
            bounds[loop.header] = inferred
    return bounds


def audit_loop_bounds(cfg: ControlFlowGraph,
                      inferred: dict[str, InferredBound]) -> list[LoopBoundAudit]:
    """Apply the audit rule to every loop: effective = min(annotated, inferred).

    Statuses: ``match`` (equal), ``adopted_inferred`` (inference tighter),
    ``annotation_tighter`` (annotation claims more than analysis can prove —
    flagged, an error under ``--strict``), ``annotated_only`` (unverifiable
    annotation, trusted with a warning), ``inferred_only`` and ``unbounded``.
    """
    audits = []
    for loop in sorted(cfg.natural_loops(), key=lambda lp: lp.header):
        annotated = loop.bound
        bound = inferred.get(loop.header)
        inferred_value = bound.bound if bound is not None else None
        detail = bound.detail if bound is not None else ""
        if annotated is None and inferred_value is None:
            status, effective = STATUS_UNBOUNDED, None
        elif annotated is None:
            status, effective = STATUS_INFERRED_ONLY, inferred_value
        elif inferred_value is None:
            status, effective = STATUS_ANNOTATED_ONLY, annotated
        elif inferred_value < annotated:
            status, effective = STATUS_ADOPTED, inferred_value
        elif inferred_value == annotated:
            status, effective = STATUS_MATCH, annotated
        else:
            status, effective = STATUS_TIGHTER, annotated
            detail = (f"annotation {annotated} tighter than provable "
                      f"{inferred_value}; {detail}")
        audits.append(LoopBoundAudit(
            function=cfg.function.name,
            header=loop.header,
            annotated=annotated,
            inferred=inferred_value,
            effective=effective,
            status=status,
            detail=detail,
        ))
    return audits


__all__ = [
    "InferredBound",
    "LoopBoundAudit",
    "audit_loop_bounds",
    "infer_loop_bound",
    "infer_loop_bounds",
    "STATUS_MATCH",
    "STATUS_ADOPTED",
    "STATUS_TIGHTER",
    "STATUS_ANNOTATED_ONLY",
    "STATUS_INFERRED_ONLY",
    "STATUS_UNBOUNDED",
]
