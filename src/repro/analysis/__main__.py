"""Command-line front end: loop-bound audit and lint over the kernel suite.

Usage::

    python -m repro.analysis                    # audit loop bounds, all kernels
    python -m repro.analysis --lint             # IR lint pass (exit 1 on errors)
    python -m repro.analysis --lint --strict    # loose annotations become errors
    python -m repro.analysis --kernels fir_filter matmul
    python -m repro.analysis --json             # machine-readable output
"""

from __future__ import annotations

import argparse
import json
import sys

from ..workloads.suite import SUITES, build_kernel, resolve_kernels
from .facts import program_facts
from .lint import SEVERITY_ERROR, has_errors, lint_program
from .loopbounds import STATUS_TIGHTER, STATUS_UNBOUNDED


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static value analysis: loop-bound audit and IR lint.")
    parser.add_argument(
        "--kernels", nargs="+", default=["all"], metavar="NAME",
        help="kernel or suite names (default: all; suites: %s)"
             % ", ".join(sorted(SUITES)))
    parser.add_argument(
        "--lint", action="store_true",
        help="run the IR lint pass instead of the loop-bound audit")
    parser.add_argument(
        "--strict", action="store_true",
        help="treat annotations tighter than the provable bound as errors")
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table")
    parser.add_argument(
        "--quiet", action="store_true", help="only print failures")
    return parser


def _audit_rows(name: str, facts) -> list[dict]:
    rows = []
    for audit in facts.loop_audits():
        row = audit.to_dict()
        row["kernel"] = name
        rows.append(row)
    return rows


def _run_audit(kernel_names: list[str], as_json: bool, quiet: bool,
               strict: bool) -> int:
    rows = []
    for name in kernel_names:
        kernel = build_kernel(name)
        rows.extend(_audit_rows(name, program_facts(kernel.program)))
    failures = [
        row for row in rows
        if row["status"] in (STATUS_UNBOUNDED, STATUS_TIGHTER)
    ]
    if as_json:
        print(json.dumps({"loops": rows, "failures": len(failures)}, indent=2))
    else:
        header = (f"{'kernel':<16} {'function':<16} {'header':<20} "
                  f"{'annot':>6} {'infer':>6} {'effective':>9}  status")
        printed = False
        for row in rows:
            if quiet and row not in failures:
                continue
            if not printed:
                print(header)
                print("-" * len(header))
                printed = True

            def fmt(value):
                return "-" if value is None else str(value)

            print(f"{row['kernel']:<16} {row['function']:<16} "
                  f"{row['header']:<20} {fmt(row['annotated']):>6} "
                  f"{fmt(row['inferred']):>6} {fmt(row['effective']):>9}  "
                  f"{row['status']}")
        total = len(rows)
        inferred = sum(1 for row in rows if row["inferred"] is not None)
        print(f"\n{total} loops across {len(kernel_names)} kernels; "
              f"{inferred} with inferred bounds; {len(failures)} flagged")
    bad = [row for row in failures if row["status"] == STATUS_UNBOUNDED]
    if strict:
        bad = failures
    return 1 if bad else 0


def _run_lint(kernel_names: list[str], as_json: bool, quiet: bool,
              strict: bool) -> int:
    all_findings = []
    failed = False
    for name in kernel_names:
        kernel = build_kernel(name)
        single_path = bool(kernel.attrs.get("single_path"))
        findings = lint_program(kernel.program, single_path=single_path)
        failed = failed or has_errors(findings, strict=strict)
        if as_json:
            all_findings.extend(
                dict(f.to_dict(), kernel=name) for f in findings)
            continue
        for finding in findings:
            if quiet and finding.severity != SEVERITY_ERROR:
                continue
            print(f"{name}: {finding}")
    if as_json:
        print(json.dumps({"findings": all_findings,
                          "failed": failed}, indent=2))
    elif not failed and not quiet:
        print(f"lint: {len(kernel_names)} kernels clean "
              "(no errors%s)" % (", strict" if strict else ""))
    return 1 if failed else 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        kernel_names = resolve_kernels(args.kernels)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.lint:
        return _run_lint(kernel_names, args.json, args.quiet, args.strict)
    return _run_audit(kernel_names, args.json, args.quiet, args.strict)


if __name__ == "__main__":
    sys.exit(main())
