"""Address-range analysis: classify every memory access of a function.

Each load/store computes ``rs1 + imm``; the fixpoint states track register
values as *symbol + offset interval*, so most accesses resolve to a named
data item with a bounded byte-offset range.  The classification feeds two
consumers:

* the WCET analyzer restricts the static-cache persistence argument to the
  data items the program can actually reach (untouched lines are never
  filled), and
* the lint pass reports accesses whose typed opcode disagrees with the
  region their address resolves to, and accesses provably outside their
  item's extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.opcodes import Format, MemType
from ..program.cfg import ControlFlowGraph
from ..program.program import DataSpace, Program
from .domain import const_val
from .fixpoint import FixpointResult

#: Region names used in reports.
REGION_BY_SPACE = {
    DataSpace.CONST: "static",
    DataSpace.DATA: "static",
    DataSpace.HEAP: "heap",
    DataSpace.LOCAL: "scratchpad",
}

#: The region each typed access opcode is architecturally meant for.
REGION_BY_MEM_TYPE = {
    MemType.STATIC: "static",
    MemType.OBJECT: "heap",
    MemType.STACK: "stack",
    MemType.LOCAL: "scratchpad",
    MemType.MAIN: "main",
}


@dataclass(frozen=True)
class AccessFact:
    """Classification of one memory access site."""

    function: str
    block: str
    index: int
    opcode: str
    is_store: bool
    mem_type: str
    #: Region the *address* resolves to ("static", "heap", "scratchpad",
    #: "stack", "unknown").
    region: str
    symbol: Optional[str] = None
    offset_lo: Optional[int] = None
    offset_hi: Optional[int] = None
    #: False when the access is provably outside the item's extent,
    #: True when provably inside, None when undecidable.
    in_bounds: Optional[bool] = None

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "opcode": self.opcode,
            "is_store": self.is_store,
            "mem_type": self.mem_type,
            "region": self.region,
            "symbol": self.symbol,
            "offset": [self.offset_lo, self.offset_hi],
            "in_bounds": self.in_bounds,
        }


def classify_accesses(cfg: ControlFlowGraph, fix: FixpointResult,
                      program: Program) -> list[AccessFact]:
    """Classify every load/store of the function's reachable blocks."""
    facts = []
    for label in sorted(fix.in_states):
        for position, (instr, state) in enumerate(fix.block_states(label)):
            fmt = instr.info.fmt
            if fmt not in (Format.LOAD, Format.STORE):
                continue
            mem_type = instr.info.mem_type
            address = state.gpr(instr.rs1)
            if instr.imm:
                address = address.add(const_val(instr.imm))
            symbol = address.base
            region = "unknown"
            offset_lo = offset_hi = None
            in_bounds = None
            if mem_type is MemType.STACK:
                # Stack-cache accesses are relative to the stack pointer,
                # not a data symbol; the region is structural.
                region = "stack"
            elif symbol is not None and symbol in program.data:
                item = program.data_item(symbol)
                region = REGION_BY_SPACE.get(item.space, "unknown")
                offset = address.offset
                if not offset.is_top:
                    offset_lo, offset_hi = offset.lo, offset.hi
                    width = instr.info.width or 1
                    if 0 <= offset.lo and offset.hi + width <= item.size_bytes:
                        in_bounds = True
                    elif (offset.lo >= item.size_bytes
                          or offset.hi + width <= 0):
                        in_bounds = False
            facts.append(AccessFact(
                function=cfg.function.name,
                block=label,
                index=position,
                opcode=instr.opcode.value,
                is_store=fmt is Format.STORE,
                mem_type=mem_type.name.lower() if mem_type else "none",
                region=region,
                symbol=symbol,
                offset_lo=offset_lo,
                offset_hi=offset_hi,
                in_bounds=in_bounds,
            ))
    return facts


def accessed_static_items(facts: list[AccessFact],
                          write_allocate: bool = False) -> Optional[set[str]]:
    """Static data items whose cache lines can be filled, or ``None``.

    Only reads allocate static-cache lines unless the cache is configured
    write-allocate.  If any allocating static access has an unresolved
    address the answer degrades to ``None`` (conservative: assume the whole
    image is reachable).
    """
    items: set[str] = set()
    for fact in facts:
        if fact.mem_type != "static":
            continue
        if fact.is_store and not write_allocate:
            continue
        if fact.symbol is None:
            return None
        items.add(fact.symbol)
    return items


def region_mismatches(facts: list[AccessFact]) -> list[AccessFact]:
    """Accesses whose typed opcode targets a different region than the
    address resolves to (e.g. a scratchpad load of a static symbol)."""
    mismatches = []
    for fact in facts:
        expected = REGION_BY_MEM_TYPE.get(MemType[fact.mem_type.upper()]) \
            if fact.mem_type != "none" else None
        if fact.region == "unknown" or expected is None:
            continue
        if expected == "main":
            continue  # typed bypass accesses may target any region
        if fact.region != expected:
            mismatches.append(fact)
    return mismatches


def out_of_bounds(facts: list[AccessFact]) -> list[AccessFact]:
    """Accesses provably outside their resolved item's extent."""
    return [fact for fact in facts if fact.in_bounds is False]


__all__ = [
    "AccessFact",
    "REGION_BY_MEM_TYPE",
    "REGION_BY_SPACE",
    "accessed_static_items",
    "classify_accesses",
    "out_of_bounds",
    "region_mismatches",
]
