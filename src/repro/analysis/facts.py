"""Whole-program analysis facts: one object bundling every derived result.

``program_facts(program)`` is the cached entry point used by the WCET
analyzer, the verifier and the lint pass.  It runs, per top-level function
(sub-functions created by the method-cache splitter are merged into their
parent, mirroring the analyzer's own CFG construction so loop headers and
edges line up):

1. the interval fixpoint (:mod:`repro.analysis.fixpoint`),
2. loop-bound inference + the annotation audit
   (:mod:`repro.analysis.loopbounds`),
3. infeasible-path detection (:mod:`repro.analysis.infeasible`),
4. address classification (:mod:`repro.analysis.addresses`).

The cache is keyed by object identity with a weak reference guard, so a
program analysed for WCET, verification and lint in the same process pays
for the fixpoint once.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Optional

from ..isa.opcodes import Opcode
from ..program.cfg import ControlFlowGraph
from ..program.function import Function
from ..program.program import Program
from ..wcet.ipet import FlowConstraint
from .addresses import AccessFact, accessed_static_items, classify_accesses
from .fixpoint import FixpointResult, analyse_function, may_write_summaries
from .infeasible import InfeasibleFact, find_infeasible_facts
from .loopbounds import (
    InferredBound,
    LoopBoundAudit,
    audit_loop_bounds,
    infer_loop_bounds,
)


def merged_function(program: Program, function: Function) -> Function:
    """Merge a function with its method-cache sub-functions for analysis.

    Mirrors ``WcetAnalyzer._merged_function``: ``brcf`` transfers into a
    sub-function become plain branches to its entry label, so both sides
    build the same CFG (same block labels, same loop headers).
    """
    subfunctions = [
        func for func in program.functions.values()
        if func.is_subfunction and func.parent == function.name
    ]
    if not subfunctions:
        return function
    merged = function.copy()
    entry_labels = {sub.name: sub.entry_block().label for sub in subfunctions}
    for sub in subfunctions:
        merged.blocks.extend(block.copy() for block in sub.blocks)
    for block in merged.blocks:
        rewritten = []
        changed = False
        for instr in block.instrs:
            if instr.opcode is Opcode.BRCF and instr.target in entry_labels:
                rewritten.append(instr.with_target(entry_labels[instr.target]))
                changed = True
            else:
                rewritten.append(instr)
        if changed:
            bundles = block.bundles
            block.instrs = rewritten
            block.bundles = bundles
    return merged


@dataclass
class FunctionFacts:
    """Analysis results of one top-level function (sub-functions merged)."""

    name: str
    function: Function
    cfg: ControlFlowGraph
    fixpoint: FixpointResult
    inferred_bounds: dict[str, InferredBound] = field(default_factory=dict)
    audits: list[LoopBoundAudit] = field(default_factory=list)
    infeasible: list[InfeasibleFact] = field(default_factory=list)
    accesses: list[AccessFact] = field(default_factory=list)

    def effective_bounds(self) -> dict[str, int]:
        """Header label -> effective bound (audit rule applied)."""
        return {
            audit.header: audit.effective
            for audit in self.audits if audit.effective is not None
        }

    def flow_constraints(self) -> list[FlowConstraint]:
        return [fact.constraint for fact in self.infeasible]


@dataclass
class ProgramFacts:
    """Analysis results of a whole program, per top-level function."""

    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    may_writes: dict = field(default_factory=dict)

    def function_facts(self, name: str) -> Optional[FunctionFacts]:
        return self.functions.get(name)

    def effective_loop_bounds(self) -> dict[tuple[str, str], int]:
        """All effective bounds as ``(function, header) -> bound``."""
        bounds: dict[tuple[str, str], int] = {}
        for facts in self.functions.values():
            for header, bound in facts.effective_bounds().items():
                bounds[(facts.name, header)] = bound
        return bounds

    def loop_audits(self) -> list[LoopBoundAudit]:
        audits: list[LoopBoundAudit] = []
        for name in sorted(self.functions):
            audits.extend(self.functions[name].audits)
        return audits

    def infeasible_facts(self) -> list[InfeasibleFact]:
        facts: list[InfeasibleFact] = []
        for name in sorted(self.functions):
            facts.extend(self.functions[name].infeasible)
        return facts

    def accessed_static_items(self,
                              write_allocate: bool = False
                              ) -> Optional[set[str]]:
        """Union of provably reachable static items, or ``None`` if any
        function leaves a static access unresolved."""
        items: set[str] = set()
        for facts in self.functions.values():
            partial = accessed_static_items(facts.accesses, write_allocate)
            if partial is None:
                return None
            items |= partial
        return items


def analyse_program(program: Program) -> ProgramFacts:
    """Run the full analysis over every top-level function of ``program``."""
    may_writes = may_write_summaries(program)
    result = ProgramFacts(may_writes=may_writes)
    for function in program.functions.values():
        if function.is_subfunction:
            continue
        merged = merged_function(program, function)
        cfg = ControlFlowGraph.build(merged)
        fix = analyse_function(cfg, may_writes)
        inferred = infer_loop_bounds(cfg, fix)
        result.functions[function.name] = FunctionFacts(
            name=function.name,
            function=merged,
            cfg=cfg,
            fixpoint=fix,
            inferred_bounds=inferred,
            audits=audit_loop_bounds(cfg, inferred),
            infeasible=find_infeasible_facts(cfg, fix),
            accesses=classify_accesses(cfg, fix, program),
        )
    return result


# Cache keyed by program identity; the weak reference both guards against
# id() reuse and evicts the entry when the program is garbage collected.
_FACTS_CACHE: dict[int, tuple] = {}


def program_facts(program: Program) -> ProgramFacts:
    """Cached :func:`analyse_program` (programs are not mutated after link)."""
    key = id(program)
    entry = _FACTS_CACHE.get(key)
    if entry is not None and entry[0]() is program:
        return entry[1]
    facts = analyse_program(program)
    ref = weakref.ref(program, lambda _ref, key=key: _FACTS_CACHE.pop(key, None))
    _FACTS_CACHE[key] = (ref, facts)
    return facts


__all__ = [
    "FunctionFacts",
    "ProgramFacts",
    "analyse_program",
    "merged_function",
    "program_facts",
]
