"""IR verifier / lint pass over builder programs.

Checks (each producing a :class:`LintFinding` with a stable ``code``):

* ``unreachable-block`` — a block no path from the function entry reaches.
* ``unbounded-loop`` — a natural loop with neither a bound annotation nor an
  inferable bound; the WCET analysis will fail on it (error).
* ``loose-annotation`` — an annotation claiming fewer iterations than the
  analysis can prove possible; kept, but flagged (``--strict`` escalates).
* ``unverified-annotation`` — an annotation the analysis cannot check at all.
* ``reserved-register-write`` — builder-level code writing registers the
  compiler reserves (``r26``–``r28``/``p5``–``p7`` for the single-path
  transformation, ``r29``–``r31`` for prologue/epilogue code).
* ``single-path-violation`` — with ``single_path=True``: a conditional
  branch that is not the canonical counted-loop exit, i.e. control flow
  that still depends on input data.
* ``region-mismatch`` — a typed access whose resolved address lives in a
  different region than the opcode's cache (e.g. ``lwl`` of a static item).
* ``out-of-bounds-access`` — an access provably outside its data item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..compiler.single_path import COUNTER_REG, EXIT_PRED
from ..isa.opcodes import Opcode
from ..program.program import Program
from .addresses import out_of_bounds, region_mismatches
from .facts import ProgramFacts, program_facts
from .loopbounds import (
    STATUS_ANNOTATED_ONLY,
    STATUS_TIGHTER,
    STATUS_UNBOUNDED,
)

#: Registers the compilation pipeline reserves (DESIGN.md conventions).
RESERVED_GPRS = frozenset(range(26, 32))
RESERVED_PREDS = frozenset(range(5, 8))

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    function: str
    block: Optional[str]
    code: str
    severity: str
    message: str

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "block": self.block,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }

    def __str__(self) -> str:
        where = f"{self.function}/{self.block}" if self.block else self.function
        return f"{self.severity}: {where}: {self.message} [{self.code}]"


def _check_reachability(facts: ProgramFacts) -> list[LintFinding]:
    findings = []
    for name in sorted(facts.functions):
        func_facts = facts.functions[name]
        reachable = func_facts.cfg.reachable()
        for label in func_facts.function.block_labels():
            if label not in reachable:
                findings.append(LintFinding(
                    function=name, block=label, code="unreachable-block",
                    severity=SEVERITY_WARNING,
                    message="no path from the function entry reaches this "
                            "block"))
    return findings


def _check_loop_bounds(facts: ProgramFacts) -> list[LintFinding]:
    findings = []
    for audit in facts.loop_audits():
        if audit.status == STATUS_UNBOUNDED:
            findings.append(LintFinding(
                function=audit.function, block=audit.header,
                code="unbounded-loop", severity=SEVERITY_ERROR,
                message="loop has no bound annotation and no bound could "
                        "be inferred; the WCET is unbounded"))
        elif audit.status == STATUS_TIGHTER:
            findings.append(LintFinding(
                function=audit.function, block=audit.header,
                code="loose-annotation", severity=SEVERITY_WARNING,
                message=(f"annotation {audit.annotated} is tighter than the "
                         f"provable bound {audit.inferred}; the analysis "
                         "cannot confirm it")))
        elif audit.status == STATUS_ANNOTATED_ONLY:
            findings.append(LintFinding(
                function=audit.function, block=audit.header,
                code="unverified-annotation", severity=SEVERITY_WARNING,
                message=(f"annotation {audit.annotated} could not be "
                         "cross-checked against an inferred bound")))
    return findings


def _check_reserved_registers(program: Program) -> list[LintFinding]:
    findings = []
    for function in program.functions.values():
        for block in function.blocks:
            for instr in block.instrs:
                bad_gprs = sorted(set(instr.gpr_defs()) & RESERVED_GPRS)
                bad_preds = sorted(set(instr.pred_defs()) & RESERVED_PREDS)
                for reg in bad_gprs:
                    findings.append(LintFinding(
                        function=function.name, block=block.label,
                        code="reserved-register-write",
                        severity=SEVERITY_WARNING,
                        message=(f"{instr.opcode.value} writes r{reg}, which "
                                 "is reserved for the compiler")))
                for pred in bad_preds:
                    findings.append(LintFinding(
                        function=function.name, block=block.label,
                        code="reserved-register-write",
                        severity=SEVERITY_WARNING,
                        message=(f"{instr.opcode.value} writes p{pred}, which "
                                 "is reserved for the compiler")))
    return findings


def _check_single_path(facts: ProgramFacts) -> list[LintFinding]:
    """After the single-path transformation the only conditional branches
    left are the canonical counted-loop exits: guarded by the reserved exit
    predicate, which a ``cmpineq`` on the reserved counter defines."""
    findings = []
    for name in sorted(facts.functions):
        func_facts = facts.functions[name]
        for block in func_facts.function.blocks:
            term = block.terminator()
            if term is None or term.opcode is not Opcode.BR:
                continue
            if term.guard.is_always:
                continue
            ok = term.guard.pred == EXIT_PRED and not term.guard.negate
            if ok:
                defs = [
                    instr for instr in block.instrs
                    if EXIT_PRED in instr.pred_defs()
                ]
                ok = (len(defs) == 1
                      and defs[0].opcode is Opcode.CMPINEQ
                      and defs[0].rs1 == COUNTER_REG)
            if not ok:
                findings.append(LintFinding(
                    function=name, block=block.label,
                    code="single-path-violation", severity=SEVERITY_ERROR,
                    message=(f"conditional branch on p{term.guard.pred} is "
                             "not a counted-loop exit; execution path "
                             "depends on input data")))
    return findings


def _check_accesses(facts: ProgramFacts) -> list[LintFinding]:
    findings = []
    for name in sorted(facts.functions):
        func_facts = facts.functions[name]
        for fact in region_mismatches(func_facts.accesses):
            findings.append(LintFinding(
                function=name, block=fact.block, code="region-mismatch",
                severity=SEVERITY_WARNING,
                message=(f"{fact.opcode} targets the {fact.mem_type} cache "
                         f"but resolves to {fact.symbol!r} in the "
                         f"{fact.region} region")))
        for fact in out_of_bounds(func_facts.accesses):
            findings.append(LintFinding(
                function=name, block=fact.block, code="out-of-bounds-access",
                severity=SEVERITY_ERROR,
                message=(f"{fact.opcode} accesses {fact.symbol!r} at byte "
                         f"offset [{fact.offset_lo}, {fact.offset_hi}], "
                         "outside the item")))
    return findings


def lint_program(program: Program, facts: Optional[ProgramFacts] = None,
                 single_path: bool = False,
                 check_reserved: bool = True) -> list[LintFinding]:
    """Run every lint check over ``program``.

    ``check_reserved`` should be disabled for compiled programs, where the
    stack-allocation and single-path passes legitimately use the reserved
    registers.  ``single_path`` additionally enforces the single-path
    property (no data-dependent control flow).
    """
    facts = facts if facts is not None else program_facts(program)
    findings = []
    findings.extend(_check_reachability(facts))
    findings.extend(_check_loop_bounds(facts))
    if check_reserved:
        findings.extend(_check_reserved_registers(program))
    if single_path:
        findings.extend(_check_single_path(facts))
    findings.extend(_check_accesses(facts))
    return findings


def has_errors(findings: list[LintFinding], strict: bool = False) -> bool:
    """True if any finding is fatal (``strict`` escalates loose annotations)."""
    for finding in findings:
        if finding.severity == SEVERITY_ERROR:
            return True
        if strict and finding.code == "loose-annotation":
            return True
    return False


__all__ = [
    "LintFinding",
    "RESERVED_GPRS",
    "RESERVED_PREDS",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "has_errors",
    "lint_program",
]
