"""Abstract-interpretation value analysis over the builder IR.

Module map
----------

============== ==============================================================
``domain``     Signed 32-bit interval lattice, symbol+offset abstract values,
               three-valued predicates, and the per-point abstract state.
``transfer``   Sound transfer functions for every ALU / compare / predicate /
               load / store / call opcode, mirroring the simulator's
               wrap-around semantics.
``fixpoint``   Worklist fixpoint per function CFG with widening at natural
               loop headers, plus interprocedural may-write summaries.
``loopbounds`` Induction-variable loop-bound inference and the
               annotation-vs-inferred audit rule.
``infeasible`` Dead-edge and exclusive-pair detection, emitted as extra IPET
               flow constraints.
``addresses``  Address-range classification of every memory access
               (scratchpad / static data / stack / heap).
``facts``      ``program_facts(program)`` — the cached whole-program entry
               point bundling all of the above.
``lint``       IR verifier: unreachable blocks, unbounded loops, reserved
               registers, single-path violations, bad accesses.
``__main__``   ``python -m repro.analysis [--lint] [--strict]`` CLI.
============== ==============================================================

Methodology
-----------

**Domain.**  Each general-purpose register maps to an abstract value
``symbol + [lo, hi]``: an optional data-symbol base plus a signed 32-bit
interval offset.  Predicates live in a three-valued (Kleene) domain.
Operations that may wrap at 32 bits degrade to TOP rather than model the
wrap, so every concrete register value is always contained in its interval
— the soundness property the property-based tests in
``tests/test_analysis.py`` exercise against the real simulator.

**Widening.**  The fixpoint iterates blocks in reverse post-order and
widens only at natural-loop headers: a bound that keeps growing jumps to
the 32-bit extreme, guaranteeing termination in a few passes while keeping
loop-invariant facts exact.  Irreducible or non-converging regions fall
back to widening everywhere, then to TOP.

**Loop bounds.**  For a loop with a single back edge, the continue
condition is reduced to a compare atom over a unique once-per-iteration
induction update (``counter += step``) and a loop-invariant limit; a
closed-form iteration bound follows from the entry interval of the
counter.  Overflow of the counter past the comparison is checked
explicitly, otherwise no bound is claimed.

**Audit rule.**  Inferred and annotated bounds are merged per loop:
the *effective* bound is the tighter of the two.  An inferred bound
tighter than the annotation is adopted silently; an annotation tighter
than what is provable is kept but flagged (an error under ``--strict``),
because the analysis cannot confirm the programmer's claim.
"""

from .addresses import AccessFact, classify_accesses
from .domain import AbsState, AbsVal, Interval
from .facts import FunctionFacts, ProgramFacts, analyse_program, program_facts
from .fixpoint import FixpointResult, analyse_function, may_write_summaries
from .infeasible import InfeasibleFact, find_infeasible_facts
from .lint import LintFinding, has_errors, lint_program
from .loopbounds import (
    InferredBound,
    LoopBoundAudit,
    audit_loop_bounds,
    infer_loop_bounds,
)

__all__ = [
    "AbsState",
    "AbsVal",
    "AccessFact",
    "FixpointResult",
    "FunctionFacts",
    "InferredBound",
    "InfeasibleFact",
    "Interval",
    "LintFinding",
    "LoopBoundAudit",
    "ProgramFacts",
    "analyse_function",
    "analyse_program",
    "audit_loop_bounds",
    "classify_accesses",
    "find_infeasible_facts",
    "has_errors",
    "infer_loop_bounds",
    "lint_program",
    "may_write_summaries",
    "program_facts",
]
