"""Abstract transfer functions for the Patmos ISA.

One function, :func:`transfer_instruction`, maps an instruction and an
:class:`~repro.analysis.domain.AbsState` to the post-state.  The semantics
mirror :mod:`repro.sim.executor` exactly — 32-bit wraparound arithmetic,
sign conventions of the compare family, Kleene combination of predicates —
but over intervals instead of concrete values.  Predicated execution is
handled by the guard's three-valued evaluation: a definitely-false guard
skips the instruction, a definitely-true guard performs a strong update,
and an unknown guard joins the old and new values (weak update).

Interprocedural effects are summarised by :class:`ClobberSummary`: a call
havocs exactly the registers its callee (transitively) may write, and an
indirect call (``callr``) havocs everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..isa.instruction import Guard, Instruction
from ..isa.opcodes import Format, Opcode
from ..program.basic_block import BasicBlock
from .domain import (
    INT_MAX,
    INT_MIN,
    TOP_VAL,
    AbsState,
    AbsVal,
    Interval,
    PredVal,
    const,
    const_val,
    num,
    pred_and,
    pred_not,
    pred_or,
    pred_xor,
    symbol_val,
)


@dataclass(frozen=True)
class ClobberSummary:
    """Registers a function (and its transitive callees) may write."""

    gprs: frozenset[int] = frozenset()
    preds: frozenset[int] = frozenset()
    #: True when nothing can be said (indirect calls somewhere below).
    total: bool = False


#: The conservative summary used for unknown callees.
TOTAL_CLOBBER = ClobberSummary(total=True)


def _to_signed32(value: int) -> int:
    value &= 0xFFFF_FFFF
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def guard_value(state: AbsState, guard: Guard) -> PredVal:
    """Three-valued truth of an instruction guard in ``state``."""
    value = state.pred(guard.pred)
    return pred_not(value) if guard.negate else value


# ---------------------------------------------------------------------------
# ALU
# ---------------------------------------------------------------------------

_CONCRETE_ALU = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.ADDI: lambda a, b: a + b,
    Opcode.ADDL: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.SUBI: lambda a, b: a - b,
    Opcode.SUBL: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.ANDL: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.ORL: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.XORL: lambda a, b: a ^ b,
    Opcode.NOR: lambda a, b: ~(a | b),
    Opcode.SHL: lambda a, b: a << (b & 31),
    Opcode.SHLI: lambda a, b: a << (b & 31),
    Opcode.SHR: lambda a, b: (a & 0xFFFF_FFFF) >> (b & 31),
    Opcode.SHRI: lambda a, b: (a & 0xFFFF_FFFF) >> (b & 31),
    Opcode.SRA: lambda a, b: a >> (b & 31),
    Opcode.SRAI: lambda a, b: a >> (b & 31),
    Opcode.SHADD: lambda a, b: (a << 1) + b,
    Opcode.SHADD2: lambda a, b: (a << 2) + b,
}

_ADD_OPS = (Opcode.ADD, Opcode.ADDI, Opcode.ADDL)
_SUB_OPS = (Opcode.SUB, Opcode.SUBI, Opcode.SUBL)
_AND_OPS = (Opcode.AND, Opcode.ANDI, Opcode.ANDL)
_OR_OPS = (Opcode.OR, Opcode.ORI, Opcode.ORL)
_XOR_OPS = (Opcode.XOR, Opcode.XORI, Opcode.XORL)
_SHL_OPS = (Opcode.SHL, Opcode.SHLI)
_SHR_OPS = (Opcode.SHR, Opcode.SHRI)
_SRA_OPS = (Opcode.SRA, Opcode.SRAI)


def eval_alu(opcode: Opcode, a: AbsVal, b: AbsVal) -> AbsVal:
    """Abstract result of an ALU operation on two abstract values."""
    # Exact on constants: evaluate the concrete 32-bit semantics.
    va, vb = a.value(), b.value()
    if va is not None and vb is not None:
        fn = _CONCRETE_ALU.get(opcode)
        if fn is not None:
            return const_val(_to_signed32(fn(va, vb)))
    if opcode in _ADD_OPS:
        return a.add(b)
    if opcode in _SUB_OPS:
        return a.sub(b)
    if not (a.is_numeric and b.is_numeric):
        return TOP_VAL
    ia, ib = a.offset, b.offset
    if opcode in _AND_OPS:
        return num(ia.bit_and(ib))
    if opcode in _OR_OPS:
        return num(ia.bit_or(ib))
    if opcode in _XOR_OPS:
        return num(ia.bit_xor(ib))
    if opcode in _SHL_OPS:
        return num(ia.shl(ib))
    if opcode in _SHR_OPS:
        return num(ia.shr(ib))
    if opcode in _SRA_OPS:
        return num(ia.sra(ib))
    if opcode in (Opcode.SHADD, Opcode.SHADD2):
        shifted = ia.shl(const(1 if opcode is Opcode.SHADD else 2))
        if shifted.is_top:
            return TOP_VAL
        return num(shifted).add(b)
    return TOP_VAL  # NOR on non-constants and anything unexpected


# ---------------------------------------------------------------------------
# Compares
# ---------------------------------------------------------------------------

#: Signed compare kinds; unsigned variants get mapped after a range check.
_EQ = "eq"
_NE = "ne"
_LT = "lt"
_LE = "le"

_COMPARE_KIND = {
    Opcode.CMPEQ: (_EQ, False), Opcode.CMPIEQ: (_EQ, False),
    Opcode.CMPNEQ: (_NE, False), Opcode.CMPINEQ: (_NE, False),
    Opcode.CMPLT: (_LT, False), Opcode.CMPILT: (_LT, False),
    Opcode.CMPLE: (_LE, False), Opcode.CMPILE: (_LE, False),
    Opcode.CMPULT: (_LT, True), Opcode.CMPIULT: (_LT, True),
    Opcode.CMPULE: (_LE, True), Opcode.CMPIULE: (_LE, True),
}


def _cmp_intervals(kind: str, a: Interval, b: Interval) -> PredVal:
    if kind == _EQ:
        va, vb = a.value(), b.value()
        if va is not None and va == vb:
            return True
        if a.meet(b) is None:
            return False
        return None
    if kind == _NE:
        return pred_not(_cmp_intervals(_EQ, a, b))
    if kind == _LT:
        if a.hi < b.lo:
            return True
        if a.lo >= b.hi:
            return False
        return None
    if kind == _LE:
        if a.hi <= b.lo:
            return True
        if a.lo > b.hi:
            return False
        return None
    raise AssertionError(kind)  # pragma: no cover


def eval_compare(opcode: Opcode, a: AbsVal, b: AbsVal) -> PredVal:
    """Three-valued result of a compare on two abstract values."""
    if opcode is Opcode.BTEST:
        va, vb = a.value(), b.value()
        if va is not None and vb is not None:
            return bool(((va & 0xFFFF_FFFF) >> (vb & 31)) & 1)
        return None
    kind, unsigned = _COMPARE_KIND[opcode]
    if a.base is not None or b.base is not None:
        # Symbol-anchored addresses: only comparisons against the same base
        # reduce to offset comparisons (link-time addresses do not wrap).
        if a.base != b.base:
            return None
        ia, ib = a.offset, b.offset
    else:
        ia, ib = a.offset, b.offset
        if unsigned and kind in (_LT, _LE):
            if ia.lo < 0 or ib.lo < 0:
                va, vb = ia.value(), ib.value()
                if va is None or vb is None:
                    return None
                # Exact unsigned compare of two known patterns.
                ua, ub = va & 0xFFFF_FFFF, vb & 0xFFFF_FFFF
                return ua < ub if kind == _LT else ua <= ub
    return _cmp_intervals(kind, ia, ib)


# ---------------------------------------------------------------------------
# Instruction transfer
# ---------------------------------------------------------------------------


def _operand(state: AbsState, instr: Instruction, fmt: Format) -> AbsVal:
    """The second source operand of an ALU/compare instruction."""
    if fmt in (Format.ALU_R, Format.CMP_R):
        return state.gpr(instr.rs2)
    if isinstance(instr.target, str):
        # A symbolic data target resolved by the linker into the immediate.
        if instr.opcode in _ADD_OPS or instr.opcode in (Opcode.LIL,):
            return symbol_val(instr.target)
        return TOP_VAL
    if instr.imm is None:
        return TOP_VAL
    return const_val(_to_signed32(instr.imm))


def _write_gpr(state: AbsState, rd: Optional[int], value: AbsVal,
               strong: bool) -> None:
    if rd is None:
        return
    if strong:
        state.set_gpr(rd, value)
    else:
        state.weak_gpr(rd, value)


def _write_pred(state: AbsState, pd: Optional[int], value: PredVal,
                strong: bool) -> None:
    if pd is None:
        return
    if strong:
        state.set_pred(pd, value)
    else:
        state.weak_pred(pd, value)


def transfer_instruction(instr: Instruction, state: AbsState,
                         may_writes: Optional[dict] = None) -> None:
    """Apply one instruction's abstract effect to ``state`` (in place)."""
    gv = guard_value(state, instr.guard)
    if gv is False:
        return
    strong = gv is True
    info = instr.info
    fmt = info.fmt

    if fmt in (Format.ALU_R, Format.ALU_I, Format.ALU_L):
        a = state.gpr(instr.rs1)
        b = _operand(state, instr, fmt)
        _write_gpr(state, instr.rd, eval_alu(instr.opcode, a, b), strong)
        return
    if fmt is Format.LI:
        if instr.opcode is Opcode.LIL:
            value = _operand(state, instr, fmt)
        else:  # LIH merges into the upper half of the current value.
            old = state.gpr(instr.rd).value()
            if old is not None and instr.imm is not None:
                pattern = ((old & 0xFFFF)
                           | ((instr.imm & 0xFFFF) << 16))
                value = const_val(_to_signed32(pattern))
            else:
                value = TOP_VAL
        _write_gpr(state, instr.rd, value, strong)
        return
    if fmt in (Format.CMP_R, Format.CMP_I):
        a = state.gpr(instr.rs1)
        b = _operand(state, instr, fmt)
        _write_pred(state, instr.pd, eval_compare(instr.opcode, a, b), strong)
        return
    if fmt is Format.PRED:
        a = state.pred(instr.ps1)
        b = state.pred(instr.ps2) if instr.ps2 is not None else False
        if instr.opcode is Opcode.PAND:
            value = pred_and(a, b)
        elif instr.opcode is Opcode.POR:
            value = pred_or(a, b)
        elif instr.opcode is Opcode.PXOR:
            value = pred_xor(a, b)
        else:  # PNOT
            value = pred_not(a)
        _write_pred(state, instr.pd, value, strong)
        return
    if fmt in (Format.LOAD, Format.MFS):
        # Loaded / special-register values are unknown.
        if instr.rd is not None:
            state.set_gpr(instr.rd, TOP_VAL)
        return
    if fmt is Format.CALL:
        summary = None
        if may_writes is not None and isinstance(instr.target, str):
            summary = may_writes.get(instr.target)
        if summary is None or summary.total:
            state.havoc_all()
        else:
            state.havoc_gprs(summary.gprs)
            state.havoc_preds(summary.preds)
        return
    if fmt is Format.CALLR:
        state.havoc_all()
        return
    # Stores, stack control, waits, branches, returns, mts, nop, halt, out:
    # no effect on the tracked register state.


def transfer_block(block: BasicBlock, in_state: AbsState,
                   may_writes: Optional[dict] = None) -> AbsState:
    """Abstract post-state of executing ``block`` from ``in_state``."""
    state = in_state.copy()
    for instr in block.instrs:
        transfer_instruction(instr, state, may_writes)
    return state


def instruction_states(block: BasicBlock, in_state: AbsState,
                       may_writes: Optional[dict] = None
                       ) -> Iterator[tuple[Instruction, AbsState]]:
    """Yield ``(instr, state_before_instr)`` for every instruction."""
    state = in_state.copy()
    for instr in block.instrs:
        yield instr, state
        transfer_instruction(instr, state, may_writes)


__all__ = [
    "ClobberSummary",
    "TOTAL_CLOBBER",
    "eval_alu",
    "eval_compare",
    "guard_value",
    "instruction_states",
    "transfer_block",
    "transfer_instruction",
    "INT_MIN",
    "INT_MAX",
]
