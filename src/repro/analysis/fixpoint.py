"""Worklist fixpoint engine over a function's control-flow graph.

Blocks are visited in reverse post-order; at natural-loop headers the
incoming state is *widened* against the previous round's state so that
growing intervals jump to the respective domain bound instead of crawling
towards it.  For reducible CFGs the loop headers cut every cycle, which
together with the finite widening chains guarantees termination; on the
(never produced by our builder, but possible in principle) irreducible
case the engine falls back to widening at every block after a soft
iteration cap.

Interprocedural effects are precomputed bottom-up over the call graph as
:class:`~repro.analysis.transfer.ClobberSummary` sets: the registers a
call may overwrite, with indirect calls and recursion collapsing to a
total havoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..program.callgraph import CallGraph
from ..program.cfg import ControlFlowGraph
from ..program.program import Program
from .domain import AbsState
from .transfer import (
    TOTAL_CLOBBER,
    ClobberSummary,
    instruction_states,
    transfer_block,
)


def may_write_summaries(program: Program) -> dict[str, ClobberSummary]:
    """Bottom-up clobber summaries for every function of ``program``.

    A function's summary covers its own register writes, the writes of its
    method-cache sub-functions (they execute within the parent's activation)
    and, transitively, everything its callees may write.  Indirect calls
    (``callr``) and recursive call graphs degrade to :data:`TOTAL_CLOBBER`.
    """
    graph = CallGraph.build(program)
    names = list(program.functions)
    if graph.is_recursive():
        return {name: TOTAL_CLOBBER for name in names}

    subfunctions: dict[str, list] = {}
    for func in program.functions.values():
        if func.is_subfunction and func.parent:
            subfunctions.setdefault(func.parent, []).append(func)

    summaries: dict[str, ClobberSummary] = {}
    for name in graph.topological_order():
        func = program.functions[name]
        gprs: set[int] = set()
        preds: set[int] = set()
        total = False
        for part in [func] + subfunctions.get(name, []):
            for instr in part.instructions():
                gprs |= instr.gpr_defs()
                preds |= instr.pred_defs()
                if instr.opcode is Opcode.CALLR:
                    total = True
        for callee in graph.callees(name):
            callee_summary = summaries.get(callee, TOTAL_CLOBBER)
            if callee_summary.total:
                total = True
            gprs |= callee_summary.gprs
            preds |= callee_summary.preds
        summaries[name] = (
            TOTAL_CLOBBER if total
            else ClobberSummary(frozenset(gprs), frozenset(preds)))
    # Sub-functions are never call targets, but alias them to the parent's
    # summary so lookups by either name stay conservative and total.
    for parent, subs in subfunctions.items():
        for sub in subs:
            summaries.setdefault(sub.name, summaries.get(parent, TOTAL_CLOBBER))
    for name in names:
        summaries.setdefault(name, TOTAL_CLOBBER)
    return summaries


@dataclass
class FixpointResult:
    """Per-block abstract states of one function at the fixpoint."""

    cfg: ControlFlowGraph
    may_writes: dict[str, ClobberSummary]
    #: State on entry to each reachable block (join of predecessor OUTs,
    #: widened at loop headers).
    in_states: dict[str, AbsState] = field(default_factory=dict)
    #: State after executing each reachable block.
    out_states: dict[str, AbsState] = field(default_factory=dict)
    #: Per loop header: join of OUT states over the *non-back* in-edges —
    #: the state the loop is entered with, before any iteration ran.
    loop_entry_states: dict[str, AbsState] = field(default_factory=dict)

    def block_states(self, label: str) -> Iterator[tuple[Instruction, AbsState]]:
        """Yield ``(instr, state_before_instr)`` through block ``label``."""
        in_state = self.in_states.get(label, AbsState())
        block = self.cfg.function.block(label)
        return instruction_states(block, in_state, self.may_writes)

    def state_at_terminator(self, label: str) -> AbsState:
        """Abstract state right before the block's terminator executes."""
        block = self.cfg.function.block(label)
        term = block.terminator()
        if term is None:
            return self.out_states.get(label, AbsState())
        for instr, state in self.block_states(label):
            if instr is term:
                return state
        return self.out_states.get(label, AbsState())  # pragma: no cover


def analyse_function(cfg: ControlFlowGraph,
                     may_writes: Optional[dict[str, ClobberSummary]] = None,
                     entry_state: Optional[AbsState] = None) -> FixpointResult:
    """Run the interval analysis to a fixpoint over one function's CFG.

    ``entry_state`` defaults to the empty state (every register unknown),
    which is the sound assumption for an externally called function.
    """
    result = FixpointResult(cfg=cfg, may_writes=may_writes or {})
    rpo = cfg.topological_order()
    if not rpo:
        return result
    back = set(cfg.back_edges())
    widen_at = {head for _tail, head in back}
    entry_state = entry_state if entry_state is not None else AbsState()

    blocks = {label: cfg.function.block(label) for label in rpo}
    in_states = result.in_states
    out_states = result.out_states

    soft_cap = 4 * len(rpo) + 16
    hard_cap = soft_cap + 64 * (len(rpo) + 1)
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        if rounds == soft_cap:
            # Irreducible region or pathological oscillation: widen
            # everywhere to force convergence (still sound, less precise).
            widen_at = set(rpo)
        if rounds > hard_cap:  # pragma: no cover - widening bounds chains
            for label in rpo:
                in_states[label] = AbsState()
                out_states[label] = transfer_block(
                    blocks[label], AbsState(), may_writes)
            break
        for label in rpo:
            pieces = []
            if label == cfg.entry:
                pieces.append(entry_state)
            for pred in cfg.predecessors(label):
                if pred in out_states:
                    pieces.append(out_states[pred])
            if not pieces:
                continue  # unreachable
            new_in = pieces[0].copy()
            for piece in pieces[1:]:
                new_in = new_in.join(piece)
            old_in = in_states.get(label)
            if label in widen_at and old_in is not None:
                new_in = old_in.widen(new_in)
            if old_in is not None and new_in == old_in and label in out_states:
                continue
            in_states[label] = new_in
            new_out = transfer_block(blocks[label], new_in, may_writes)
            if new_out != out_states.get(label):
                out_states[label] = new_out
                changed = True

    for loop in cfg.natural_loops():
        tails = {tail for tail, _head in loop.back_edges}
        pieces = []
        if loop.header == cfg.entry:
            pieces.append(entry_state)
        for pred in cfg.predecessors(loop.header):
            if pred not in tails and pred in out_states:
                pieces.append(out_states[pred])
        if not pieces:
            entry = AbsState()
        else:
            entry = pieces[0].copy()
            for piece in pieces[1:]:
                entry = entry.join(piece)
        result.loop_entry_states[loop.header] = entry
    return result


__all__ = [
    "FixpointResult",
    "analyse_function",
    "may_write_summaries",
]
