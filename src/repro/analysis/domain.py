"""Abstract domains for the value analysis.

Three cooperating lattices model the machine state the ISA exposes:

* :class:`Interval` — signed 32-bit integer intervals ``[lo, hi]``.  Every
  arithmetic transfer is *sound under wraparound*: whenever a result could
  leave the representable range the interval goes to ``TOP`` instead of
  silently narrowing.  Widening (:meth:`Interval.widen`) drops a growing
  bound to the respective extreme so loop fixpoints terminate.
* :class:`AbsVal` — an interval optionally anchored to a link-time symbol
  (``base + offset``).  Address computations (``li rX, "sym"`` followed by
  pointer arithmetic) keep the symbolic base through add/sub with numeric
  offsets, which is what lets the address-range analysis classify accesses
  even after the offset interval has been widened.
* predicates — three-valued booleans (``True`` / ``False`` / ``None`` for
  unknown) combined with Kleene semantics.

:class:`AbsState` bundles the per-register values.  Missing entries mean
``TOP`` (any value), which keeps states sparse; ``r0`` and ``p0`` are
hard-wired to ``0`` and ``True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Bounds of the signed 32-bit register value range.
INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1


@dataclass(frozen=True)
class Interval:
    """A non-empty interval of signed 32-bit integers."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (INT_MIN <= self.lo <= self.hi <= INT_MAX):
            raise ValueError(f"malformed interval [{self.lo}, {self.hi}]")

    # -- queries ---------------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo == INT_MIN and self.hi == INT_MAX

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def value(self) -> Optional[int]:
        """The concrete value if the interval is a singleton, else ``None``."""
        return self.lo if self.lo == self.hi else None

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        if self.is_top:
            return "T"
        if self.is_singleton:
            return str(self.lo)
        return f"[{self.lo}, {self.hi}]"

    # -- lattice ---------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection, or ``None`` if the intervals are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: a growing bound jumps to the extreme."""
        lo = self.lo if newer.lo >= self.lo else INT_MIN
        hi = self.hi if newer.hi <= self.hi else INT_MAX
        return Interval(lo, hi)

    # -- arithmetic (sound under 32-bit wraparound) ----------------------------

    def add(self, other: "Interval") -> "Interval":
        lo = self.lo + other.lo
        hi = self.hi + other.hi
        if lo < INT_MIN or hi > INT_MAX:
            return TOP
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        lo = self.lo - other.hi
        hi = self.hi - other.lo
        if lo < INT_MIN or hi > INT_MAX:
            return TOP
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return const(0).sub(self)

    def bit_and(self, other: "Interval") -> "Interval":
        # x & m is in [0, m] for any x when m >= 0 (the sign bit is cleared).
        if other.lo >= 0:
            hi = other.hi if self.lo < 0 else min(self.hi, other.hi)
            return Interval(0, max(0, hi))
        if self.lo >= 0:
            return Interval(0, self.hi)
        return TOP

    def bit_or(self, other: "Interval") -> "Interval":
        if self.lo >= 0 and other.lo >= 0:
            bits = max(self.hi.bit_length(), other.hi.bit_length())
            return Interval(0, min(INT_MAX, (1 << bits) - 1))
        return TOP

    def bit_xor(self, other: "Interval") -> "Interval":
        return self.bit_or(other)  # same non-negative magnitude bound

    def shl(self, amount: "Interval") -> "Interval":
        s = amount.value()
        if s is None:
            return TOP
        s &= 31
        lo = self.lo << s
        hi = self.hi << s
        if lo < INT_MIN or hi > INT_MAX:
            return TOP
        return Interval(lo, hi)

    def shr(self, amount: "Interval") -> "Interval":
        """Logical right shift on the 32-bit two's-complement pattern."""
        s = amount.value()
        if s is None:
            return TOP
        s &= 31
        if s == 0:
            return self
        if self.lo >= 0:
            return Interval(self.lo >> s, self.hi >> s)
        # A negative value shifts into a large positive range.
        return Interval(0, min(INT_MAX, (1 << (32 - s)) - 1))

    def sra(self, amount: "Interval") -> "Interval":
        s = amount.value()
        if s is None:
            # Arithmetic shift is monotone in the shifted value and shrinks
            # magnitude with the amount; bound over the amount range.
            lo_s, hi_s = amount.lo & 31, amount.hi & 31
            if not (0 <= lo_s <= hi_s):
                return TOP
            return Interval(min(self.lo >> lo_s, self.lo >> hi_s),
                            max(self.hi >> lo_s, self.hi >> hi_s))
        return Interval(self.lo >> (s & 31), self.hi >> (s & 31))


#: The full signed 32-bit range (no information).
TOP = Interval(INT_MIN, INT_MAX)


def const(value: int) -> Interval:
    """The singleton interval of ``value`` (must be representable)."""
    return Interval(value, value)


# ---------------------------------------------------------------------------
# Symbol-anchored values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsVal:
    """An abstract register value: ``base + offset``.

    ``base`` is a data-symbol name (``None`` for plain numbers) and ``offset``
    an :class:`Interval`.  The base survives add/sub with numeric values and
    interval widening, so a pointer walked through an array keeps naming its
    array even when the exact offset is lost.
    """

    base: Optional[str]
    offset: Interval

    @property
    def is_top(self) -> bool:
        return self.base is None and self.offset.is_top

    @property
    def is_numeric(self) -> bool:
        return self.base is None

    def value(self) -> Optional[int]:
        if self.base is not None:
            return None
        return self.offset.value()

    def __str__(self) -> str:
        if self.base is None:
            return str(self.offset)
        return f"{self.base}+{self.offset}"

    # -- lattice ---------------------------------------------------------------

    def join(self, other: "AbsVal") -> "AbsVal":
        if self.base != other.base:
            return TOP_VAL
        return AbsVal(self.base, self.offset.join(other.offset))

    def widen(self, newer: "AbsVal") -> "AbsVal":
        if self.base != newer.base:
            return TOP_VAL
        return AbsVal(self.base, self.offset.widen(newer.offset))

    # -- arithmetic ------------------------------------------------------------

    def add(self, other: "AbsVal") -> "AbsVal":
        if self.base is not None and other.base is not None:
            return TOP_VAL
        base = self.base or other.base
        result = self.offset.add(other.offset)
        if base is not None and result.is_top:
            return TOP_VAL  # a wrapped offset invalidates the anchor
        return AbsVal(base, result)

    def sub(self, other: "AbsVal") -> "AbsVal":
        if other.base is not None:
            if self.base == other.base:
                return AbsVal(None, self.offset.sub(other.offset))
            return TOP_VAL
        result = self.offset.sub(other.offset)
        if self.base is not None and result.is_top:
            return TOP_VAL
        return AbsVal(self.base, result)


#: No information about a register value.
TOP_VAL = AbsVal(None, TOP)


def num(interval: Interval) -> AbsVal:
    return AbsVal(None, interval)


def const_val(value: int) -> AbsVal:
    return AbsVal(None, const(value))


def symbol_val(name: str) -> AbsVal:
    return AbsVal(name, const(0))


# ---------------------------------------------------------------------------
# Three-valued predicates (Kleene logic)
# ---------------------------------------------------------------------------

#: A predicate fact: True, False, or None (unknown).
PredVal = Optional[bool]


def pred_not(a: PredVal) -> PredVal:
    return None if a is None else not a


def pred_and(a: PredVal, b: PredVal) -> PredVal:
    if a is False or b is False:
        return False
    if a is True and b is True:
        return True
    return None


def pred_or(a: PredVal, b: PredVal) -> PredVal:
    if a is True or b is True:
        return True
    if a is False and b is False:
        return False
    return None


def pred_xor(a: PredVal, b: PredVal) -> PredVal:
    if a is None or b is None:
        return None
    return a != b


def pred_join(a: PredVal, b: PredVal) -> PredVal:
    return a if a == b else None


# ---------------------------------------------------------------------------
# Machine state
# ---------------------------------------------------------------------------


class AbsState:
    """Abstract machine state: GPR and predicate facts.

    Registers absent from the maps are ``TOP`` / unknown, which keeps joins
    cheap.  ``r0`` reads as ``0`` and ``p0`` as ``True`` regardless of the
    maps; writes to them are architectural no-ops and are dropped.
    """

    __slots__ = ("gprs", "preds")

    def __init__(self, gprs: Optional[dict] = None,
                 preds: Optional[dict] = None):
        self.gprs: dict[int, AbsVal] = gprs if gprs is not None else {}
        self.preds: dict[int, bool] = preds if preds is not None else {}

    def copy(self) -> "AbsState":
        return AbsState(dict(self.gprs), dict(self.preds))

    def __eq__(self, other) -> bool:
        return (isinstance(other, AbsState) and self.gprs == other.gprs
                and self.preds == other.preds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(f"r{i}={v}" for i, v in sorted(self.gprs.items()))
        preds = ", ".join(f"p{i}={v}" for i, v in sorted(self.preds.items()))
        return f"AbsState({regs}; {preds})"

    # -- reads -----------------------------------------------------------------

    def gpr(self, index: Optional[int]) -> AbsVal:
        if index is None:
            return TOP_VAL
        if index == 0:
            return const_val(0)
        return self.gprs.get(index, TOP_VAL)

    def pred(self, index: Optional[int]) -> PredVal:
        if index is None:
            return None
        if index == 0:
            return True
        return self.preds.get(index)

    # -- writes ----------------------------------------------------------------

    def set_gpr(self, index: int, value: AbsVal) -> None:
        if index == 0:
            return
        if value.is_top:
            self.gprs.pop(index, None)
        else:
            self.gprs[index] = value

    def set_pred(self, index: int, value: PredVal) -> None:
        if index == 0:
            return
        if value is None:
            self.preds.pop(index, None)
        else:
            self.preds[index] = value

    def weak_gpr(self, index: int, value: AbsVal) -> None:
        """Join ``value`` into a register (update under an unknown guard)."""
        self.set_gpr(index, self.gpr(index).join(value))

    def weak_pred(self, index: int, value: PredVal) -> None:
        self.set_pred(index, pred_join(self.pred(index), value))

    def havoc_gprs(self, indices) -> None:
        for index in indices:
            self.gprs.pop(index, None)

    def havoc_preds(self, indices) -> None:
        for index in indices:
            self.preds.pop(index, None)

    def havoc_all(self) -> None:
        self.gprs.clear()
        self.preds.clear()

    # -- lattice ---------------------------------------------------------------

    def join(self, other: "AbsState") -> "AbsState":
        gprs = {}
        for index, value in self.gprs.items():
            other_value = other.gprs.get(index)
            if other_value is not None:
                joined = value.join(other_value)
                if not joined.is_top:
                    gprs[index] = joined
        preds = {}
        for index, value in self.preds.items():
            if other.preds.get(index) == value:
                preds[index] = value
        return AbsState(gprs, preds)

    def widen(self, newer: "AbsState") -> "AbsState":
        gprs = {}
        for index, value in self.gprs.items():
            newer_value = newer.gprs.get(index)
            if newer_value is not None:
                widened = value.widen(newer_value)
                if not widened.is_top:
                    gprs[index] = widened
        preds = {}
        for index, value in self.preds.items():
            if newer.preds.get(index) == value:
                preds[index] = value
        return AbsState(gprs, preds)
