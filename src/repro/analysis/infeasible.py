"""Infeasible-path detection: flow facts the IPET solver may exploit.

Two families of facts are derived from the fixpoint states:

* **Dead edges** — a conditional branch whose guard predicate is known at
  the branch instruction evaluates one way on every execution; the other
  edge can never be taken (``x_edge <= 0``).

* **Exclusive pairs** — two conditional branches guarded by the same
  predicate (possibly with opposite polarity) whose defining compare
  executes once and dominates both.  On any single execution both branches
  resolve consistently, so the contradictory edge combination is excluded
  (``x_a + x_b <= 1``).  This captures the correlated-predicate structure
  that if-conversion and diamond re-splits produce.  All involved blocks
  must be loop-free (execute at most once per run) for the pairwise count
  argument to hold.

Every fact is emitted as a :class:`~repro.wcet.ipet.FlowConstraint`; the
solver drops terms for edges that do not exist, so the facts are safe to
compute on the merged function and apply to the same CFG.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.opcodes import Opcode
from ..program.cfg import ControlFlowGraph
from ..wcet.ipet import FlowConstraint
from .fixpoint import FixpointResult
from .transfer import guard_value

_BRANCH_OPS = (Opcode.BR, Opcode.BRCF)


@dataclass(frozen=True)
class InfeasibleFact:
    """One derived infeasibility fact with its IPET constraint."""

    function: str
    kind: str  # "dead_edge" | "exclusive_pair"
    detail: str
    constraint: FlowConstraint


def _conditional_sites(cfg: ControlFlowGraph):
    """Yield ``(label, terminator, taken_edge, fall_edge)`` per cond branch."""
    reachable = cfg.reachable()
    for label in reachable:
        block = cfg.function.block(label)
        term = block.terminator()
        if term is None or term.opcode not in _BRANCH_OPS:
            continue
        if term.guard.is_always or not isinstance(term.target, str):
            continue
        if term.target not in cfg.graph:
            continue  # brcf into another function: out of scope here
        fallthrough = cfg.function.fallthrough_label(label)
        if fallthrough is None or fallthrough == term.target:
            continue
        yield label, term, (label, term.target), (label, fallthrough)


def find_dead_edges(cfg: ControlFlowGraph,
                    fix: FixpointResult) -> list[InfeasibleFact]:
    """Branch edges whose guard predicate is statically decided."""
    facts = []
    for label, term, taken, fall in _conditional_sites(cfg):
        state = fix.state_at_terminator(label)
        decided = guard_value(state, term.guard)
        if decided is True:
            dead, kept = fall, taken
        elif decided is False:
            dead, kept = taken, fall
        else:
            continue
        facts.append(InfeasibleFact(
            function=cfg.function.name,
            kind="dead_edge",
            detail=(f"branch in {label} always goes to {kept[1]}; "
                    f"edge to {dead[1]} is infeasible"),
            constraint=FlowConstraint(
                terms=((dead, 1.0),), upper=0.0,
                reason=f"dead edge {dead[0]}->{dead[1]}"),
        ))
    return facts


def _single_always_def(cfg: ControlFlowGraph, fix: FixpointResult, pred: int):
    """The unique unconditional definition site of ``pred``, if any."""
    found = None
    for block in cfg.function.blocks:
        for instr in block.instrs:
            if pred in instr.pred_defs():
                if found is not None or not instr.guard.is_always:
                    return None
                found = (block.label, instr)
    # A call that may write the predicate breaks the single-value argument.
    for block in cfg.function.blocks:
        for instr in block.instrs:
            if instr.opcode is Opcode.CALLR:
                return None
            if instr.opcode is Opcode.CALL:
                summary = None
                if isinstance(instr.target, str):
                    summary = fix.may_writes.get(instr.target)
                if summary is None or summary.total or pred in summary.preds:
                    return None
    return found


def find_exclusive_pairs(cfg: ControlFlowGraph,
                         fix: FixpointResult) -> list[InfeasibleFact]:
    """Mutual-exclusion constraints between same-predicate branch pairs."""
    loops = cfg.natural_loops()

    def loop_free(label: str) -> bool:
        return not any(loop.contains(label) for loop in loops)

    by_pred: dict[int, list] = {}
    for label, term, taken, fall in _conditional_sites(cfg):
        if term.guard.pred != 0 and loop_free(label):
            by_pred.setdefault(term.guard.pred, []).append(
                (label, term.guard.negate, taken, fall))

    facts = []
    for pred, sites in sorted(by_pred.items()):
        if len(sites) < 2:
            continue
        site_def = _single_always_def(cfg, fix, pred)
        if site_def is None or not loop_free(site_def[0]):
            continue
        def_label = site_def[0]
        for i in range(len(sites)):
            for j in range(i + 1, len(sites)):
                label1, neg1, taken1, fall1 = sites[i]
                label2, neg2, taken2, fall2 = sites[j]
                if not (cfg.dominates(def_label, label1)
                        and cfg.dominates(def_label, label2)):
                    continue
                if neg1 == neg2:
                    pairs = [(taken1, fall2), (fall1, taken2)]
                else:
                    pairs = [(taken1, taken2), (fall1, fall2)]
                for edge_a, edge_b in pairs:
                    facts.append(InfeasibleFact(
                        function=cfg.function.name,
                        kind="exclusive_pair",
                        detail=(f"branches in {label1} and {label2} both "
                                f"test p{pred} (defined once in {def_label})"),
                        constraint=FlowConstraint(
                            terms=((edge_a, 1.0), (edge_b, 1.0)), upper=1.0,
                            reason=(f"p{pred} correlates {label1} "
                                    f"and {label2}")),
                    ))
    return facts


def find_infeasible_facts(cfg: ControlFlowGraph,
                          fix: FixpointResult) -> list[InfeasibleFact]:
    """All infeasibility facts for one function."""
    return find_dead_edges(cfg, fix) + find_exclusive_pairs(cfg, fix)


__all__ = [
    "InfeasibleFact",
    "find_dead_edges",
    "find_exclusive_pairs",
    "find_infeasible_facts",
]
