"""Programmatic builder API for writing Patmos programs.

The builder is the main way to author workloads without a C front end: it
accepts register names as strings, symbolic branch/call targets, and data
symbols, and produces an *unscheduled* :class:`~repro.program.program.Program`
that the compiler passes (bundling, delay-slot filling, if-conversion, …)
turn into executable code.

Example
-------

>>> from repro.program.builder import ProgramBuilder
>>> b = ProgramBuilder("sum")
>>> data = b.data("numbers", [1, 2, 3, 4])
>>> f = b.function("main")
>>> f.li("r1", "numbers")        # address of the data symbol
>>> f.li("r2", 4)                # element count
>>> f.li("r3", 0)                # accumulator
>>> f.label("loop")
>>> f.emit("lwc", "r4", "r1", 0)
>>> f.emit("add", "r3", "r3", "r4")
>>> f.emit("addi", "r1", "r1", 4)
>>> f.emit("subi", "r2", "r2", 1)
>>> f.emit("cmpineq", "p1", "r2", 0)
>>> f.br("loop", pred="p1")
>>> f.loop_bound("loop", 4)
>>> f.out("r3")
>>> f.halt()
>>> program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import CompilerError, IsaError, LoopBoundError
from ..isa.instruction import ALWAYS, Guard, Instruction
from ..isa.opcodes import Format, Opcode, opcode_from_mnemonic
from ..isa.registers import parse_gpr, parse_pred, parse_special
from .basic_block import BasicBlock
from .function import Function
from .program import DataItem, DataSpace, Program

RegLike = Union[str, int]
ImmLike = Union[int, str]


def parse_guard(pred: Union[None, str, Guard]) -> Guard:
    """Parse a guard specification: ``None``, ``"p2"``, ``"!p2"`` or a Guard."""
    if pred is None:
        return ALWAYS
    if isinstance(pred, Guard):
        return pred
    text = pred.strip().lower()
    negate = text.startswith("!")
    if negate:
        text = text[1:]
    return Guard(parse_pred(text), negate)


@dataclass
class _Label:
    name: str


class FunctionBuilder:
    """Builds one function as a linear list of labels and instructions."""

    def __init__(self, name: str, program_builder: "ProgramBuilder"):
        self.name = name
        self._program_builder = program_builder
        self._items: list[Union[_Label, Instruction]] = []
        self._loop_bounds: dict[str, int] = {}
        self._frame_words = 0
        self._attrs: dict = {}

    # -- structural elements ----------------------------------------------------

    def label(self, name: str) -> str:
        """Start a new basic block at this point."""
        self._items.append(_Label(name))
        return name

    def loop_bound(self, label: str, bound: int) -> None:
        """Annotate the loop headed by ``label`` with a maximum iteration count."""
        if bound < 1:
            raise CompilerError(f"loop bound for {label!r} must be >= 1")
        self._loop_bounds[label] = bound

    def frame(self, words: int) -> None:
        """Declare the stack-cache frame size (in words) of this function.

        The stack-allocation pass inserts the matching ``sres``/``sens``/
        ``sfree`` instructions; frame slots are accessed with ``lws``/``sws``.
        """
        if words < 0:
            raise CompilerError("frame size must be non-negative")
        self._frame_words = words

    def attr(self, key: str, value) -> None:
        """Attach a free-form attribute to the function."""
        self._attrs[key] = value

    # -- generic instruction emission ---------------------------------------------

    def add_instruction(self, instr: Instruction) -> Instruction:
        """Append an already-constructed instruction."""
        self._items.append(instr)
        return instr

    def emit(self, mnemonic: str, *operands, pred: Union[None, str, Guard] = None
             ) -> Instruction:
        """Emit an instruction given its mnemonic and positional operands.

        Operand order follows the assembly rendering of each format, e.g.
        ``emit("add", "r1", "r2", "r3")``, ``emit("lwc", "r4", "r1", 8)``,
        ``emit("swc", "r1", 8, "r4")``, ``emit("cmplt", "p1", "r2", "r3")``,
        ``emit("br", "loop")``.
        """
        opcode = opcode_from_mnemonic(mnemonic)
        instr = _make_instruction(opcode, operands, parse_guard(pred))
        return self.add_instruction(instr)

    # -- common sugar ---------------------------------------------------------------

    def li(self, rd: RegLike, value: ImmLike,
           pred: Union[None, str, Guard] = None) -> None:
        """Load a 32-bit constant or a symbol address into a register.

        Small constants use a single ``lil``; larger constants or symbolic
        addresses use a long-immediate ``addl`` with ``r0``.
        """
        guard = parse_guard(pred)
        rd_index = parse_gpr(rd)
        if isinstance(value, int) and -(1 << 15) <= value < (1 << 15):
            self.add_instruction(Instruction(
                Opcode.LIL, guard=guard, rd=rd_index, imm=value))
            return
        if isinstance(value, int):
            self.add_instruction(Instruction(
                Opcode.ADDL, guard=guard, rd=rd_index, rs1=0, imm=value))
        else:
            self.add_instruction(Instruction(
                Opcode.ADDL, guard=guard, rd=rd_index, rs1=0, target=value))

    def mov(self, rd: RegLike, rs: RegLike,
            pred: Union[None, str, Guard] = None) -> None:
        """Copy one register to another (``addi rd = rs, 0``)."""
        self.emit("addi", rd, rs, 0, pred=pred)

    def nop(self, count: int = 1) -> None:
        """Emit ``count`` explicit NOPs (rarely needed; the scheduler pads)."""
        for _ in range(count):
            self.emit("nop")

    def br(self, target: str, pred: Union[None, str, Guard] = None) -> None:
        """Branch to a label, optionally guarded (conditional branch)."""
        self.emit("br", target, pred=pred)

    def call(self, target: str, pred: Union[None, str, Guard] = None) -> None:
        """Call a function by name."""
        self.emit("call", target, pred=pred)

    def ret(self, pred: Union[None, str, Guard] = None) -> None:
        """Return to the caller."""
        self.emit("ret", pred=pred)

    def halt(self) -> None:
        """Stop simulation (end of program)."""
        self.emit("halt")

    def out(self, rs: RegLike, pred: Union[None, str, Guard] = None) -> None:
        """Write a register to the simulator's debug output channel."""
        self.emit("out", rs, pred=pred)

    # -- finalisation -----------------------------------------------------------------

    def build(self) -> Function:
        """Convert the linear item list into a function with basic blocks."""
        blocks: list[BasicBlock] = []
        current: Optional[BasicBlock] = None
        auto_index = 0

        def fresh_label() -> str:
            nonlocal auto_index
            label = f".L{self.name}_{auto_index}"
            auto_index += 1
            return label

        def start_block(label: str) -> BasicBlock:
            nonlocal current
            block = BasicBlock(label=label)
            blocks.append(block)
            current = block
            return block

        start_block(fresh_label() if not self._items or
                    not isinstance(self._items[0], _Label)
                    else self._items[0].name)
        items = self._items
        if items and isinstance(items[0], _Label):
            items = items[1:]

        for item in items:
            if isinstance(item, _Label):
                if current.label == item.name:
                    continue
                if not current.instrs and current.label.startswith(".L"):
                    # Reuse the empty auto-generated block instead of leaving
                    # an empty block behind.
                    current.label = item.name
                else:
                    start_block(item.name)
                continue
            current.append(item)
            if item.info.is_control_flow:
                start_block(fresh_label())

        # Drop a trailing empty auto-generated block.
        while blocks and not blocks[-1].instrs and blocks[-1].label.startswith(".L"):
            blocks.pop()

        labels = [blk.label for blk in blocks]
        if len(labels) != len(set(labels)):
            raise CompilerError(f"duplicate block labels in function {self.name}")

        for label, bound in self._loop_bounds.items():
            matched = False
            for blk in blocks:
                if blk.label == label:
                    blk.loop_bound = bound
                    matched = True
            if not matched:
                raise LoopBoundError(
                    f"loop bound refers to unknown label {label!r} in "
                    f"{self.name}", function=self.name, label=label)

        return Function(
            name=self.name,
            blocks=blocks,
            frame_words=self._frame_words,
            attrs=dict(self._attrs),
        )


class ProgramBuilder:
    """Builds a whole program: functions plus data items."""

    def __init__(self, name: str = "program", entry: str = "main"):
        self.name = name
        self.entry = entry
        self._functions: list[FunctionBuilder] = []
        self._data: list[DataItem] = []

    def function(self, name: str) -> FunctionBuilder:
        """Start a new function and return its builder."""
        if any(fb.name == name for fb in self._functions):
            raise CompilerError(f"duplicate function {name!r}")
        builder = FunctionBuilder(name, self)
        self._functions.append(builder)
        return builder

    def data(self, name: str, words: list[int],
             space: Union[str, DataSpace] = DataSpace.DATA) -> str:
        """Define a word-aligned data object; returns its symbol name."""
        if any(item.name == name for item in self._data):
            raise CompilerError(f"duplicate data item {name!r}")
        if isinstance(space, str):
            space = DataSpace(space)
        self._data.append(DataItem(name=name, words=list(words), space=space))
        return name

    def zeros(self, name: str, count: int,
              space: Union[str, DataSpace] = DataSpace.DATA) -> str:
        """Define a zero-initialised data object of ``count`` words."""
        return self.data(name, [0] * count, space=space)

    def build(self) -> Program:
        """Produce the (unscheduled) program."""
        program = Program(name=self.name, entry=self.entry)
        for builder in self._functions:
            program.add_function(builder.build())
        for item in self._data:
            program.add_data(item)
        program.validate_call_targets()
        return program


# ---------------------------------------------------------------------------
# Operand parsing per instruction format
# ---------------------------------------------------------------------------


def _imm_or_symbol(value: ImmLike) -> tuple[Optional[int], Optional[str]]:
    if isinstance(value, str):
        return None, value
    return int(value), None


def _make_instruction(opcode: Opcode, operands: tuple, guard: Guard) -> Instruction:
    """Build an instruction from positional operands for the opcode's format."""
    fmt = opcode.info.fmt
    mnemonic = opcode.info.mnemonic

    def need(count: int) -> None:
        if len(operands) != count:
            raise IsaError(
                f"{mnemonic}: expected {count} operands, got {len(operands)}")

    if fmt is Format.ALU_R:
        need(3)
        return Instruction(opcode, guard=guard, rd=parse_gpr(operands[0]),
                           rs1=parse_gpr(operands[1]), rs2=parse_gpr(operands[2]))
    if fmt in (Format.ALU_I, Format.ALU_L):
        need(3)
        imm, symbol = _imm_or_symbol(operands[2])
        return Instruction(opcode, guard=guard, rd=parse_gpr(operands[0]),
                           rs1=parse_gpr(operands[1]), imm=imm, target=symbol)
    if fmt is Format.LI:
        need(2)
        imm, symbol = _imm_or_symbol(operands[1])
        return Instruction(opcode, guard=guard, rd=parse_gpr(operands[0]),
                           imm=imm, target=symbol)
    if fmt is Format.MUL:
        need(2)
        return Instruction(opcode, guard=guard, rs1=parse_gpr(operands[0]),
                           rs2=parse_gpr(operands[1]))
    if fmt is Format.CMP_R:
        need(3)
        return Instruction(opcode, guard=guard, pd=parse_pred(operands[0]),
                           rs1=parse_gpr(operands[1]), rs2=parse_gpr(operands[2]))
    if fmt is Format.CMP_I:
        need(3)
        return Instruction(opcode, guard=guard, pd=parse_pred(operands[0]),
                           rs1=parse_gpr(operands[1]), imm=int(operands[2]))
    if fmt is Format.PRED:
        if opcode is Opcode.PNOT:
            need(2)
            return Instruction(opcode, guard=guard, pd=parse_pred(operands[0]),
                               ps1=parse_pred(operands[1]))
        need(3)
        return Instruction(opcode, guard=guard, pd=parse_pred(operands[0]),
                           ps1=parse_pred(operands[1]), ps2=parse_pred(operands[2]))
    if fmt is Format.LOAD:
        need(3)
        return Instruction(opcode, guard=guard, rd=parse_gpr(operands[0]),
                           rs1=parse_gpr(operands[1]), imm=int(operands[2]))
    if fmt is Format.STORE:
        need(3)
        return Instruction(opcode, guard=guard, rs1=parse_gpr(operands[0]),
                           imm=int(operands[1]), rs2=parse_gpr(operands[2]))
    if fmt is Format.STACK:
        need(1)
        return Instruction(opcode, guard=guard, imm=int(operands[0]))
    if fmt in (Format.BRANCH, Format.CALL):
        need(1)
        target = operands[0]
        if not isinstance(target, (str, int)):
            raise IsaError(f"{mnemonic}: target must be a label or address")
        return Instruction(opcode, guard=guard, target=target)
    if fmt is Format.CALLR:
        need(1)
        return Instruction(opcode, guard=guard, rs1=parse_gpr(operands[0]))
    if fmt is Format.MTS:
        need(2)
        return Instruction(opcode, guard=guard, special=parse_special(operands[0]),
                           rs1=parse_gpr(operands[1]))
    if fmt is Format.MFS:
        need(2)
        return Instruction(opcode, guard=guard, rd=parse_gpr(operands[0]),
                           special=parse_special(operands[1]))
    if fmt is Format.OUT:
        need(1)
        return Instruction(opcode, guard=guard, rs1=parse_gpr(operands[0]))
    if fmt in (Format.RET, Format.WAIT, Format.NOP, Format.HALT):
        need(0)
        return Instruction(opcode, guard=guard)
    raise IsaError(f"unsupported format for {mnemonic}")  # pragma: no cover
