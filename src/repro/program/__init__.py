"""Program representation: basic blocks, functions, CFG, call graph, linker."""

from .basic_block import BasicBlock
from .builder import FunctionBuilder, ProgramBuilder, parse_guard
from .callgraph import CallGraph
from .cfg import ControlFlowGraph, Loop
from .function import Function
from .linker import BlockRecord, FunctionRecord, Image, link
from .program import DataItem, DataSpace, Program

__all__ = [
    "BasicBlock",
    "BlockRecord",
    "CallGraph",
    "ControlFlowGraph",
    "DataItem",
    "DataSpace",
    "Function",
    "FunctionBuilder",
    "FunctionRecord",
    "Image",
    "Loop",
    "Program",
    "ProgramBuilder",
    "link",
    "parse_guard",
]
