"""Linker: lays out a scheduled program in memory and resolves symbols.

The linker assigns byte addresses to every bundle, function and data item,
resolves symbolic branch/call/data targets to numeric addresses, and produces
an :class:`Image` that the simulators, the encoder and the WCET analysis all
operate on.

Address-space layout (see :class:`repro.config.MemoryMap`):

* code, constants, static data, heap objects and the shadow stack live in the
  shared main memory;
* scratchpad (``local``) data lives in a separate, core-private scratchpad
  address space starting at 0;
* the stack cache's backing store grows downwards from ``stack_top``.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Optional

from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import LinkError
from ..isa.instruction import Bundle, Instruction
from ..isa.opcodes import Format, Opcode
from .program import DataSpace, Program


@dataclass(frozen=True)
class FunctionRecord:
    """Placement of one function (or sub-function) in the image."""

    name: str
    entry_addr: int
    size_bytes: int
    is_subfunction: bool = False
    parent: Optional[str] = None


@dataclass(frozen=True)
class BlockRecord:
    """Placement of one basic block in the image."""

    function: str
    label: str
    addr: int
    size_bytes: int
    num_bundles: int


@dataclass
class Image:
    """A linked program: address-mapped bundles, functions, blocks and data."""

    program: Program
    config: PatmosConfig
    entry_addr: int = 0
    bundles: dict[int, Bundle] = field(default_factory=dict)
    functions: list[FunctionRecord] = field(default_factory=list)
    blocks: list[BlockRecord] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    #: Initial main-memory contents: word address -> word value.
    initial_memory: dict[int, int] = field(default_factory=dict)
    #: Initial scratchpad contents: word address -> word value.
    initial_scratchpad: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._func_by_addr: dict[int, FunctionRecord] = {}
        self._func_by_name: dict[str, FunctionRecord] = {}
        self._block_by_addr: dict[int, BlockRecord] = {}
        self._block_by_key: dict[tuple[str, str], BlockRecord] = {}
        self._func_sorted: list[FunctionRecord] = []
        self._func_entries: list[int] = []

    def __getstate__(self) -> dict:
        # The pre-decoded micro-op cache (repro.sim.engine) holds pre-bound
        # evaluation functions that cannot be pickled; it is a pure cache, so
        # drop it and let the engine re-decode after unpickling.  The content
        # hash is a pure cache too (cheap to recompute, guaranteed fresh).
        state = dict(self.__dict__)
        state.pop("_predecoded", None)
        state.pop("_content_hash", None)
        return state

    def content_hash(self) -> str:
        """Stable hex digest of the linked image's content.

        Covers everything that determines execution: the placed bundles
        (address and rendered text, which spells out opcodes, operands,
        guards and immediates), function and block placement, symbols, the
        entry point and the initial memory/scratchpad contents.  Two images
        hash equally iff a simulator cannot tell them apart, so the digest
        keys caches that persist across processes (the generated-code cache
        of :mod:`repro.sim.codegen`).  Memoised per image.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            payload = {
                "entry": self.entry_addr,
                "bundles": [(addr, str(self.bundles[addr]))
                            for addr in sorted(self.bundles)],
                "functions": [(f.name, f.entry_addr, f.size_bytes,
                               f.is_subfunction, f.parent)
                              for f in self.functions],
                "blocks": [(b.function, b.label, b.addr, b.size_bytes,
                            b.num_bundles) for b in self.blocks],
                "symbols": sorted(self.symbols.items()),
                "memory": sorted(self.initial_memory.items()),
                "scratchpad": sorted(self.initial_scratchpad.items()),
            }
            blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            self.__dict__["_content_hash"] = cached
        return cached

    def _index(self) -> None:
        self._func_by_addr = {f.entry_addr: f for f in self.functions}
        self._func_by_name = {f.name: f for f in self.functions}
        self._block_by_addr = {b.addr: b for b in self.blocks}
        self._block_by_key = {(b.function, b.label): b for b in self.blocks}
        self._func_sorted = sorted(self.functions, key=lambda f: f.entry_addr)
        self._func_entries = [f.entry_addr for f in self._func_sorted]

    # -- lookups -----------------------------------------------------------------

    def bundle_at(self, addr: int) -> Bundle:
        try:
            return self.bundles[addr]
        except KeyError as exc:
            raise LinkError(f"no bundle at address {addr:#x}") from exc

    def has_bundle(self, addr: int) -> bool:
        return addr in self.bundles

    def function_at(self, addr: int) -> FunctionRecord:
        """Function record whose entry is exactly ``addr``."""
        try:
            return self._func_by_addr[addr]
        except KeyError as exc:
            raise LinkError(f"no function entry at address {addr:#x}") from exc

    def function_record(self, name: str) -> FunctionRecord:
        try:
            return self._func_by_name[name]
        except KeyError as exc:
            raise LinkError(f"no function record for {name!r}") from exc

    def function_containing(self, addr: int) -> FunctionRecord:
        """Function record whose code range contains ``addr``.

        Resolved with a binary search over the entry addresses built at
        :meth:`_index` time (like every other lookup, mutating the record
        lists afterwards requires re-running ``_index``); this sits on the
        simulator's call/return path.
        """
        pos = bisect_right(self._func_entries, addr) - 1
        if pos >= 0:
            record = self._func_sorted[pos]
            if addr < record.entry_addr + record.size_bytes:
                return record
        raise LinkError(f"address {addr:#x} is not inside any function")

    def block_at(self, addr: int) -> Optional[BlockRecord]:
        """Block record starting exactly at ``addr`` (or ``None``)."""
        return self._block_by_addr.get(addr)

    def block_record(self, function: str, label: str) -> BlockRecord:
        try:
            return self._block_by_key[(function, label)]
        except KeyError as exc:
            raise LinkError(f"no block {label!r} in function {function!r}") from exc

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError as exc:
            raise LinkError(f"undefined symbol {name!r}") from exc

    def code_size_bytes(self) -> int:
        return sum(record.size_bytes for record in self.functions)


def _data_base(space: DataSpace, config: PatmosConfig) -> int:
    mm = config.memory_map
    if space is DataSpace.CONST:
        return mm.const_base
    if space is DataSpace.DATA:
        return mm.data_base
    if space is DataSpace.HEAP:
        return mm.heap_base
    if space is DataSpace.LOCAL:
        return 0
    raise LinkError(f"unknown data space {space}")  # pragma: no cover


def _resolve_instruction(instr: Instruction, addr: int, image: Image,
                         function_name: str,
                         local_labels: dict[str, int]) -> Instruction:
    """Return a copy of ``instr`` with symbolic targets resolved to addresses."""
    if instr.target is None or isinstance(instr.target, int):
        return instr
    name = instr.target
    fmt = instr.info.fmt

    if fmt is Format.BRANCH:
        if instr.opcode is Opcode.BRCF and name in image.symbols \
                and (function_name, name) not in image._block_by_key:
            return instr.with_target(image.symbols[name])
        if name in local_labels:
            return instr.with_target(local_labels[name])
        if name in image.symbols:
            return instr.with_target(image.symbols[name])
        raise LinkError(
            f"{function_name}: branch to undefined label {name!r} at {addr:#x}")
    if fmt is Format.CALL:
        if name not in image.symbols:
            raise LinkError(f"{function_name}: call to undefined symbol {name!r}")
        return instr.with_target(image.symbols[name])
    # Long immediates / li with a symbolic operand: materialise the address.
    if name not in image.symbols:
        raise LinkError(f"{function_name}: undefined symbol {name!r}")
    return replace(instr, imm=image.symbols[name], target=None)


def link(program: Program, config: PatmosConfig = DEFAULT_CONFIG) -> Image:
    """Link a scheduled program into an executable :class:`Image`."""
    if not program.is_scheduled:
        raise LinkError(
            "program is not scheduled; run the compiler (e.g. "
            "repro.compiler.compile_program) before linking")
    program.validate_call_targets()

    image = Image(program=program, config=config)
    mm = config.memory_map

    # ---- pass 1: assign addresses --------------------------------------------
    addr = mm.code_base
    block_layout: list[tuple[str, str, int]] = []  # (function, label, addr)
    for func in program.functions_in_order():
        entry = addr
        func_blocks: list[BlockRecord] = []
        for block in func.blocks:
            block_addr = addr
            size = 0
            for bundle in block.bundles:
                size += bundle.size_bytes
            image.blocks.append(BlockRecord(
                function=func.name, label=block.label, addr=block_addr,
                size_bytes=size, num_bundles=len(block.bundles)))
            block_layout.append((func.name, block.label, block_addr))
            addr += size
            func_blocks.append(image.blocks[-1])
        size_bytes = addr - entry
        image.functions.append(FunctionRecord(
            name=func.name, entry_addr=entry, size_bytes=size_bytes,
            is_subfunction=func.is_subfunction, parent=func.parent))
        if func.name in image.symbols:
            raise LinkError(f"duplicate symbol {func.name!r}")
        image.symbols[func.name] = entry

    # ---- data layout -----------------------------------------------------------
    cursors = {
        DataSpace.CONST: mm.const_base,
        DataSpace.DATA: mm.data_base,
        DataSpace.HEAP: mm.heap_base,
        DataSpace.LOCAL: 0,
    }
    for item in program.data_in_order():
        base = cursors[item.space]
        if item.name in image.symbols:
            raise LinkError(f"duplicate symbol {item.name!r}")
        image.symbols[item.name] = base
        target = (image.initial_scratchpad if item.space is DataSpace.LOCAL
                  else image.initial_memory)
        for index, word in enumerate(item.words):
            target[base + 4 * index] = word & 0xFFFF_FFFF
        cursors[item.space] = base + item.size_bytes
        if item.space is DataSpace.LOCAL and cursors[item.space] > \
                config.scratchpad.size_bytes:
            raise LinkError(
                f"scratchpad data overflows the scratchpad "
                f"({cursors[item.space]} > {config.scratchpad.size_bytes} bytes)")

    image._index()

    # ---- pass 2: resolve targets and place bundles ------------------------------
    for func in program.functions_in_order():
        local_labels = {
            blk_label: blk_addr
            for f_name, blk_label, blk_addr in block_layout
            if f_name == func.name
        }
        for block in func.blocks:
            record = image.block_record(func.name, block.label)
            bundle_addr = record.addr
            for bundle in block.bundles:
                resolved = Bundle(*[
                    _resolve_instruction(instr, bundle_addr, image, func.name,
                                         local_labels)
                    for instr in bundle.instructions()
                ])
                image.bundles[bundle_addr] = resolved
                bundle_addr += bundle.size_bytes

    entry_record = image.function_record(program.entry)
    image.entry_addr = entry_record.entry_addr
    return image
