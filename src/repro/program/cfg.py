"""Control-flow graph construction and loop analysis for a function.

The CFG is built from the unscheduled instruction view of a function's basic
blocks.  Natural loops are recovered from back edges using dominator
information; loop bounds attached to header blocks feed the IPET-based WCET
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..errors import WcetError
from .function import Function


@dataclass(frozen=True)
class Loop:
    """A natural loop: header block plus the set of blocks in the loop body."""

    header: str
    body: frozenset[str]
    back_edges: frozenset[tuple[str, str]]
    bound: Optional[int] = None

    def contains(self, label: str) -> bool:
        return label in self.body


@dataclass
class ControlFlowGraph:
    """Control-flow graph of one function."""

    function: Function
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    entry: str = ""
    exits: list[str] = field(default_factory=list)

    @classmethod
    def build(cls, function: Function) -> "ControlFlowGraph":
        """Construct the CFG of ``function`` from its basic blocks."""
        cfg = cls(function=function)
        graph = cfg.graph
        labels = function.block_labels()
        for label in labels:
            graph.add_node(label)
        for block in function.blocks:
            fallthrough = function.fallthrough_label(block.label)
            succs = block.successors(fallthrough)
            for succ in succs:
                if succ not in graph:
                    raise WcetError(
                        f"block {block.label} of {function.name} branches to "
                        f"unknown label {succ!r}")
                graph.add_edge(block.label, succ)
            if not succs:
                cfg.exits.append(block.label)
        cfg.entry = labels[0] if labels else ""
        if not cfg.exits and labels:
            # Function with no return/halt (e.g. an endless loop): treat the
            # last block as the structural exit for analysis purposes.
            cfg.exits.append(labels[-1])
        return cfg

    # -- basic queries -----------------------------------------------------------

    def successors(self, label: str) -> list[str]:
        return list(self.graph.successors(label))

    def predecessors(self, label: str) -> list[str]:
        return list(self.graph.predecessors(label))

    def edges(self) -> list[tuple[str, str]]:
        return list(self.graph.edges())

    def reachable(self) -> set[str]:
        """Labels reachable from the entry block."""
        if not self.entry:
            return set()
        return set(nx.descendants(self.graph, self.entry)) | {self.entry}

    # -- dominators and loops ------------------------------------------------------

    def dominators(self) -> dict[str, str]:
        """Immediate dominators of all reachable blocks."""
        return nx.immediate_dominators(self.graph, self.entry)

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b``."""
        idom = self.dominators()
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return a == node
            node = parent

    def back_edges(self) -> list[tuple[str, str]]:
        """Edges ``(tail, head)`` where ``head`` dominates ``tail``."""
        reachable = self.reachable()
        result = []
        for tail, head in self.graph.edges():
            if tail in reachable and head in reachable and self.dominates(head, tail):
                result.append((tail, head))
        return result

    def natural_loops(self) -> list[Loop]:
        """Natural loops of the function, one per loop header.

        Back edges sharing a header are merged into a single loop.  The loop
        bound annotation of the header block (if any) is attached.
        """
        loops_by_header: dict[str, set[str]] = {}
        edges_by_header: dict[str, set[tuple[str, str]]] = {}
        for tail, head in self.back_edges():
            body = loops_by_header.setdefault(head, {head})
            edges_by_header.setdefault(head, set()).add((tail, head))
            # Collect all nodes that can reach `tail` without passing `head`.
            stack = [tail]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(p for p in self.graph.predecessors(node) if p != head)
        loops = []
        for header, body in loops_by_header.items():
            bound = self.function.block(header).loop_bound
            loops.append(Loop(
                header=header,
                body=frozenset(body),
                back_edges=frozenset(edges_by_header[header]),
                bound=bound,
            ))
        return loops

    def loop_of(self, label: str) -> Optional[Loop]:
        """Return the innermost loop containing ``label`` (smallest body)."""
        candidates = [loop for loop in self.natural_loops() if loop.contains(label)]
        if not candidates:
            return None
        return min(candidates, key=lambda loop: len(loop.body))

    def loop_nest_depth(self, label: str) -> int:
        """Number of loops containing ``label``."""
        return sum(1 for loop in self.natural_loops() if loop.contains(label))

    def is_reducible(self) -> bool:
        """True if every cycle of the CFG is part of a natural loop."""
        reachable = self.reachable()
        subgraph = self.graph.subgraph(reachable).copy()
        subgraph.remove_edges_from(self.back_edges())
        return nx.is_directed_acyclic_graph(subgraph)

    def topological_order(self) -> list[str]:
        """Reverse-post-order of the acyclic CFG (back edges removed)."""
        reachable = self.reachable()
        subgraph = self.graph.subgraph(reachable).copy()
        subgraph.remove_edges_from(self.back_edges())
        return list(nx.topological_sort(subgraph))
