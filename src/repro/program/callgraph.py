"""Call-graph construction and queries.

The call graph drives the method-cache analyses: function sizes, reachable
sets within loops/scopes and maximum call-chain depth (also used by the
stack-cache analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import WcetError
from .program import Program


@dataclass
class CallGraph:
    """Static call graph of a program (``call`` edges between functions)."""

    program: Program
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @classmethod
    def build(cls, program: Program) -> "CallGraph":
        cg = cls(program=program)
        for func in program.functions.values():
            cg.graph.add_node(func.name)
        for func in program.functions.values():
            # Sub-functions created by the method-cache splitter share their
            # parent's frame and context; their calls are attributed to the
            # parent so that reachability, depth and stack analyses see the
            # logical call structure.
            caller = func.name
            if func.is_subfunction and func.parent in program.functions:
                caller = func.parent
            for callee in func.callees():
                if callee not in program.functions:
                    raise WcetError(
                        f"{func.name} calls unknown function {callee!r}")
                cg.graph.add_edge(caller, callee)
        return cg

    def callees(self, name: str) -> list[str]:
        return list(self.graph.successors(name))

    def callers(self, name: str) -> list[str]:
        return list(self.graph.predecessors(name))

    def is_recursive(self) -> bool:
        """True if the call graph contains a cycle (direct or indirect recursion)."""
        return not nx.is_directed_acyclic_graph(self.graph)

    def reachable_from(self, name: str) -> set[str]:
        """Functions reachable from ``name``, including itself."""
        if name not in self.graph:
            return set()
        return set(nx.descendants(self.graph, name)) | {name}

    def topological_order(self, root: str | None = None) -> list[str]:
        """Callees-first order of functions (bottom-up over the call graph)."""
        if self.is_recursive():
            raise WcetError("call graph is recursive; no topological order exists")
        order = list(nx.topological_sort(self.graph))
        order.reverse()
        if root is not None:
            reachable = self.reachable_from(root)
            order = [name for name in order if name in reachable]
        return order

    def max_call_depth(self, root: str | None = None) -> int:
        """Length of the longest call chain starting at ``root`` (default entry).

        A leaf function has depth 1.  Raises :class:`WcetError` for recursive
        programs, where the depth is unbounded without extra annotations.
        """
        if self.is_recursive():
            raise WcetError("recursive call graph: call depth is unbounded")
        root = root or self.program.entry

        depths: dict[str, int] = {}

        def depth(name: str) -> int:
            if name in depths:
                return depths[name]
            callees = self.callees(name)
            value = 1 + (max((depth(c) for c in callees), default=0))
            depths[name] = value
            return value

        return depth(root)

    def call_paths(self, root: str | None = None) -> list[list[str]]:
        """All call chains from ``root`` to leaf functions."""
        if self.is_recursive():
            raise WcetError("recursive call graph: call paths are unbounded")
        root = root or self.program.entry
        paths: list[list[str]] = []

        def walk(name: str, path: list[str]) -> None:
            path = path + [name]
            callees = self.callees(name)
            if not callees:
                paths.append(path)
                return
            for callee in callees:
                walk(callee, path)

        walk(root, [])
        return paths
