"""Whole-program container: functions, data items and the entry point."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from ..errors import CompilerError, LinkError
from .function import Function


class DataSpace(Enum):
    """Data area in which a data item is placed by the linker.

    The space determines both the address region and which typed load/store
    instructions (and hence which cache) should be used to access the item.
    """

    #: Constants and static data, accessed through the static/constant cache.
    CONST = "const"
    #: Mutable static data, accessed through the static/constant cache.
    DATA = "data"
    #: Heap-allocated objects, accessed through the object/heap cache.
    HEAP = "heap"
    #: Compiler-managed scratchpad memory.
    LOCAL = "local"


@dataclass
class DataItem:
    """A named, word-aligned data object placed in main memory (or scratchpad)."""

    name: str
    words: list[int]
    space: DataSpace = DataSpace.DATA

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)


@dataclass
class Program:
    """A complete Patmos program.

    ``functions`` preserves insertion order, which the linker uses as the code
    layout order.  ``entry`` names the function where execution starts.
    """

    name: str = "program"
    functions: dict[str, Function] = field(default_factory=dict)
    data: dict[str, DataItem] = field(default_factory=dict)
    entry: str = "main"

    # -- construction ------------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise CompilerError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def add_data(self, item: DataItem) -> DataItem:
        if item.name in self.data:
            raise CompilerError(f"duplicate data item {item.name!r}")
        self.data[item.name] = item
        return item

    # -- access ------------------------------------------------------------------

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError as exc:
            raise LinkError(f"unknown function {name!r}") from exc

    def entry_function(self) -> Function:
        return self.function(self.entry)

    def data_item(self, name: str) -> DataItem:
        try:
            return self.data[name]
        except KeyError as exc:
            raise LinkError(f"unknown data item {name!r}") from exc

    def functions_in_order(self) -> list[Function]:
        return list(self.functions.values())

    def data_in_order(self) -> list[DataItem]:
        return list(self.data.values())

    # -- whole-program queries -----------------------------------------------------

    @property
    def is_scheduled(self) -> bool:
        return all(func.is_scheduled for func in self.functions.values())

    def instruction_count(self) -> int:
        return sum(func.instruction_count() for func in self.functions.values())

    def loop_bounds(self) -> dict[tuple[str, str], int]:
        """All known loop bounds as ``(function, header label) -> bound``."""
        bounds: dict[tuple[str, str], int] = {}
        for func in self.functions.values():
            for label, bound in func.loop_bounds().items():
                bounds[(func.name, label)] = bound
        return bounds

    def validate_call_targets(self) -> None:
        """Check that every symbolic call target names a known function."""
        for func in self.functions.values():
            for callee in func.callees():
                if callee not in self.functions:
                    raise LinkError(
                        f"function {func.name!r} calls unknown function {callee!r}")

    def copy(self) -> "Program":
        clone = Program(name=self.name, entry=self.entry)
        for func in self.functions.values():
            clone.functions[func.name] = func.copy()
        for item in self.data.values():
            clone.data[item.name] = DataItem(item.name, list(item.words), item.space)
        return clone

    def __str__(self) -> str:
        parts: Iterable[str] = (str(func) for func in self.functions.values())
        return "\n\n".join(parts)
