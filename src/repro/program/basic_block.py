"""Basic blocks: straight-line sequences of instructions with one terminator.

A basic block exists in two forms during compilation:

* *Unscheduled*: a plain list of :class:`~repro.isa.instruction.Instruction`
  objects, one per line, with the optional control-flow instruction last.
  This is the form produced by the program builder and the assembler and
  consumed by the compiler passes.
* *Scheduled*: a list of :class:`~repro.isa.instruction.Bundle` objects with
  delay slots filled, produced by the VLIW scheduler and consumed by the
  linker and the simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import CompilerError
from ..isa.instruction import Bundle, Instruction
from ..isa.opcodes import ControlKind, Opcode


@dataclass
class BasicBlock:
    """A basic block within a function."""

    label: str
    instrs: list[Instruction] = field(default_factory=list)
    bundles: Optional[list[Bundle]] = None
    #: Maximum number of times the loop headed by this block may iterate per
    #: entry, if the block is a loop header and a bound is known.
    loop_bound: Optional[int] = None

    # -- structural queries -----------------------------------------------------

    @property
    def is_scheduled(self) -> bool:
        return self.bundles is not None

    def terminator(self) -> Optional[Instruction]:
        """Return the control-flow instruction ending this block, if any."""
        for instr in reversed(self.instrs):
            if instr.info.is_control_flow:
                return instr
        return None

    def body_instructions(self) -> list[Instruction]:
        """Return the instructions excluding the terminator."""
        term = self.terminator()
        if term is None:
            return list(self.instrs)
        out = list(self.instrs)
        for index in range(len(out) - 1, -1, -1):
            if out[index] is term:
                del out[index]
                break
        return out

    def successors(self, fallthrough: Optional[str]) -> list[str]:
        """Labels of possible successor blocks.

        ``fallthrough`` is the label of the lexically following block (or
        ``None`` if this is the last block of the function).
        """
        term = self.terminator()
        succs: list[str] = []
        if term is None:
            if fallthrough is not None:
                succs.append(fallthrough)
            return succs
        info = term.info
        if info.control is ControlKind.BRANCH:
            if isinstance(term.target, str):
                succs.append(term.target)
            if not term.guard.is_always and fallthrough is not None:
                # Conditional branch: may fall through.
                succs.append(fallthrough)
            elif term.guard.is_always and term.opcode is Opcode.BR:
                pass  # unconditional branch, no fallthrough
            elif fallthrough is not None and term.opcode is Opcode.BRCF \
                    and not term.guard.is_always:
                pass  # already added above
        elif info.control is ControlKind.CALL:
            # Calls return to the next block.
            if fallthrough is not None:
                succs.append(fallthrough)
        elif info.control is ControlKind.RETURN:
            if not term.guard.is_always and fallthrough is not None:
                succs.append(fallthrough)
        # Remove duplicates while preserving order.
        seen = set()
        unique = []
        for label in succs:
            if label not in seen:
                seen.add(label)
                unique.append(label)
        return unique

    def calls(self) -> list[Instruction]:
        """Return all call instructions in this block."""
        return [i for i in self.instrs if i.info.control is ControlKind.CALL]

    # -- size metrics ------------------------------------------------------------

    def instruction_count(self) -> int:
        return len(self.instrs)

    def scheduled_size_bytes(self) -> int:
        """Code size of the scheduled block in bytes."""
        if self.bundles is None:
            raise CompilerError(f"block {self.label} is not scheduled")
        return sum(bundle.size_bytes for bundle in self.bundles)

    def scheduled_bundle_count(self) -> int:
        if self.bundles is None:
            raise CompilerError(f"block {self.label} is not scheduled")
        return len(self.bundles)

    # -- mutation helpers --------------------------------------------------------

    def append(self, instr: Instruction) -> None:
        self.instrs.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        self.instrs.extend(instrs)

    def replace_instructions(self, instrs: list[Instruction]) -> None:
        self.instrs = list(instrs)
        self.bundles = None

    def copy(self) -> "BasicBlock":
        return BasicBlock(
            label=self.label,
            instrs=list(self.instrs),
            bundles=list(self.bundles) if self.bundles is not None else None,
            loop_bound=self.loop_bound,
        )

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        if self.bundles is not None:
            lines.extend(f"    {bundle}" for bundle in self.bundles)
        else:
            lines.extend(f"    {instr}" for instr in self.instrs)
        return "\n".join(lines)
