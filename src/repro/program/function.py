"""Function representation: an ordered list of basic blocks plus metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import CompilerError
from ..isa.instruction import Instruction
from ..isa.opcodes import ControlKind, Opcode


@dataclass
class Function:
    """A Patmos function.

    Blocks are kept in layout order; the first block is the entry.  Function
    attributes carry information used by the compiler passes and the WCET
    analysis (frame size for the stack cache, sub-function linkage for the
    method cache, loop bounds).
    """

    name: str
    blocks: list = field(default_factory=list)
    #: Number of stack-cache words reserved by this function's frame.
    frame_words: int = 0
    #: True if this function was produced by the method-cache function
    #: splitter; sub-functions are entered via ``brcf`` rather than ``call``.
    is_subfunction: bool = False
    #: Name of the original function for sub-functions.
    parent: Optional[str] = None
    #: Free-form attributes (used by workloads/tests).
    attrs: dict = field(default_factory=dict)

    # -- block access ------------------------------------------------------------

    def block(self, label: str):
        """Return the block with the given label."""
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block {label!r} in function {self.name}")

    def block_labels(self) -> list[str]:
        return [blk.label for blk in self.blocks]

    def entry_block(self):
        if not self.blocks:
            raise CompilerError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def fallthrough_label(self, label: str) -> Optional[str]:
        """Label of the block lexically following ``label`` (or ``None``)."""
        labels = self.block_labels()
        index = labels.index(label)
        if index + 1 < len(labels):
            return labels[index + 1]
        return None

    def __iter__(self) -> Iterator:
        return iter(self.blocks)

    # -- whole-function queries ----------------------------------------------------

    def instructions(self) -> list[Instruction]:
        """All instructions of the function in layout order (unscheduled view)."""
        out: list[Instruction] = []
        for blk in self.blocks:
            out.extend(blk.instrs)
        return out

    def callees(self) -> set[str]:
        """Names of functions called (via ``call``) from this function."""
        names: set[str] = set()
        for instr in self.instructions():
            if instr.opcode is Opcode.CALL and isinstance(instr.target, str):
                names.add(instr.target)
        return names

    def has_calls(self) -> bool:
        return any(
            instr.info.control is ControlKind.CALL for instr in self.instructions()
        )

    @property
    def is_scheduled(self) -> bool:
        return all(blk.is_scheduled for blk in self.blocks)

    def scheduled_size_bytes(self) -> int:
        """Code size of the scheduled function in bytes."""
        return sum(blk.scheduled_size_bytes() for blk in self.blocks)

    def instruction_count(self) -> int:
        return sum(blk.instruction_count() for blk in self.blocks)

    def loop_bounds(self) -> dict[str, int]:
        """Mapping of loop-header labels to their iteration bounds."""
        return {
            blk.label: blk.loop_bound
            for blk in self.blocks
            if blk.loop_bound is not None
        }

    def copy(self) -> "Function":
        return Function(
            name=self.name,
            blocks=[blk.copy() for blk in self.blocks],
            frame_words=self.frame_words,
            is_subfunction=self.is_subfunction,
            parent=self.parent,
            attrs=dict(self.attrs),
        )

    def __str__(self) -> str:
        header = f".func {self.name}"
        return "\n".join([header] + [str(blk) for blk in self.blocks])
