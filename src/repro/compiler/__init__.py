"""WCET-aware compiler passes for Patmos."""

from .dependence import Dependence, DependenceGraph, build_dependence_graph
from .function_splitter import SplitStats, split_function, split_program
from .if_conversion import IfConversionStats, if_convert_function, if_convert_program
from .passes import CompileOptions, CompileResult, compile_and_link, compile_program
from .scheduler import (
    BlockScheduler,
    ScheduleStats,
    schedule_function,
    schedule_program,
)
from .single_path import SinglePathStats, single_path_function, single_path_program
from .stack_alloc import (
    StackAllocationStats,
    allocate_function,
    allocate_program,
    frame_size_words,
)

__all__ = [
    "BlockScheduler",
    "CompileOptions",
    "CompileResult",
    "Dependence",
    "DependenceGraph",
    "IfConversionStats",
    "ScheduleStats",
    "SinglePathStats",
    "SplitStats",
    "StackAllocationStats",
    "allocate_function",
    "allocate_program",
    "build_dependence_graph",
    "compile_and_link",
    "compile_program",
    "frame_size_words",
    "if_convert_function",
    "if_convert_program",
    "schedule_function",
    "schedule_program",
    "single_path_function",
    "single_path_program",
    "split_function",
    "split_program",
]
