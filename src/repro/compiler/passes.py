"""Pass manager: the standard WCET-aware compilation pipeline.

``compile_program`` turns an unscheduled program produced by the builder or
the assembler into an executable, linkable program:

1. stack-cache allocation (``sres``/``sens``/``sfree`` and return-info saving);
2. optional if-conversion or the full single-path transformation;
3. VLIW scheduling (bundling and delay-slot filling), dual- or single-issue;
4. function splitting for the method cache.

The original program is left untouched; a compiled copy is returned together
with statistics from the individual passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import DEFAULT_CONFIG, PatmosConfig
from ..program.linker import Image, link
from ..program.program import Program
from .function_splitter import SplitStats, split_program
from .if_conversion import IfConversionStats, if_convert_program
from .scheduler import ScheduleStats, schedule_program
from .single_path import single_path_program
from .stack_alloc import StackAllocationStats, allocate_program


@dataclass(frozen=True)
class CompileOptions:
    """Options of the standard compilation pipeline."""

    dual_issue: Optional[bool] = None   # None = follow the processor config
    if_convert: bool = False
    single_path: bool = False
    stack_allocation: bool = True
    split_functions: bool = True
    max_function_bytes: Optional[int] = None
    max_side_instructions: int = 12
    #: Schedule split-load waits one memory latency after the load so that
    #: independent instructions hide the latency (Section 3.3).
    hide_split_loads: bool = True


@dataclass
class CompileResult:
    """A compiled program plus per-pass statistics."""

    program: Program
    options: CompileOptions
    schedule: ScheduleStats = field(default_factory=ScheduleStats)
    stack: StackAllocationStats = field(default_factory=StackAllocationStats)
    if_conversion: Optional[IfConversionStats] = None
    split: Optional[SplitStats] = None


def compile_program(program: Program, config: PatmosConfig = DEFAULT_CONFIG,
                    options: CompileOptions = CompileOptions()) -> CompileResult:
    """Run the standard pipeline on a copy of ``program``."""
    compiled = program.copy()
    result = CompileResult(program=compiled, options=options)

    if options.stack_allocation:
        result.stack = allocate_program(compiled)

    if options.single_path:
        stats = single_path_program(compiled, options.max_side_instructions)
        result.if_conversion = IfConversionStats()
        for per_function in stats.values():
            ic = per_function.if_conversion
            result.if_conversion.converted_triangles += ic.converted_triangles
            result.if_conversion.converted_diamonds += ic.converted_diamonds
            result.if_conversion.branches_removed += ic.branches_removed
            result.if_conversion.instructions_predicated += ic.instructions_predicated
    elif options.if_convert:
        result.if_conversion = if_convert_program(
            compiled, options.max_side_instructions)

    schedule_program(compiled, config, dual_issue=options.dual_issue,
                     stats=result.schedule,
                     hide_split_loads=options.hide_split_loads)

    if options.split_functions:
        result.split = split_program(
            compiled, config, max_bytes=options.max_function_bytes,
            dual_issue=options.dual_issue)

    return result


def compile_and_link(program: Program, config: PatmosConfig = DEFAULT_CONFIG,
                     options: CompileOptions = CompileOptions()
                     ) -> tuple[Image, CompileResult]:
    """Compile a program and link it into an executable image."""
    result = compile_program(program, config, options)
    image = link(result.program, config)
    return image, result
