"""CFG simplification: merging straight-line block chains.

If-conversion leaves behind join blocks with a single predecessor and
unconditional branches to them.  Merging such chains removes the branch (and
its two delay slots) and produces the single-block loops that the single-path
transformation expects.
"""

from __future__ import annotations

from ..isa.opcodes import Opcode
from ..program.function import Function
from ..program.program import Program


def _single_predecessor(function: Function, label: str) -> str | None:
    """The unique predecessor block label of ``label`` (or ``None``)."""
    preds = []
    for block in function.blocks:
        fallthrough = function.fallthrough_label(block.label)
        if label in block.successors(fallthrough):
            preds.append(block.label)
    if len(preds) == 1:
        return preds[0]
    return None


def merge_straightline_blocks(function: Function) -> int:
    """Merge blocks with a single predecessor into that predecessor.

    A block ``J`` is merged into ``A`` when ``A`` is its only predecessor and
    ``A`` reaches ``J`` either by falling through or by an unconditional,
    always-executed branch.  Returns the number of merges performed.
    """
    merges = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            label = block.label
            if block is function.entry_block():
                continue
            pred_label = _single_predecessor(function, label)
            if pred_label is None or pred_label == label:
                continue
            pred = function.block(pred_label)
            terminator = pred.terminator()
            if terminator is None:
                if function.fallthrough_label(pred_label) != label:
                    continue
                merged = list(pred.instrs)
            elif terminator.opcode is Opcode.BR and terminator.guard.is_always \
                    and terminator.target == label:
                # Removing the branch is only safe when the merged block ends
                # in the same place afterwards: either the merged-in block has
                # no fall-through of its own (it ends in an unconditional
                # transfer), or it is the lexical successor anyway.
                own_term = block.terminator()
                ends_closed = (own_term is not None and own_term.guard.is_always
                               and own_term.opcode is not Opcode.CALL)
                if not ends_closed and \
                        function.fallthrough_label(pred_label) != label:
                    continue
                merged = pred.body_instructions()
            else:
                continue
            merged.extend(block.instrs)
            pred.replace_instructions(merged)
            if block.loop_bound is not None and pred.loop_bound is None:
                pred.loop_bound = block.loop_bound
            function.blocks.remove(block)
            merges += 1
            changed = True
            break
    return merges


def simplify_program(program: Program) -> int:
    """Merge straight-line chains in every function; returns total merges."""
    return sum(merge_straightline_blocks(function)
               for function in program.functions.values())
