"""Data-dependence analysis within a basic block.

The scheduler needs, for every pair of instructions in a block, the minimum
issue distance (in bundles) that must separate them.  Distances encode the
exposed delays of the Patmos pipeline: a consumer of a load result must issue
at least ``1 + load_delay_slots`` bundles after the load, a consumer of an ALU
result at least one bundle later (full forwarding), and instructions in the
same bundle observe the *old* register values (VLIW semantics), so
anti-dependences allow a distance of zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import PipelineConfig
from ..isa.instruction import Instruction
from ..isa.opcodes import Format, Opcode, result_delay_slots


@dataclass(frozen=True)
class Dependence:
    """A scheduling constraint: ``issue(dst) >= issue(src) + distance``."""

    src: int
    dst: int
    distance: int
    kind: str


@dataclass
class DependenceGraph:
    """Dependence edges between the instructions of one basic block."""

    instructions: list[Instruction]
    edges: list[Dependence] = field(default_factory=list)
    _preds: dict[int, list[Dependence]] = field(default_factory=dict, repr=False)
    _succs: dict[int, list[Dependence]] = field(default_factory=dict, repr=False)

    def add_edge(self, edge: Dependence) -> None:
        self.edges.append(edge)
        self._preds.setdefault(edge.dst, []).append(edge)
        self._succs.setdefault(edge.src, []).append(edge)

    def predecessors(self, index: int) -> list[Dependence]:
        return self._preds.get(index, [])

    def successors(self, index: int) -> list[Dependence]:
        return self._succs.get(index, [])

    def critical_path_lengths(self) -> list[int]:
        """Longest path (in required issue distance) from each node to any sink."""
        count = len(self.instructions)
        lengths = [0] * count
        for index in range(count - 1, -1, -1):
            best = 0
            for edge in self.successors(index):
                best = max(best, edge.distance + lengths[edge.dst])
            lengths[index] = best
        return lengths


def _is_ordered_side_effect(instr: Instruction) -> bool:
    """Instructions whose mutual order must be preserved.

    Memory accesses, stack-control, split-load waits, calls' special-register
    effects and debug output all keep their program order; this is
    conservative but simple and matches what a careful hardware scheduler
    would assume without alias analysis.
    """
    info = instr.info
    return (info.is_mem_access or info.is_stack_control
            or info.fmt in (Format.WAIT, Format.OUT, Format.MTS, Format.HALT))


def build_dependence_graph(instructions: list[Instruction],
                           pipeline: PipelineConfig,
                           split_load_distance: int = 1) -> DependenceGraph:
    """Build the dependence graph of a basic block body.

    ``split_load_distance`` is the issue distance the scheduler should aim for
    between a decoupled main-memory load and its ``wmem``: setting it to the
    expected memory latency lets the scheduler hide that latency behind
    independent work, which is exactly the deterministic latency hiding the
    split-load design enables (Section 3.3 of the paper).
    """
    graph = DependenceGraph(instructions=list(instructions))
    count = len(instructions)

    def add(src: int, dst: int, distance: int, kind: str) -> None:
        graph.add_edge(Dependence(src=src, dst=dst, distance=distance, kind=kind))

    # A decoupled main-memory load only commits its destination register when
    # the matching wmem executes, so for dependence purposes the wmem acts as
    # the defining instruction of that register.
    wmem_defs: dict[int, frozenset[int]] = {}
    pending_rd: frozenset[int] = frozenset()
    for index, instr in enumerate(instructions):
        if instr.info.is_decoupled_load and instr.rd is not None:
            pending_rd = frozenset((instr.rd,))
        elif instr.opcode is Opcode.WMEM:
            wmem_defs[index] = pending_rd
            pending_rd = frozenset()

    for later in range(count):
        instr_j = instructions[later]
        uses_j = instr_j.gpr_uses()
        defs_j = instr_j.gpr_defs()
        pred_uses_j = instr_j.pred_uses()
        pred_defs_j = instr_j.pred_defs()
        special_uses_j = instr_j.special_uses()
        special_defs_j = instr_j.special_defs()
        for earlier in range(later):
            instr_i = instructions[earlier]
            delay_i = result_delay_slots(instr_i.info, pipeline)
            defs_i = instr_i.gpr_defs() | wmem_defs.get(earlier, frozenset())
            uses_i = instr_i.gpr_uses()
            pred_defs_i = instr_i.pred_defs()
            pred_uses_i = instr_i.pred_uses()
            special_defs_i = instr_i.special_defs()
            special_uses_i = instr_i.special_uses()

            # True dependences (read after write): respect the exposed delay.
            if defs_i & uses_j or special_defs_i & special_uses_j:
                add(earlier, later, 1 + delay_i, "raw")
            if pred_defs_i & pred_uses_j:
                add(earlier, later, 1, "raw-pred")

            # Output dependences (write after write): the later write must
            # commit after the earlier one.
            if defs_i & defs_j or pred_defs_i & pred_defs_j \
                    or special_defs_i & special_defs_j:
                delay_j = result_delay_slots(instr_j.info, pipeline)
                add(earlier, later, max(1, 1 + delay_i - delay_j), "waw")

            # Anti dependences (write after read): same bundle is fine because
            # all operands are read before any write commits.
            if uses_i & defs_j or pred_uses_i & pred_defs_j \
                    or special_uses_i & special_defs_j:
                add(earlier, later, 0, "war")

    # Ordered side effects (memory accesses, stack control, waits, output)
    # keep program order; chaining consecutive ones is enough because the
    # constraint is transitive.
    previous_ordered: int | None = None
    for index, instr in enumerate(instructions):
        if not _is_ordered_side_effect(instr):
            continue
        if previous_ordered is not None:
            distance = 1
            # A split main-memory load and its wmem must stay ordered; aiming
            # for `split_load_distance` bundles lets independent work hide
            # the memory latency (Section 3.3).
            if instructions[previous_ordered].info.is_decoupled_load \
                    and instr.opcode is Opcode.WMEM:
                distance = max(1, split_load_distance)
            add(previous_ordered, index, distance, "order")
        previous_ordered = index

    return graph
