"""If-conversion: replacing branches by predicated execution.

Patmos supports fully predicated instructions precisely so that the compiler
can eliminate conditional branches (Sections 3.1 and 4.2 of the paper).
Removing a branch removes its two delay slots and — more importantly for the
WCET — removes a control-flow split that the analysis would otherwise have to
cover conservatively.

This pass recognises the two classic local patterns:

* **triangle** (if-then): a block ends with a conditional branch that skips a
  single side block;
* **diamond** (if-then-else): a conditional branch selects between two side
  blocks that join again.

The side blocks are folded into the branching block with their instructions
guarded by the branch predicate (or its negation), and the branch itself is
deleted.  Only side blocks that are small, have a single predecessor, contain
no calls/returns/stack control and whose instructions are not already
predicated are converted; the pass iterates to a fixed point so nested
conditionals collapse bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Guard, Instruction
from ..isa.opcodes import ControlKind, Opcode
from ..program.basic_block import BasicBlock
from ..program.function import Function
from ..program.program import Program

#: Predicate register reserved as compiler scratch for combining guards when
#: an already-predicated instruction is if-converted under another predicate.
SCRATCH_PRED = 5


@dataclass
class IfConversionStats:
    """What the pass did (used by the single-path / E7 experiments)."""

    converted_triangles: int = 0
    converted_diamonds: int = 0
    branches_removed: int = 0
    instructions_predicated: int = 0
    skipped: list[str] = field(default_factory=list)


def _is_convertible_side(block: BasicBlock, max_instructions: int) -> bool:
    """Can this block be folded into its predecessor under a predicate?"""
    body = block.body_instructions()
    if len(body) > max_instructions:
        return False
    terminator = block.terminator()
    if terminator is not None:
        if terminator.opcode is not Opcode.BR or not terminator.guard.is_always:
            return False
    for instr in block.instrs:
        info = instr.info
        if info.control is not None and instr is not terminator:
            return False
        if info.control in (ControlKind.CALL, ControlKind.RETURN):
            return False
        if info.is_stack_control or info.fmt.name == "HALT":
            return False
        # Already-predicated instructions are folded via the scratch
        # predicate, so the block itself must not define or be guarded by it.
        if SCRATCH_PRED in instr.pred_defs():
            return False
        if instr.guard.pred == SCRATCH_PRED and not instr.guard.is_always:
            return False
    return True


def _predecessors(function: Function, label: str) -> list[str]:
    preds = []
    for block in function.blocks:
        fallthrough = function.fallthrough_label(block.label)
        if label in block.successors(fallthrough):
            preds.append(block.label)
    return preds


def _branch_targets(block: BasicBlock) -> tuple[Instruction | None, str | None]:
    terminator = block.terminator()
    if terminator is None or terminator.opcode is not Opcode.BR:
        return None, None
    if terminator.guard.is_always:
        return None, None
    if not isinstance(terminator.target, str):
        return None, None
    return terminator, terminator.target


def _combine_guards(inner: Guard, outer: Guard) -> list[Instruction]:
    """Compute ``SCRATCH_PRED = inner AND outer`` handling negations.

    Patmos' predicate-combine instructions operate on positive predicates, so
    negated operands are folded with ``pnot``/De Morgan using only the single
    scratch predicate.
    """
    if not inner.negate and not outer.negate:
        return [Instruction(Opcode.PAND, pd=SCRATCH_PRED, ps1=inner.pred,
                            ps2=outer.pred)]
    if inner.negate and not outer.negate:
        return [
            Instruction(Opcode.PNOT, pd=SCRATCH_PRED, ps1=inner.pred),
            Instruction(Opcode.PAND, pd=SCRATCH_PRED, ps1=SCRATCH_PRED,
                        ps2=outer.pred),
        ]
    if not inner.negate and outer.negate:
        return [
            Instruction(Opcode.PNOT, pd=SCRATCH_PRED, ps1=outer.pred),
            Instruction(Opcode.PAND, pd=SCRATCH_PRED, ps1=SCRATCH_PRED,
                        ps2=inner.pred),
        ]
    # Both negated: !a AND !b == !(a OR b).
    return [
        Instruction(Opcode.POR, pd=SCRATCH_PRED, ps1=inner.pred, ps2=outer.pred),
        Instruction(Opcode.PNOT, pd=SCRATCH_PRED, ps1=SCRATCH_PRED),
    ]


def _guarded(instructions: list[Instruction], guard: Guard,
             stats: IfConversionStats) -> list[Instruction]:
    result = []
    for instr in instructions:
        stats.instructions_predicated += 1
        if instr.guard.is_always:
            result.append(instr.with_guard(guard))
        else:
            result.extend(_combine_guards(instr.guard, guard))
            result.append(instr.with_guard(Guard(SCRATCH_PRED, False)))
    return result


def _exit_of(block: BasicBlock, function: Function) -> str | None:
    """The single successor of a side block (branch target or fallthrough)."""
    terminator = block.terminator()
    if terminator is not None and isinstance(terminator.target, str):
        return terminator.target
    return function.fallthrough_label(block.label)


def if_convert_function(function: Function, max_side_instructions: int = 12,
                        stats: IfConversionStats | None = None) -> IfConversionStats:
    """Apply if-conversion to a function in place until no pattern remains.

    After the fixed point is reached, straight-line block chains left behind
    by the conversion (join blocks with a single predecessor) are merged so
    that the unconditional branches and their delay slots disappear as well.
    """
    stats = stats if stats is not None else IfConversionStats()
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            branch, target = _branch_targets(block)
            if branch is None:
                continue
            fallthrough = function.fallthrough_label(block.label)
            if fallthrough is None or fallthrough == target:
                continue
            then_block = function.block(fallthrough)
            guard = branch.guard
            then_guard = Guard(guard.pred, not guard.negate)
            else_guard = Guard(guard.pred, guard.negate)

            if not _is_convertible_side(then_block, max_side_instructions):
                stats.skipped.append(then_block.label)
                continue
            if len(_predecessors(function, then_block.label)) != 1:
                continue
            # The branch predicate must not be redefined in the side block(s).
            if guard.pred in {p for i in then_block.instrs for p in i.pred_defs()}:
                continue

            then_exit = _exit_of(then_block, function)

            if then_exit == target:
                # Triangle: branch skips `then_block`, both paths join at target.
                new_body = block.body_instructions()
                new_body.extend(_guarded(then_block.body_instructions(),
                                         then_guard, stats))
                block.replace_instructions(new_body)
                if function.fallthrough_label(then_block.label) != target:
                    # Preserve the join edge with an unconditional branch.
                    block.append(Instruction(Opcode.BR, target=target))
                function.blocks.remove(then_block)
                stats.converted_triangles += 1
                stats.branches_removed += 1
                changed = True
                break

            # Possible diamond: the branch target is the else block.
            if target not in function.block_labels():
                continue
            else_block = function.block(target)
            if not _is_convertible_side(else_block, max_side_instructions):
                stats.skipped.append(else_block.label)
                continue
            if len(_predecessors(function, else_block.label)) != 1:
                continue
            if guard.pred in {p for i in else_block.instrs for p in i.pred_defs()}:
                continue
            else_exit = _exit_of(else_block, function)
            if then_exit is None or then_exit != else_exit:
                continue
            join = then_exit

            new_body = block.body_instructions()
            new_body.extend(_guarded(then_block.body_instructions(),
                                     then_guard, stats))
            new_body.extend(_guarded(else_block.body_instructions(),
                                     else_guard, stats))
            block.replace_instructions(new_body)
            # After removing both side blocks the join block may not be the
            # lexical successor any more; branch to it explicitly.
            block.append(Instruction(Opcode.BR, target=join))
            function.blocks.remove(then_block)
            function.blocks.remove(else_block)
            stats.converted_diamonds += 1
            stats.branches_removed += 2
            changed = True
            break

    from .simplify import merge_straightline_blocks

    stats.branches_removed += merge_straightline_blocks(function)
    return stats


def if_convert_program(program: Program, max_side_instructions: int = 12
                       ) -> IfConversionStats:
    """Apply if-conversion to every function of a program in place."""
    stats = IfConversionStats()
    for function in program.functions.values():
        if_convert_function(function, max_side_instructions, stats)
    return stats
