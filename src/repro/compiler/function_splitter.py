"""Function splitting for the method cache.

The method cache operates on whole functions, so a function larger than the
cache (or larger than a chosen region budget) would thrash or not fit at all.
Section 4.2 of the paper describes splitting and placing functions so that the
worst-case path fits; this pass implements the splitting half:

* the scheduled blocks of an oversized function are partitioned into
  contiguous *regions* of at most ``max_bytes`` of code;
* every region after the first becomes a *sub-function* entered via ``brcf``
  (branch with cache fill), the Patmos instruction dedicated to this purpose;
* fall-through and branches across region boundaries are rewritten to
  ``brcf`` transfers; branches may only target region entries, so region
  boundaries are adjusted until that invariant holds.

Sub-functions share the caller's frame and return information: ``brcf`` does
not touch ``srb``/``sro``, so a ``ret`` inside any region still returns to the
original caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import PatmosConfig
from ..errors import CompilerError
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..program.basic_block import BasicBlock
from ..program.function import Function
from ..program.program import Program
from .scheduler import BlockScheduler


@dataclass
class SplitStats:
    """Summary of the function-splitting pass."""

    functions_split: int = 0
    regions_created: int = 0
    brcf_inserted: int = 0
    region_sizes: dict[str, list[int]] = field(default_factory=dict)


def _block_size(block: BasicBlock) -> int:
    if block.bundles is not None:
        return block.scheduled_size_bytes()
    # Conservative pre-scheduling estimate: one 8-byte bundle per instruction.
    return 8 * max(1, len(block.instrs))


def _branch_targets_by_block(function: Function) -> dict[str, list[str]]:
    """Labels branched to, per source block (excluding calls/returns)."""
    targets: dict[str, list[str]] = {}
    for block in function.blocks:
        labels = []
        for instr in block.instrs:
            if instr.opcode in (Opcode.BR, Opcode.BRCF) and \
                    isinstance(instr.target, str):
                labels.append(instr.target)
        targets[block.label] = labels
    return targets


def _partition_blocks(function: Function, max_bytes: int) -> list[list[BasicBlock]]:
    """Partition blocks into contiguous regions of at most ``max_bytes``.

    Region boundaries are then adjusted so that every cross-region branch
    targets the first block of a region.
    """
    blocks = function.blocks
    sizes = [_block_size(block) for block in blocks]
    for block, size in zip(blocks, sizes):
        if size > max_bytes:
            raise CompilerError(
                f"basic block {block.label} of {function.name} ({size} bytes) "
                f"does not fit the method-cache region budget of {max_bytes} "
                f"bytes; reduce the block or increase the cache")

    # Initial greedy partition by size.  Reserve room for one brcf transfer
    # (instruction plus its delay-slot padding) that may be appended to a
    # region for the fall-through, and for branches growing from two to three
    # delay slots when rewritten to brcf.
    budget = max(8, max_bytes - 32)
    boundaries = {0}
    current = 0
    for index, size in enumerate(sizes):
        if current + size > budget and current > 0:
            boundaries.add(index)
            current = 0
        current += size

    # Cross-region branch targets must start a region.
    label_index = {block.label: i for i, block in enumerate(blocks)}
    targets = _branch_targets_by_block(function)
    changed = True
    while changed:
        changed = False
        sorted_bounds = sorted(boundaries)

        def region_of(index: int) -> int:
            region = 0
            for bound in sorted_bounds:
                if index >= bound:
                    region = bound
            return region

        for src_label, dst_labels in targets.items():
            src_index = label_index[src_label]
            for dst_label in dst_labels:
                if dst_label not in label_index:
                    continue  # brcf to another function
                dst_index = label_index[dst_label]
                if region_of(src_index) != region_of(dst_index) and \
                        dst_index not in boundaries:
                    boundaries.add(dst_index)
                    changed = True

    sorted_bounds = sorted(boundaries)
    regions: list[list[BasicBlock]] = []
    for number, start in enumerate(sorted_bounds):
        end = sorted_bounds[number + 1] if number + 1 < len(sorted_bounds) \
            else len(blocks)
        regions.append(blocks[start:end])
    return [region for region in regions if region]


def split_function(function: Function, program: Program, config: PatmosConfig,
                   max_bytes: int, stats: SplitStats | None = None,
                   dual_issue: bool | None = None) -> list[Function]:
    """Split ``function`` into method-cache-sized regions if necessary.

    Returns the list of newly created sub-functions (empty if no split was
    needed).  The program is updated in place.
    """
    stats = stats if stats is not None else SplitStats()
    total_size = sum(_block_size(block) for block in function.blocks)
    if total_size <= max_bytes:
        return []

    regions = _partition_blocks(function, max_bytes)
    if len(regions) <= 1:
        return []

    region_names = [function.name if index == 0 else f"{function.name}.part{index}"
                    for index in range(len(regions))]

    def region_of_label(label: str) -> int:
        for index, region in enumerate(regions):
            if any(block.label == label for block in region):
                return index
        raise CompilerError(f"label {label!r} not found in any region")

    scheduler = BlockScheduler(config, dual_issue=dual_issue)
    new_functions: list[Function] = []
    for index, region in enumerate(regions):
        # Rewrite cross-region branches into brcf to the target region's entry.
        for block in region:
            rewritten = []
            modified = False
            for instr in block.instrs:
                if instr.opcode is Opcode.BR and isinstance(instr.target, str):
                    target_region = region_of_label(instr.target)
                    if target_region != index:
                        if instr.target != regions[target_region][0].label:
                            raise CompilerError(
                                f"branch from {block.label} to {instr.target} "
                                f"crosses a region boundary mid-region")
                        rewritten.append(Instruction(
                            Opcode.BRCF, guard=instr.guard,
                            target=region_names[target_region]))
                        stats.brcf_inserted += 1
                        modified = True
                        continue
                rewritten.append(instr)
            if modified:
                block.replace_instructions(rewritten)

        # Fall-through across the region boundary becomes an explicit brcf.
        last = region[-1]
        terminator = last.terminator()
        falls_through = (terminator is None or not terminator.guard.is_always
                         or terminator.opcode is Opcode.CALL)
        if index + 1 < len(regions) and falls_through:
            transfer = Instruction(Opcode.BRCF, target=region_names[index + 1])
            if terminator is None:
                last.append(transfer)
                last.bundles = None
            else:
                # The last block already ends in a control transfer that can
                # fall through (conditional branch or call); put the region
                # transfer into a small bridge block of its own.
                bridge = BasicBlock(
                    label=f".Lsplit_{function.name}_{index}",
                    instrs=[transfer])
                region.append(bridge)
            stats.brcf_inserted += 1

        # Re-schedule blocks whose instruction list changed.
        for block in region:
            if block.bundles is None or any(
                    instr.opcode is Opcode.BRCF for instr in block.instrs):
                block.bundles = scheduler.schedule_block(block)

        if index == 0:
            function.blocks = list(region)
        else:
            sub = Function(
                name=region_names[index],
                blocks=list(region),
                frame_words=0,
                is_subfunction=True,
                parent=function.name,
            )
            program.add_function(sub)
            new_functions.append(sub)
        stats.region_sizes.setdefault(function.name, []).append(
            sum(_block_size(block) for block in region))

    stats.functions_split += 1
    stats.regions_created += len(regions)
    return new_functions


def split_program(program: Program, config: PatmosConfig,
                  max_bytes: int | None = None,
                  dual_issue: bool | None = None) -> SplitStats:
    """Split every oversized function of a program for the method cache."""
    stats = SplitStats()
    if max_bytes is None:
        max_bytes = config.method_cache.size_bytes // 2
    for function in list(program.functions.values()):
        if function.is_subfunction:
            continue
        split_function(function, program, config, max_bytes, stats,
                       dual_issue=dual_issue)
    return stats
