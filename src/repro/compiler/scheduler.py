"""VLIW instruction scheduler: bundling and delay-slot filling.

Patmos is statically scheduled: the compiler must (a) pack independent
instructions into dual-issue bundles, (b) keep the required issue distance
between producers and consumers (the exposed delays of loads, multiplies and
compares), and (c) place control-transfer instructions so that exactly the
architectural number of delay-slot bundles follows them, padding with NOPs
only when no useful instruction can be moved into the slots.

The scheduler is a classic list scheduler over the block-local dependence
graph with critical-path priority.  It is deliberately local (per basic
block); global code motion is out of scope for this reproduction, as in the
paper's early LLVM port (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PatmosConfig
from ..errors import CompilerError
from ..isa.instruction import Bundle, Instruction, NOP
from ..isa.opcodes import control_delay_slots, result_delay_slots
from ..program.basic_block import BasicBlock
from ..program.function import Function
from ..program.program import Program
from .dependence import build_dependence_graph


@dataclass
class ScheduleStats:
    """Aggregate scheduling statistics (used by the dual-issue experiments)."""

    blocks: int = 0
    instructions: int = 0
    bundles: int = 0
    dual_issue_bundles: int = 0
    nops_inserted: int = 0

    @property
    def slot_utilisation(self) -> float:
        """Useful instructions per available issue slot."""
        if self.bundles == 0:
            return 0.0
        return self.instructions / (2 * self.bundles)


class BlockScheduler:
    """Schedules a single basic block into bundles."""

    def __init__(self, config: PatmosConfig, dual_issue: bool | None = None,
                 hide_split_loads: bool = True):
        self.config = config
        self.dual_issue = (config.pipeline.dual_issue
                           if dual_issue is None else dual_issue)
        # Aim to schedule the wmem of a split load one memory transfer after
        # the load itself, so independent instructions hide the latency.
        self.split_load_distance = (
            config.memory.transfer_cycles(1) if hide_split_loads else 1)

    # -- public API -----------------------------------------------------------------

    def schedule_block(self, block: BasicBlock, stats: ScheduleStats | None = None
                       ) -> list[Bundle]:
        """Schedule the block's instructions and return its bundles."""
        terminator = block.terminator()
        body = block.body_instructions()
        slots = self._schedule_body(body)

        if terminator is not None:
            slots = self._place_terminator(slots, body, terminator)

        bundles = [Bundle(*slot) for slot in slots]
        if stats is not None:
            stats.blocks += 1
            stats.bundles += len(bundles)
            useful = sum(1 for b in bundles for i in b if not i.is_nop)
            stats.instructions += useful
            stats.nops_inserted += sum(1 for b in bundles for i in b if i.is_nop)
            stats.dual_issue_bundles += sum(1 for b in bundles if len(b) == 2)
        return bundles

    # -- body scheduling ----------------------------------------------------------------

    def _schedule_body(self, body: list[Instruction]) -> list[list[Instruction]]:
        """List-schedule the block body; returns a list of slot lists."""
        if not body:
            return []
        graph = build_dependence_graph(
            body, self.config.pipeline,
            split_load_distance=self.split_load_distance)
        priorities = graph.critical_path_lengths()
        count = len(body)
        issue_slot: dict[int, int] = {}
        scheduled: set[int] = set()
        slots: list[list[Instruction]] = []
        cycle = 0

        while len(scheduled) < count:
            ready = []
            for index in range(count):
                if index in scheduled:
                    continue
                earliest = 0
                ok = True
                for edge in graph.predecessors(index):
                    if edge.src not in scheduled:
                        ok = False
                        break
                    earliest = max(earliest, issue_slot[edge.src] + edge.distance)
                if ok and earliest <= cycle:
                    ready.append(index)
            # Highest priority first; preserve program order among ties.
            ready.sort(key=lambda i: (-priorities[i], i))

            bundle: list[Instruction] = []
            bundle_indices: list[int] = []
            for index in ready:
                if not self._fits(bundle, body[index]):
                    continue
                bundle.append(body[index])
                bundle_indices.append(index)
                if len(bundle) == 2 or body[index].info.long_imm \
                        or not self.dual_issue:
                    break
            if not bundle:
                # Nothing ready this cycle (waiting for a delay): emit a NOP.
                slots.append([NOP])
                cycle += 1
                continue
            # Keep the slot-0-only instruction first within the bundle.
            bundle_sorted = sorted(
                zip(bundle_indices, bundle),
                key=lambda pair: (not pair[1].info.slot0_only, pair[0]))
            slots.append([instr for _, instr in bundle_sorted])
            for index in bundle_indices:
                issue_slot[index] = cycle
                scheduled.add(index)
            cycle += 1

        # Exposed delays must not leak across the block boundary: a consumer
        # in a successor block may issue immediately after this block, so a
        # producer with a non-zero delay needs that many bundles after it
        # within the block (the scheduler is block-local and has no liveness
        # information, so it pads conservatively).
        needed = 0
        for index, issue in issue_slot.items():
            delay = result_delay_slots(body[index].info, self.config.pipeline)
            needed = max(needed, issue + 1 + delay)
        while len(slots) < needed:
            slots.append([NOP])
        return slots

    def _fits(self, bundle: list[Instruction], instr: Instruction) -> bool:
        if not bundle:
            return True
        if not self.dual_issue or len(bundle) >= 2:
            return False
        first = bundle[0]
        if first.info.long_imm or instr.info.long_imm:
            return False
        if first.info.slot0_only and instr.info.slot0_only:
            return False
        return True

    # -- terminator placement ---------------------------------------------------------------

    def _place_terminator(self, slots: list[list[Instruction]],
                          body: list[Instruction],
                          terminator: Instruction) -> list[list[Instruction]]:
        delay_slots = control_delay_slots(terminator.info, self.config.pipeline)

        # Earliest position allowed by dependences from body instructions on
        # the terminator (guard predicate, call address register, srb/sro).
        deps = build_dependence_graph(
            body + [terminator], self.config.pipeline,
            split_load_distance=self.split_load_distance)
        term_index = len(body)
        issue_of: dict[int, int] = {}
        for slot_index, slot in enumerate(slots):
            for instr in slot:
                for body_index, body_instr in enumerate(body):
                    if body_instr is instr and body_index not in issue_of:
                        issue_of[body_index] = slot_index
                        break
        earliest = 0
        for edge in deps.predecessors(term_index):
            if edge.src in issue_of:
                earliest = max(earliest, issue_of[edge.src] + edge.distance)

        n = len(slots)
        desired = max(earliest, n - delay_slots, 0)

        placed_at = None
        for candidate in range(desired, n):
            slot = slots[candidate]
            if len(slot) == 1 and not slot[0].info.slot0_only \
                    and not slot[0].info.long_imm and self.dual_issue:
                slots[candidate] = [terminator, slot[0]]
                placed_at = candidate
                break
        if placed_at is None:
            # Insert the terminator as its own bundle at the desired position
            # (never before `earliest`, never leaving more than `delay_slots`
            # bundles after it).  If the terminator depends on a result that
            # is not ready yet, pad with NOPs first.
            while len(slots) < earliest:
                slots.append([NOP])
            n = len(slots)
            insert_at = max(earliest, n - delay_slots, 0)
            slots.insert(insert_at, [terminator])
            placed_at = insert_at
            n += 1

        following = n - 1 - placed_at
        if following > delay_slots:
            raise CompilerError(
                "internal scheduler error: too many bundles after a control "
                "transfer")
        for _ in range(delay_slots - following):
            slots.append([NOP])
        return slots


def schedule_function(function: Function, config: PatmosConfig,
                      dual_issue: bool | None = None,
                      stats: ScheduleStats | None = None,
                      hide_split_loads: bool = True) -> Function:
    """Schedule all blocks of a function in place and return it."""
    scheduler = BlockScheduler(config, dual_issue=dual_issue,
                               hide_split_loads=hide_split_loads)
    for block in function.blocks:
        block.bundles = scheduler.schedule_block(block, stats=stats)
    return function


def schedule_program(program: Program, config: PatmosConfig,
                     dual_issue: bool | None = None,
                     stats: ScheduleStats | None = None,
                     hide_split_loads: bool = True) -> Program:
    """Schedule every function of a program in place and return it."""
    for function in program.functions.values():
        schedule_function(function, config, dual_issue=dual_issue, stats=stats,
                          hide_split_loads=hide_split_loads)
    return program
