"""Single-path transformation (Puschner's single-path programming paradigm).

Section 4.2 of the paper proposes predication as the enabler of *single-path*
code: a program whose execution path — and hence execution time — does not
depend on input data.  The transformation removes all data-dependent control
flow:

1. all conditionals are if-converted into predicated straight-line code;
2. data-dependent loops are turned into counted loops that always iterate
   their annotated *bound* number of times, with the loop body guarded by an
   "active" predicate that turns false once the original exit condition
   triggers.

This module implements the transformation for functions that, after
if-conversion, contain only *simple* loops: a single-block loop whose
terminator is a conditional backwards branch and whose header carries a loop
bound annotation.  That covers the kernels used in the evaluation; general
single-path conversion of arbitrary reducible CFGs is future work in the
paper as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompilerError
from ..isa.instruction import Guard, Instruction
from ..isa.opcodes import Opcode
from ..program.basic_block import BasicBlock
from ..program.function import Function
from ..program.program import Program
from .if_conversion import IfConversionStats, if_convert_function

#: Registers and predicates reserved for the transformation.  The builder's
#: register-allocation convention keeps r26-r28 and p5-p7 free for compiler
#: use (see DESIGN.md).
COUNTER_REG = 26
ACTIVE_PRED = 7
EXIT_PRED = 6
SCRATCH_PRED = 5


@dataclass
class SinglePathStats:
    """Summary of a single-path transformation."""

    if_conversion: IfConversionStats
    loops_converted: int = 0
    loops_already_counted: int = 0


def _is_simple_loop(function: Function, block: BasicBlock) -> bool:
    """A single-block self loop with a conditional backwards branch."""
    terminator = block.terminator()
    if terminator is None or terminator.opcode is not Opcode.BR:
        return False
    if terminator.guard.is_always:
        return False
    return terminator.target == block.label


def single_path_function(function: Function,
                         max_side_instructions: int = 32) -> SinglePathStats:
    """Apply the single-path transformation to a function in place."""
    ic_stats = if_convert_function(function, max_side_instructions)
    stats = SinglePathStats(if_conversion=ic_stats)

    for block in list(function.blocks):
        if not _is_simple_loop(function, block):
            continue
        if block.loop_bound is None:
            raise CompilerError(
                f"single-path conversion of loop {block.label!r} in "
                f"{function.name} requires a loop bound annotation")
        terminator = block.terminator()
        exit_pred = terminator.guard.pred
        body = block.body_instructions()

        uses_counter = any(
            COUNTER_REG in instr.gpr_uses() | instr.gpr_defs() for instr in body)
        uses_preds = any(
            {ACTIVE_PRED, EXIT_PRED} & (instr.pred_defs() | instr.pred_uses())
            for instr in body)
        if uses_counter or uses_preds:
            raise CompilerError(
                f"single-path conversion of {function.name}/{block.label} needs "
                f"r{COUNTER_REG}, p{EXIT_PRED} and p{ACTIVE_PRED} to be "
                "unused in the loop")

        active_guard = Guard(ACTIVE_PRED, False)
        scratch_guard = Guard(SCRATCH_PRED, False)
        new_body: list[Instruction] = []
        for instr in body:
            if instr.guard.is_always:
                new_body.append(instr.with_guard(active_guard))
            else:
                # Already-predicated instructions (e.g. produced by prior
                # if-conversion) must execute only when the loop is active AND
                # their own guard holds: conjoin both into the scratch
                # predicate.
                if instr.guard.negate:
                    new_body.append(Instruction(
                        Opcode.PNOT, pd=SCRATCH_PRED, ps1=instr.guard.pred))
                    new_body.append(Instruction(
                        Opcode.PAND, pd=SCRATCH_PRED, ps1=SCRATCH_PRED,
                        ps2=ACTIVE_PRED))
                else:
                    new_body.append(Instruction(
                        Opcode.PAND, pd=SCRATCH_PRED, ps1=instr.guard.pred,
                        ps2=ACTIVE_PRED))
                new_body.append(instr.with_guard(scratch_guard))

        # The original exit condition only updates the active predicate while
        # the loop is still active: active = active AND continue-condition.
        new_body.append(Instruction(
            Opcode.PAND, pd=ACTIVE_PRED, ps1=ACTIVE_PRED, ps2=exit_pred,
            guard=Guard(0, False)))
        # Counted-loop control: always iterate exactly `bound` times.
        new_body.append(Instruction(
            Opcode.SUBI, rd=COUNTER_REG, rs1=COUNTER_REG, imm=1))
        new_body.append(Instruction(
            Opcode.CMPINEQ, pd=EXIT_PRED, rs1=COUNTER_REG, imm=0))
        new_body.append(Instruction(
            Opcode.BR, target=block.label, guard=Guard(EXIT_PRED, False)))
        block.replace_instructions(new_body)

        # Initialise the counter and the active predicate in the preheader.
        preheader = _preheader_of(function, block)
        init = [
            Instruction(Opcode.LIL, rd=COUNTER_REG, imm=block.loop_bound),
            Instruction(Opcode.CMPIEQ, pd=ACTIVE_PRED, rs1=0, imm=0),
        ]
        _insert_before_terminator(preheader, init)
        stats.loops_converted += 1

    return stats


def _preheader_of(function: Function, loop_block: BasicBlock) -> BasicBlock:
    """The unique block that enters the loop from outside (lexical predecessor)."""
    labels = function.block_labels()
    index = labels.index(loop_block.label)
    if index == 0:
        raise CompilerError(
            f"loop {loop_block.label} of {function.name} has no preheader block")
    return function.blocks[index - 1]


def _insert_before_terminator(block: BasicBlock,
                              instructions: list[Instruction]) -> None:
    terminator = block.terminator()
    if terminator is None:
        block.extend(instructions)
        return
    index = block.instrs.index(terminator)
    block.instrs[index:index] = instructions
    block.bundles = None


def single_path_program(program: Program,
                        max_side_instructions: int = 32) -> dict[str, SinglePathStats]:
    """Apply the single-path transformation to every function of a program."""
    return {
        name: single_path_function(function, max_side_instructions)
        for name, function in program.functions.items()
    }
