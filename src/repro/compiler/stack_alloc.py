"""Stack-cache allocation: inserting sres/sens/sfree and saving return info.

For every function that declares a frame (``FunctionBuilder.frame``) or makes
calls, this pass inserts the stack-cache management instructions described in
Section 4.2 of the paper:

* ``sres`` at the function entry reserves the frame;
* ``sens`` after every call ensures the frame is back in the cache (the callee
  may have spilled it);
* ``sfree`` before every return releases the frame.

Non-leaf functions additionally save the return information (``srb``/``sro``)
into the first two words of their frame, because a nested call overwrites
these special registers; they are restored right before the return.  The pass
reserves registers ``r30``/``r31`` as scratch for this save/restore sequence —
the builder convention keeps them free for compiler use.

Frame layout (word offsets relative to the stack top after ``sres``):

* ``0 .. frame_words-1``   — user frame slots (accessed via ``lws``/``sws``)
* ``frame_words``          — saved ``srb`` (non-leaf functions only)
* ``frame_words + 1``      — saved ``sro`` (non-leaf functions only)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompilerError
from ..isa.instruction import Instruction
from ..isa.opcodes import ControlKind, Opcode
from ..isa.registers import SpecialReg
from ..program.function import Function
from ..program.program import Program

#: Scratch registers reserved for prologue/epilogue code.
SCRATCH_REG_A = 31
SCRATCH_REG_B = 30


@dataclass
class StackAllocationStats:
    """Summary of the stack-allocation pass."""

    functions_with_frames: int = 0
    sres_inserted: int = 0
    sens_inserted: int = 0
    sfree_inserted: int = 0
    saved_return_info: int = 0


def frame_size_words(function: Function) -> int:
    """Total stack-cache words reserved for ``function`` (frame + return info)."""
    non_leaf = function.has_calls()
    return function.frame_words + (2 if non_leaf else 0)


def allocate_function(function: Function,
                      stats: StackAllocationStats | None = None) -> None:
    """Insert stack-cache management code into ``function`` in place."""
    stats = stats if stats is not None else StackAllocationStats()
    non_leaf = function.has_calls()
    total_words = frame_size_words(function)
    if total_words == 0:
        return
    if function.is_subfunction:
        # Sub-functions share the parent's frame; the parent already manages it.
        return

    for block in function.blocks:
        for instr in block.instrs:
            if instr.opcode in (Opcode.SRES, Opcode.SENS, Opcode.SFREE):
                raise CompilerError(
                    f"{function.name} already contains stack-control "
                    "instructions; do not combine manual stack management "
                    "with the allocation pass")

    stats.functions_with_frames += 1
    save_srb_offset = 4 * function.frame_words
    save_sro_offset = 4 * (function.frame_words + 1)

    # --- prologue ---------------------------------------------------------------
    entry = function.entry_block()
    prologue: list[Instruction] = [Instruction(Opcode.SRES, imm=total_words)]
    stats.sres_inserted += 1
    if non_leaf:
        prologue.extend([
            Instruction(Opcode.MFS, rd=SCRATCH_REG_A, special=SpecialReg.SRB),
            Instruction(Opcode.MFS, rd=SCRATCH_REG_B, special=SpecialReg.SRO),
            Instruction(Opcode.SWS, rs1=0, imm=save_srb_offset, rs2=SCRATCH_REG_A),
            Instruction(Opcode.SWS, rs1=0, imm=save_sro_offset, rs2=SCRATCH_REG_B),
        ])
        stats.saved_return_info += 1
    entry.instrs[0:0] = prologue
    entry.bundles = None

    # --- after every call: re-ensure the frame --------------------------------------
    labels = function.block_labels()
    for index, block in enumerate(function.blocks):
        terminator = block.terminator()
        if terminator is not None and terminator.info.control is ControlKind.CALL:
            if index + 1 >= len(labels):
                raise CompilerError(
                    f"call at the end of {function.name} has no return block")
            successor = function.blocks[index + 1]
            successor.instrs[0:0] = [Instruction(Opcode.SENS, imm=total_words)]
            successor.bundles = None
            stats.sens_inserted += 1

    # --- epilogue before every return -------------------------------------------------
    for block in function.blocks:
        new_instrs: list[Instruction] = []
        changed = False
        for instr in block.instrs:
            if instr.info.control is ControlKind.RETURN:
                epilogue: list[Instruction] = []
                if non_leaf:
                    epilogue.extend([
                        Instruction(Opcode.LWS, rd=SCRATCH_REG_A, rs1=0,
                                    imm=save_srb_offset),
                        Instruction(Opcode.LWS, rd=SCRATCH_REG_B, rs1=0,
                                    imm=save_sro_offset),
                        Instruction(Opcode.MTS, special=SpecialReg.SRB,
                                    rs1=SCRATCH_REG_A),
                        Instruction(Opcode.MTS, special=SpecialReg.SRO,
                                    rs1=SCRATCH_REG_B),
                    ])
                epilogue.append(Instruction(Opcode.SFREE, imm=total_words))
                stats.sfree_inserted += 1
                new_instrs.extend(epilogue)
                changed = True
            new_instrs.append(instr)
        if changed:
            block.replace_instructions(new_instrs)


def allocate_program(program: Program) -> StackAllocationStats:
    """Run stack-cache allocation on every function of a program."""
    stats = StackAllocationStats()
    for function in program.functions.values():
        allocate_function(function, stats)
    return stats
