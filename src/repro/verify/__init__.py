"""WCET soundness conformance: the paper's central claim as an executable gate.

The paper argues that the Patmos architecture is *WCET-analysable*: for every
program and hardware configuration the static bound computed by
:mod:`repro.wcet` must dominate every execution the hardware can produce.
This package turns that claim into a differential test::

    python -m repro.verify            # full kernel × cache-model × arbiter matrix
    python -m repro.verify --json BENCH_wcet.json --kernels performance
    python -m repro.verify --jobs 4   # parallel matrix, identical report

Methodology
-----------

* **Soundness** is checked per core: ``observed cycles <= wcet_cycles`` for
  the genuine cycle-accurate execution — the fast-engine simulation on one
  core, the interleaved shared-memory co-simulation for multicore arbiters.
  Any bounded core whose observation exceeds its bound is a *violation* and
  fails the run (the CLI and CI gate exit non-zero).
* **Tightness** is the ratio ``wcet_cycles / observed cycles`` (>= 1.0 when
  sound).  It is *diagnostic*, not pass/fail: a sound-but-loose bound is
  correct yet useless, so the report tracks the mean and worst ratio per
  scenario and ``benchmarks/bench_wcet_conformance.py`` records the
  trajectory over time (``BENCH_wcet.json``), including the tightening win
  of the refined per-core TDMA bound over the blanket ``period - 1`` charge.
* **Coverage** crosses every workload kernel with the cache-model variants
  (method-cache persistence/always-miss, conventional I-cache and unified
  data-cache baselines, stack-cache refined/naive) and the arbiter
  configurations (single core, TDMA, weighted TDMA, round-robin, priority).
  One observation per scenario is no proof — but a matrix of hundreds of
  differential checks is exactly how a soundness regression in either the
  analyzer or the simulator gets caught before users do.
* **Unbounded by design** cells (non-top cores under priority arbitration)
  are reported as such rather than skipped: the absence of a bound there is
  itself a result the paper argues for.

The matrix lives in :mod:`repro.verify.scenarios`, the execution engine in
:mod:`repro.verify.harness`.
"""

from .harness import (
    ConformanceHarness,
    ConformanceReport,
    ScenarioOutcome,
    run_conformance,
)
from .scenarios import (
    DEFAULT_ARBITERS,
    DEFAULT_RTOS_SCENARIOS,
    DEFAULT_VARIANTS,
    ArbiterConfig,
    CacheModelVariant,
    RtosScenario,
    Scenario,
    build_scenarios,
)

__all__ = [
    "ArbiterConfig",
    "CacheModelVariant",
    "ConformanceHarness",
    "ConformanceReport",
    "DEFAULT_ARBITERS",
    "DEFAULT_RTOS_SCENARIOS",
    "DEFAULT_VARIANTS",
    "RtosScenario",
    "Scenario",
    "ScenarioOutcome",
    "build_scenarios",
    "run_conformance",
]
