"""The conformance scenario matrix: kernels × cache models × arbiters.

A *scenario* is one fully specified differential experiment: a workload
kernel, a cache-model variant (which fixes both the simulated hardware
organisation and the matching static-analysis options) and an arbiter
configuration (core count, arbitration policy, TDMA slot geometry).  The
harness in :mod:`repro.verify.harness` runs the genuine simulation of every
scenario and checks the static bound against it.

The default matrix crosses every workload kernel with:

* **cache-model variants** — the method cache under the ``persistence`` and
  ``always_miss`` analyses, the conventional instruction-cache baseline, the
  unified data-cache baseline, and the stack cache under the ``naive``
  analysis (the refined analysis is the default variant);
* **arbiter configurations** — a single core, two-core TDMA, four-core
  *weighted* TDMA (slot weights 1:2:1:1), two-core round-robin and two-core
  priority arbitration (only the top-priority core has a bound).

Variants that only change the *analysis* (``always_miss``, ``naive``) share
the simulated hardware of the default variant, so the harness can reuse one
simulation for several analyses — the matrix stays cheap enough to gate CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..caches.hierarchy import HierarchyOptions
from ..cmp.system import default_tdma_schedule
from ..config import PatmosConfig
from ..errors import ConfigError
from ..memory.tdma import TdmaSchedule
from ..workloads.suite import resolve_kernels


@dataclass(frozen=True)
class CacheModelVariant:
    """One cache-model column of the matrix.

    ``hardware`` names the simulated cache organisation (variants sharing a
    name share simulations); ``wcet_overrides`` are the matching
    :class:`~repro.wcet.analyzer.WcetOptions` fields.
    """

    name: str
    hardware: str = "default"
    wcet_overrides: tuple[tuple[str, Any], ...] = ()

    def hierarchy_options(self) -> HierarchyOptions:
        """The simulator-side cache organisation of this variant."""
        if self.hardware == "default":
            return HierarchyOptions()
        if self.hardware == "icache":
            return HierarchyOptions(conventional_icache=True)
        if self.hardware == "unified":
            return HierarchyOptions(unified_data_cache=True)
        raise ConfigError(f"unknown hardware organisation {self.hardware!r}")


#: The cache-model variants of the default matrix (ISSUE: method-cache
#: modes, conventional i-cache and unified d-cache baselines, stack-cache
#: refined/naive).
DEFAULT_VARIANTS: tuple[CacheModelVariant, ...] = (
    CacheModelVariant("default"),
    CacheModelVariant("mc_always_miss",
                      wcet_overrides=(("method_cache", "always_miss"),)),
    CacheModelVariant("conventional_icache", hardware="icache",
                      wcet_overrides=(("conventional_icache", True),)),
    CacheModelVariant("unified_dcache", hardware="unified",
                      wcet_overrides=(("unified_data_cache", True),)),
    CacheModelVariant("stack_naive",
                      wcet_overrides=(("stack_cache", "naive"),)),
)


@dataclass(frozen=True)
class ArbiterConfig:
    """One arbiter column of the matrix."""

    name: str
    kind: str                       # "none" | "tdma" | "round_robin" | "priority"
    cores: int = 1
    slot_weights: tuple[int, ...] = ()
    slot_cycles: Optional[int] = None

    def schedule(self, config: PatmosConfig) -> Optional[TdmaSchedule]:
        if self.kind != "tdma":
            return None
        # Shares the system-side default-slot logic so the matrix verifies
        # exactly the schedule geometry MulticoreSystem would construct.
        return default_tdma_schedule(self.cores, config,
                                     slot_cycles=self.slot_cycles,
                                     slot_weights=self.slot_weights)


#: The arbiter configurations of the default matrix.
DEFAULT_ARBITERS: tuple[ArbiterConfig, ...] = (
    ArbiterConfig("single", kind="none", cores=1),
    ArbiterConfig("tdma2", kind="tdma", cores=2),
    ArbiterConfig("tdma4w", kind="tdma", cores=4, slot_weights=(1, 2, 1, 1)),
    ArbiterConfig("round_robin2", kind="round_robin", cores=2),
    ArbiterConfig("priority2", kind="priority", cores=2),
)


@dataclass(frozen=True)
class Scenario:
    """One cell of the conformance matrix."""

    kernel: str
    variant: CacheModelVariant
    arbiter: ArbiterConfig

    def label(self) -> str:
        return f"{self.kernel} × {self.variant.name} × {self.arbiter.name}"


@dataclass(frozen=True)
class RtosScenario:
    """One response-time soundness cell: a whole task set as the workload.

    The harness synthesizes the seeded task set, co-simulates it on the CMP
    (:class:`~repro.rtos.system.RtosSystem`) and emits one outcome per
    *task*, with the observed worst response time in the ``cycles`` slot and
    the end-to-end response-time bound in the ``wcet_cycles`` slot — the
    same ``observed <= bound`` verdict, one level up the stack.
    """

    name: str
    cores: int = 2
    tasks_per_core: int = 3
    utilisation: float = 0.4
    policy: str = "fixed_priority"
    arbiter: str = "tdma"
    priority_assignment: str = "rate_monotonic"
    seed: int = 0
    #: Task-scheduler slot width (``tdma_slot`` cells need wide slots so a
    #: whole job plus the blocking charge fits one slot); None = default.
    task_slot_cycles: Optional[int] = None

    def label(self) -> str:
        return (f"taskset[{self.name}] × {self.policy} × "
                f"{self.arbiter}{self.cores}")


#: The response-time cells of the default matrix: the fixed-priority and
#: TDMA-slot task schedulers under every arbiter, including the
#: priority-arbiter cell whose non-top cores are unbounded by design.
DEFAULT_RTOS_SCENARIOS: tuple[RtosScenario, ...] = (
    RtosScenario("fp_tdma2", cores=2, tasks_per_core=3,
                 policy="fixed_priority", arbiter="tdma"),
    RtosScenario("slot_tdma2", cores=2, tasks_per_core=2, utilisation=0.25,
                 policy="tdma_slot", arbiter="tdma", seed=1,
                 task_slot_cycles=600),
    RtosScenario("fp_rr2", cores=2, tasks_per_core=2,
                 policy="fixed_priority", arbiter="round_robin", seed=2),
    RtosScenario("fp_priority2", cores=2, tasks_per_core=2,
                 policy="fixed_priority", arbiter="priority", seed=3),
)


def build_scenarios(kernels=("all",),
                    variants: tuple[CacheModelVariant, ...] = DEFAULT_VARIANTS,
                    arbiters: tuple[ArbiterConfig, ...] = DEFAULT_ARBITERS,
                    ) -> list[Scenario]:
    """Expand the full kernel × cache-model × arbiter matrix."""
    names = resolve_kernels(kernels)
    return [Scenario(kernel=name, variant=variant, arbiter=arbiter)
            for name in names
            for variant in variants
            for arbiter in arbiters]
