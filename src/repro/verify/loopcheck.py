"""Per-loop conformance: observed iteration counts vs analysed bounds.

The kernel matrix checks end-to-end cycle bounds; this module checks the
*loop-bound facts* those bounds are built from.  For every natural loop of
every kernel the simulator's block execution counts give the observed
number of header executions; the gate requires::

    observed header executions  <=  bound * loop entries

where ``bound`` is the effective (audited) bound the WCET analysis used
and the number of loop entries is over-approximated by the execution
counts of the header's non-back-edge predecessors (a predecessor may
execute without entering, so the limit errs on the weak side — a reported
violation is therefore always a genuine unsoundness, either of an inferred
bound or of a manual annotation the audit adopted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.facts import ProgramFacts, program_facts
from ..program.program import Program


@dataclass(frozen=True)
class LoopCheck:
    """Observed-vs-bound verdict of one natural loop of one kernel."""

    kernel: str
    function: str
    header: str
    annotated: Optional[int]
    inferred: Optional[int]
    #: The bound the gate checks (the audited effective bound).
    bound: Optional[int]
    entries: int
    observed: int
    #: ``bound * entries`` — the most header executions the bound allows.
    limit: Optional[int]

    @property
    def slack(self) -> Optional[int]:
        """Unused iterations the bound allows (negative = violation)."""
        if self.limit is None:
            return None
        return self.limit - self.observed

    @property
    def ok(self) -> Optional[bool]:
        """True/False for bounded loops, None where no bound exists."""
        if self.limit is None:
            return None
        return self.observed <= self.limit

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "function": self.function,
            "header": self.header,
            "annotated": self.annotated,
            "inferred": self.inferred,
            "bound": self.bound,
            "entries": self.entries,
            "observed": self.observed,
            "limit": self.limit,
            "slack": self.slack,
            "ok": self.ok,
        }


def _group_counts(program: Program, parent: str,
                  block_counts: dict[tuple[str, str], int]) -> dict[str, int]:
    """Block counts of ``parent`` and its sub-functions, keyed by label.

    The analysis CFG merges method-cache sub-functions into their parent,
    while the simulator attributes their blocks to the sub-function name;
    labels are unique across a split group, so folding by label aligns the
    two views.
    """
    counts: dict[str, int] = {}
    for (name, label), count in block_counts.items():
        func = program.functions.get(name)
        if func is None:
            continue
        owner = func.parent if func.is_subfunction else name
        if owner == parent:
            counts[label] = counts.get(label, 0) + count
    return counts


def check_loops(kernel: str, program: Program,
                block_counts: dict[tuple[str, str], int],
                call_counts: Optional[dict[str, int]] = None,
                facts: Optional[ProgramFacts] = None) -> list[LoopCheck]:
    """Cross-check every analysed loop of ``program`` against one run."""
    facts = facts if facts is not None else program_facts(program)
    checks = []
    for name in sorted(facts.functions):
        func_facts = facts.functions[name]
        counts = _group_counts(program, name, block_counts)
        cfg = func_facts.cfg
        audits = {audit.header: audit for audit in func_facts.audits}
        for loop in cfg.natural_loops():
            back_tails = {tail for tail, _ in loop.back_edges}
            entries = sum(
                counts.get(pred, 0)
                for pred in cfg.graph.predecessors(loop.header)
                if pred not in back_tails)
            if loop.header == cfg.entry:
                # The function entry is also entered by every call (once,
                # for the program entry function).
                calls = (call_counts or {}).get(name, 0)
                entries += calls if calls else 1
            audit = audits.get(loop.header)
            bound = audit.effective if audit is not None else loop.bound
            observed = counts.get(loop.header, 0)
            checks.append(LoopCheck(
                kernel=kernel,
                function=name,
                header=loop.header,
                annotated=audit.annotated if audit is not None else loop.bound,
                inferred=audit.inferred if audit is not None else None,
                bound=bound,
                entries=entries,
                observed=observed,
                limit=None if bound is None else bound * entries,
            ))
    return checks


__all__ = ["LoopCheck", "check_loops"]
