"""Command-line front end: ``python -m repro.verify``.

Runs the WCET-vs-simulation conformance matrix and exits non-zero if any
static bound fails to cover its observed execution::

    python -m repro.verify                          # full matrix
    python -m repro.verify --kernels performance    # a suite subset
    python -m repro.verify --json report.json       # machine-readable report
    python -m repro.verify --arbiters single,tdma2  # arbiter subset
    python -m repro.verify --jobs 4                 # parallel matrix
    python -m repro.verify --faults                 # seeded fault campaign

``--kernels`` accepts kernel and suite names (``performance``, ``branchy``,
``all``); ``--variants``/``--arbiters`` filter the cache-model and arbiter
columns of the matrix by name.

``--faults`` switches to the fault-injection campaign
(:func:`repro.faults.run_fault_campaign`): every cell runs fault-free, then
under a seeded fault plan with ECC and bounded bus retries, and must stay
within its fault-aware WCET bound with outputs intact.  ``--json`` then
writes the campaign report (the CI ``BENCH_faults.json`` artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError, SweepInterrupted
from ..jobs import RunDirectory
from ..workloads.suite import resolve_kernels
from .harness import count_cells, run_conformance
from .scenarios import (DEFAULT_ARBITERS, DEFAULT_RTOS_SCENARIOS,
                        DEFAULT_VARIANTS)


def _select(available, requested: Optional[str], what: str):
    """Filter a column tuple by a comma-separated name list."""
    if requested is None:
        return available
    by_name = {item.name: item for item in available}
    selected = []
    for name in requested.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in by_name:
            raise ReproError(
                f"unknown {what} {name!r}; available: {sorted(by_name)}")
        selected.append(by_name[name])
    if not selected:
        raise ReproError(f"no {what}s selected")
    return tuple(selected)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential WCET soundness conformance harness.")
    parser.add_argument("--kernels", default="all",
                        help="comma-separated kernel or suite names "
                             "(default: all)")
    parser.add_argument("--variants", default=None,
                        help="comma-separated cache-model variant names "
                             f"(default: all of "
                             f"{[v.name for v in DEFAULT_VARIANTS]})")
    parser.add_argument("--arbiters", default=None,
                        help="comma-separated arbiter configuration names "
                             f"(default: all of "
                             f"{[a.name for a in DEFAULT_ARBITERS]})")
    parser.add_argument("--no-rtos", action="store_true",
                        help="skip the RTOS response-time soundness cells")
    parser.add_argument("--engine", default="fast",
                        choices=("reference", "fast", "jit"),
                        help="execution engine for the simulated side of "
                             "the matrix (default: fast); the report must "
                             "be identical across engines")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the matrix (default: 1); "
                             "the report is identical to a sequential run")
    parser.add_argument("--resume", default=None, metavar="RUN_ID",
                        help="resume an interrupted run from its journal; "
                             "the run id alone rebuilds the matrix "
                             "(list runs with 'python -m repro.jobs list')")
    parser.add_argument("--runs-root", default=None, metavar="DIR",
                        help="root of the durable run directories (default: "
                             "$REPRO_RUNS_DIR or ~/.cache/repro/runs)")
    parser.add_argument("--no-journal", action="store_true",
                        help="skip the durable run journal (the run "
                             "cannot be resumed)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report here")
    parser.add_argument("--table", action="store_true",
                        help="print the full per-core conformance table")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    parser.add_argument("--faults", action="store_true",
                        help="run the seeded fault-injection campaign "
                             "instead of the conformance matrix (--kernels "
                             "selects the campaign kernels)")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="N",
                        help="campaign seed (default: 0); the same seed "
                             "reproduces the same faults and outcomes")
    return parser


def _run_faults(args, kernels) -> int:
    """The ``--faults`` mode: seeded campaign, zero-violation gate."""
    from ..faults import run_fault_campaign
    from ..faults.campaign import DEFAULT_KERNELS

    # An explicit --kernels selects the campaign kernels; the default
    # ("all") means the campaign's own small, quick kernel set, not the
    # entire workload suite.
    if args.kernels.strip() == "all":
        kernels = DEFAULT_KERNELS
    report = run_fault_campaign(
        seed=args.fault_seed, kernels=kernels,
        progress=None if args.quiet else (
            lambda cell: print(f"faulting {cell}")))
    if args.table:
        print()
        print(report.table())
    print()
    print(report.summary())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Usage errors (unknown kernels/variants/arbiters) are reported cleanly
    # before the run; only this validation may catch KeyError (the error
    # resolve_kernels raises), so a genuine KeyError bug inside the harness
    # still produces a traceback instead of masquerading as a typo.
    run_dir = None
    try:
        if args.resume is not None and not args.resume.strip():
            # An empty id (e.g. a failed command substitution in CI) must
            # not silently degrade into a fresh full sweep.
            raise ReproError("--resume requires a run id")
        if args.resume:
            run_dir = RunDirectory.open(args.resume, root=args.runs_root)
            meta = run_dir.meta
            if meta.get("kind") != "verify":
                raise ReproError(
                    f"run {args.resume} is a {meta.get('kind')!r} run; "
                    f"resume it with python -m repro.{meta.get('kind')}")
            matrix = meta["matrix"]
            args.kernels = ",".join(matrix["kernels"])
            args.variants = ",".join(matrix["variants"])
            args.arbiters = ",".join(matrix["arbiters"])
            args.no_rtos = bool(matrix.get("no_rtos", False))
            args.engine = matrix.get("engine", args.engine)
        variants = _select(DEFAULT_VARIANTS, args.variants, "variant")
        arbiters = _select(DEFAULT_ARBITERS, args.arbiters, "arbiter")
        kernels = resolve_kernels(
            name.strip() for name in args.kernels.split(",") if name.strip())
        if not kernels:
            # An empty selection must never let the soundness gate pass
            # vacuously (0 scenarios checked, exit 0).
            raise ReproError("no kernels selected")
        if args.jobs < 1:
            raise ReproError("--jobs must be at least 1")
    except (ReproError, KeyError) as exc:
        # A KeyError's args[0] is the message (str() would add repr quotes).
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.faults:
        try:
            return _run_faults(args, kernels)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        rtos_scenarios = () if args.no_rtos else DEFAULT_RTOS_SCENARIOS
        cells = count_cells(kernels, variants, arbiters, rtos_scenarios)
        if args.resume:
            run_dir.mark_resumed(cells)
            if not args.quiet:
                print(f"resuming run {run_dir.run_id}")
        elif not args.no_journal:
            matrix = {"kernels": list(kernels),
                      "variants": [v.name for v in variants],
                      "arbiters": [a.name for a in arbiters],
                      "no_rtos": bool(args.no_rtos),
                      "engine": args.engine}
            run_dir = RunDirectory.create("verify", matrix, cells=cells,
                                          root=args.runs_root)
            if not args.quiet:
                print(f"run id: {run_dir.run_id} "
                      f"(resume with --resume {run_dir.run_id})")
        report = run_conformance(
            kernels=kernels, variants=variants, arbiters=arbiters,
            rtos_scenarios=rtos_scenarios,
            jobs=args.jobs, engine=args.engine,
            progress=None if args.quiet else print,
            run_dir=run_dir, resume=bool(args.resume))
    except SweepInterrupted as exc:
        print(f"\ninterrupted: {exc}", file=sys.stderr)
        if exc.resume_argv:
            print(f"resume with: python -m repro.verify {exc.resume_argv}",
                  file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if run_dir is not None:
            run_dir.close()

    if args.table:
        print()
        print(report.table())
        if report.loop_checks:
            print()
            print(report.loops_table())
    print()
    print(report.summary())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.json}")
    # Failed cells mean the matrix is incomplete: that must fail the gate
    # even with zero violations among the scenarios that did run.  An
    # unsound loop-bound fact fails it too, even when every end-to-end
    # cycle bound happens to hold.
    return 1 if (report.violations() or report.failures
                 or report.loop_violations()) else 0
