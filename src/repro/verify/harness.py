"""The differential WCET-vs-simulation conformance harness.

For every scenario of the matrix the harness runs the *genuine* execution —
the cycle-accurate fast-engine simulation on a single core, or the fully
interleaved shared-memory co-simulation for multicore arbiters — and the
static WCET analysis configured for exactly that hardware, then checks the
paper's soundness property per core::

    observed cycles  <=  wcet_cycles

Every checked core yields one :class:`ScenarioOutcome` carrying the
tightness ratio ``wcet_cycles / cycles``; a ratio below 1.0 is a soundness
violation and fails the run.  Cores without a bound (any non-top core under
priority arbitration) are recorded as *unbounded* rather than silently
skipped, so the report also documents where the paper says no bound exists.

Simulations are memoised per (kernel, hardware organisation, arbiter), so
analysis-only variants (``always_miss``, ``naive``) reuse the simulation of
the default variant and the full matrix stays CI-sized.

The matrix is embarrassingly parallel: ``run_conformance(jobs=N)`` fans the
scenario cells out over a process pool (the explore runner's worker
pattern).  Cells are shipped in groups that share a simulation key, so
per-worker harnesses keep the memoisation win, and the report is assembled
in the deterministic scenario order regardless of completion order — a
parallel run produces the same report as a sequential one (only the
measured ``elapsed_s`` differs).

A worker that *dies* (killed, OOM, segfault) does not abort the run: its
scenario group is resubmitted to a fresh pool with capped backoff, and a
group that keeps killing workers is recorded as a structured
:class:`~repro.errors.FailedCell` in the report while every other group
still completes.  Errors *raised by* a scenario (functional mismatches)
propagate exactly as in the sequential path — a broken execution must fail
the verification loudly.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cmp.system import MulticoreSystem
from ..compiler.passes import compile_and_link
from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import (FailedCell, SweepInterrupted, VerificationError,
                      WorkerCrashed)
from ..explore.tables import format_table
from ..jobs import JobCell, RetryPolicy, RunDirectory, run_jobs
from ..sim.cycle import CycleSimulator
from ..wcet.analyzer import WcetOptions, analyze_wcet
from ..workloads.suite import build_kernel
from .loopcheck import LoopCheck, check_loops
from .scenarios import (
    DEFAULT_ARBITERS,
    DEFAULT_RTOS_SCENARIOS,
    DEFAULT_VARIANTS,
    ArbiterConfig,
    CacheModelVariant,
    RtosScenario,
    Scenario,
    build_scenarios,
)


@dataclass
class ScenarioOutcome:
    """The conformance verdict of one core of one scenario."""

    kernel: str
    variant: str
    arbiter: str
    cores: int
    core_id: int
    cycles: int
    wcet_cycles: Optional[int]

    @property
    def tightness(self) -> Optional[float]:
        """Bound over observation (>= 1.0 iff the bound is sound)."""
        if self.wcet_cycles is None or self.cycles <= 0:
            return None
        return self.wcet_cycles / self.cycles

    @property
    def sound(self) -> Optional[bool]:
        """True/False for bounded cores, None where no bound exists."""
        if self.wcet_cycles is None:
            return None
        return self.wcet_cycles >= self.cycles

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "arbiter": self.arbiter,
            "cores": self.cores,
            "core": self.core_id,
            "cycles": self.cycles,
            "wcet_cycles": self.wcet_cycles,
            "tightness": (None if self.tightness is None
                          else round(self.tightness, 4)),
            "sound": self.sound,
        }


@dataclass
class ConformanceReport:
    """All outcomes of one conformance run plus aggregate statistics.

    ``failures`` lists scenario groups whose pool worker died past the
    retry budget (parallel runs only); a report with failures is incomplete
    and must not pass a verification gate even with zero violations.
    """

    outcomes: list[ScenarioOutcome] = field(default_factory=list)
    failures: list[FailedCell] = field(default_factory=list)
    #: Per-loop observed-iterations-vs-bound cross-checks (one per natural
    #: loop per kernel); a loop violation is an unsound loop-bound fact even
    #: when the end-to-end cycle bound happens to hold.
    loop_checks: list[LoopCheck] = field(default_factory=list)
    elapsed_s: float = 0.0

    def violations(self) -> list[ScenarioOutcome]:
        """Outcomes whose bound failed to cover the observation."""
        return [outcome for outcome in self.outcomes
                if outcome.sound is False]

    def loop_violations(self) -> list[LoopCheck]:
        """Loops whose observed header executions exceed their bound."""
        return [check for check in self.loop_checks if check.ok is False]

    def bounded(self) -> list[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.tightness is not None]

    def unbounded(self) -> list[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.wcet_cycles is None]

    def mean_tightness(self) -> Optional[float]:
        bounded = self.bounded()
        if not bounded:
            return None
        return sum(outcome.tightness for outcome in bounded) / len(bounded)

    def max_tightness(self) -> Optional[ScenarioOutcome]:
        bounded = self.bounded()
        if not bounded:
            return None
        return max(bounded, key=lambda outcome: outcome.tightness)

    def to_dict(self) -> dict:
        worst = self.max_tightness()
        return {
            "schema": "repro.verify/v2",
            "scenarios": [outcome.to_dict() for outcome in self.outcomes],
            "failures": [cell.to_dict() for cell in self.failures],
            "loops": [check.to_dict() for check in self.loop_checks],
            "summary": {
                "checked": len(self.outcomes),
                "bounded": len(self.bounded()),
                "unbounded": len(self.unbounded()),
                "violations": len(self.violations()),
                "failed_cells": len(self.failures),
                "loops_checked": len(self.loop_checks),
                "loop_violations": len(self.loop_violations()),
                "mean_tightness": (None if self.mean_tightness() is None
                                   else round(self.mean_tightness(), 4)),
                "max_tightness": (None if worst is None
                                  else round(worst.tightness, 4)),
                "max_tightness_scenario": (
                    None if worst is None else
                    f"{worst.kernel}/{worst.variant}/{worst.arbiter}"),
                "elapsed_s": round(self.elapsed_s, 3),
            },
        }

    def table(self) -> str:
        """Aligned per-outcome conformance table."""
        headers = ["kernel", "cache model", "arbiter", "core", "cycles",
                   "WCET", "bound/obs", "sound"]
        rows = []
        for outcome in self.outcomes:
            rows.append([
                outcome.kernel, outcome.variant, outcome.arbiter,
                outcome.core_id, outcome.cycles,
                outcome.wcet_cycles if outcome.wcet_cycles is not None
                else "-",
                f"{outcome.tightness:.2f}" if outcome.tightness is not None
                else "-",
                {True: "yes", False: "NO", None: "n/a"}[outcome.sound],
            ])
        return format_table(headers, rows)

    def loops_table(self) -> str:
        """Per-loop bound-vs-observed table with the remaining slack."""
        headers = ["kernel", "function", "loop", "annot", "infer", "bound",
                   "observed", "slack", "ok"]
        rows = []

        def fmt(value):
            return "-" if value is None else value

        for check in self.loop_checks:
            rows.append([
                check.kernel, check.function, check.header,
                fmt(check.annotated), fmt(check.inferred), fmt(check.bound),
                check.observed, fmt(check.slack),
                {True: "yes", False: "NO", None: "n/a"}[check.ok],
            ])
        return format_table(headers, rows)

    def summary(self) -> str:
        mean = self.mean_tightness()
        worst = self.max_tightness()
        lines = [
            f"{len(self.outcomes)} core-scenarios checked in "
            f"{self.elapsed_s:.2f}s: {len(self.bounded())} bounded, "
            f"{len(self.unbounded())} unbounded by design, "
            f"{len(self.violations())} soundness violations",
        ]
        if mean is not None and worst is not None:
            lines.append(
                f"tightness (bound/observed): mean {mean:.3f}, worst "
                f"{worst.tightness:.3f} "
                f"({worst.kernel}/{worst.variant}/{worst.arbiter})")
        if self.loop_checks:
            inferred = sum(1 for check in self.loop_checks
                           if check.inferred is not None)
            lines.append(
                f"loop bounds: {len(self.loop_checks)} checked "
                f"({inferred} inferred), "
                f"{len(self.loop_violations())} violations")
        for outcome in self.violations():
            lines.append(
                f"  VIOLATION {outcome.kernel}/{outcome.variant}/"
                f"{outcome.arbiter} core {outcome.core_id}: observed "
                f"{outcome.cycles} > bound {outcome.wcet_cycles}")
        for check in self.loop_violations():
            lines.append(
                f"  LOOP VIOLATION {check.kernel}/{check.function}/"
                f"{check.header}: observed {check.observed} header "
                f"executions > bound {check.bound} x {check.entries} "
                f"entries")
        if self.failures:
            lines.append(f"{len(self.failures)} scenario group(s) FAILED "
                         f"(report incomplete):")
            lines.extend(f"  {cell.summary()}" for cell in self.failures)
        return "\n".join(lines)


class ConformanceHarness:
    """Execute conformance scenarios with per-hardware simulation reuse."""

    def __init__(self, config: Optional[PatmosConfig] = None,
                 strict: bool = True, engine: str = "fast"):
        self.config = config or DEFAULT_CONFIG
        self.strict = strict
        self.engine = engine
        self._images: dict[str, object] = {}
        self._expected: dict[str, list[int]] = {}
        #: (kernel, hardware, arbiter config) -> (per-core cycles,
        #: system|None).  Keyed by the frozen ArbiterConfig value, not its
        #: display name, so two configs that happen to share a name can
        #: never reuse each other's simulation.
        self._sims: dict[tuple[str, str, ArbiterConfig],
                         tuple[list[int], Optional[MulticoreSystem]]] = {}

    # ------------------------------------------------------------------

    def _image(self, kernel: str):
        if kernel not in self._images:
            built = build_kernel(kernel)
            image, _ = compile_and_link(built.program, self.config)
            self._images[kernel] = image
            self._expected[kernel] = built.expected_output
        return self._images[kernel]

    def _simulate(self, kernel: str, variant: CacheModelVariant,
                  arbiter: ArbiterConfig
                  ) -> tuple[list[int], Optional[MulticoreSystem]]:
        """Per-core observed cycles (and the system, for multicore runs)."""
        key = (kernel, variant.hardware, arbiter)
        if key in self._sims:
            return self._sims[key]
        image = self._image(kernel)
        hierarchy = variant.hierarchy_options()
        if arbiter.cores == 1:
            result = CycleSimulator(
                image, config=self.config, strict=self.strict,
                engine=self.engine, hierarchy_options=hierarchy).run()
            self._check_output(kernel, variant, arbiter, 0, result.output)
            value = ([result.cycles], None)
        else:
            system = MulticoreSystem(
                [image] * arbiter.cores, self.config,
                arbiter=arbiter.kind,
                schedule=arbiter.schedule(self.config),
                mode="cosim", engine=self.engine,
                hierarchy_options=hierarchy)
            cmp_result = system.run(analyse=False, strict=self.strict)
            for core in cmp_result.cores:
                self._check_output(kernel, variant, arbiter, core.core_id,
                                   core.sim.output)
            value = (cmp_result.observed_by_core(), system)
        self._sims[key] = value
        return value

    def _check_output(self, kernel: str, variant: CacheModelVariant,
                      arbiter: ArbiterConfig, core_id: int,
                      observed: list[int]) -> None:
        expected = self._expected[kernel]
        if observed != expected:
            raise VerificationError(
                f"{kernel} × {variant.name} × {arbiter.name} core {core_id}: "
                f"functional mismatch — simulated output {observed[:4]} "
                f"differs from reference {expected[:4]}")

    def _wcet_options(self, variant: CacheModelVariant,
                      arbiter: ArbiterConfig, core_id: int,
                      system: Optional[MulticoreSystem]
                      ) -> Optional[WcetOptions]:
        overrides = dict(variant.wcet_overrides)
        if system is not None:
            return system.wcet_options_for_core(core_id, **overrides)
        return WcetOptions(**overrides)

    # ------------------------------------------------------------------

    def run_scenario(self, scenario: Scenario) -> list[ScenarioOutcome]:
        """Run one scenario; returns one outcome per core."""
        cycles_by_core, system = self._simulate(
            scenario.kernel, scenario.variant, scenario.arbiter)
        image = self._image(scenario.kernel)
        outcomes = []
        for core_id, cycles in enumerate(cycles_by_core):
            options = self._wcet_options(
                scenario.variant, scenario.arbiter, core_id, system)
            wcet = (None if options is None else
                    analyze_wcet(image, self.config, options=options)
                    .wcet_cycles)
            outcomes.append(ScenarioOutcome(
                kernel=scenario.kernel,
                variant=scenario.variant.name,
                arbiter=scenario.arbiter.name,
                cores=scenario.arbiter.cores,
                core_id=core_id,
                cycles=cycles,
                wcet_cycles=wcet))
        return outcomes

    def run_loop_checks(self, kernel: str) -> list[LoopCheck]:
        """Cross-check every analysed loop of ``kernel`` against one run.

        One default-hardware simulation per kernel supplies the per-block
        execution counts; the loop facts come from the same value analysis
        the WCET side used (shared via the facts cache).
        """
        image = self._image(kernel)
        result = CycleSimulator(image, config=self.config, strict=self.strict,
                                engine=self.engine).run()
        expected = self._expected[kernel]
        if result.output != expected:
            raise VerificationError(
                f"{kernel} loop check: functional mismatch — simulated "
                f"output {result.output[:4]} differs from reference "
                f"{expected[:4]}")
        return check_loops(kernel, image.program, result.block_counts,
                           result.call_counts)

    def run_rtos_scenario(self, scenario: RtosScenario
                          ) -> list[ScenarioOutcome]:
        """Run one response-time cell; returns one outcome per task.

        The ``cycles``/``wcet_cycles`` slots carry the task's observed
        worst response time and its response-time bound, so the report's
        soundness/tightness machinery applies unchanged.  Tasks without a
        bound (e.g. every task of a non-top core under priority
        arbitration, or a non-converging fixpoint) are recorded as
        unbounded rather than skipped.
        """
        import dataclasses

        from ..rtos.system import RtosSystem
        from ..rtos.task import RtosOptions, synthesize_tasksets

        tasksets = synthesize_tasksets(
            scenario.cores, scenario.tasks_per_core,
            utilisation=scenario.utilisation,
            priority_assignment=scenario.priority_assignment,
            seed=scenario.seed, config=self.config)
        options = RtosOptions.for_config(self.config)
        if scenario.task_slot_cycles is not None:
            options = dataclasses.replace(
                options, task_slot_cycles=scenario.task_slot_cycles)
        system = RtosSystem(tasksets, config=self.config,
                            arbiter=scenario.arbiter, policy=scenario.policy,
                            engine=self.engine, options=options,
                            seed=scenario.seed)
        result = system.run(strict=self.strict)
        outcomes = []
        for task in result.tasks:
            outcomes.append(ScenarioOutcome(
                kernel=f"taskset[{scenario.name}]/{task.name}",
                variant=f"rtos_{scenario.policy}",
                arbiter=f"{scenario.arbiter}{scenario.cores}",
                cores=scenario.cores,
                core_id=task.core,
                cycles=task.max_response if task.max_response is not None
                else 0,
                wcet_cycles=task.rta_bound))
        return outcomes


#: Per-worker harness of the parallel matrix (set by the pool initializer;
#: workers keep their simulation memoisation across scenario groups).
_worker_harness: Optional[ConformanceHarness] = None


def _init_worker(config_dict: Optional[dict], strict: bool,
                 engine: str = "fast") -> None:
    global _worker_harness
    config = (PatmosConfig.from_dict(config_dict)
              if config_dict is not None else None)
    _worker_harness = ConformanceHarness(config=config, strict=strict,
                                         engine=engine)


def _run_scenario_group(group: list[Scenario]
                        ) -> list[list[ScenarioOutcome]]:
    """Pool worker: run one group of scenarios sharing a simulation key."""
    return [_worker_harness.run_scenario(scenario) for scenario in group]


def _group_worker(group: list[Scenario]) -> list[list[ScenarioOutcome]]:
    """Pool entry point: one indirection through the module global.

    Workers call the *current* ``_run_scenario_group`` binding, so a forked
    child inherits any replacement installed in the parent — which is how
    the crash-containment tests plant a worker that dies mid-group.
    """
    return _run_scenario_group(group)


def _emit_progress(progress: Callable[[str], None], scenario: Scenario,
                   outcomes: list[ScenarioOutcome]) -> None:
    worst = min((outcome.tightness for outcome in outcomes
                 if outcome.tightness is not None), default=None)
    status = "ok" if not any(outcome.sound is False
                             for outcome in outcomes) else "VIOLATION"
    ratio = "-" if worst is None else f"{worst:.2f}"
    progress(f"{scenario.label():60s} min bound/obs {ratio:>6s}  {status}")


#: Resubmissions of a scenario group whose worker died before the group is
#: declared poisoned and recorded as a failed cell.
_MAX_GROUP_RETRIES = 2
#: Base (and cap) of the exponential pause between crash-recovery rounds.
_RETRY_BACKOFF_S = 0.05
_MAX_BACKOFF_S = 2.0


def _policy() -> RetryPolicy:
    """The harness retry policy (module globals read at call time, so the
    containment tests can zero the backoff)."""
    return RetryPolicy(max_attempts=1 + _MAX_GROUP_RETRIES,
                       backoff_base_s=_RETRY_BACKOFF_S,
                       backoff_cap_s=_MAX_BACKOFF_S)


def _crashed_group(group: list[Scenario], attempts: int) -> FailedCell:
    """The structured failure record of a group that kept killing workers."""
    labels = [scenario.label() for scenario in group]
    extra = f" (+{len(labels) - 1} more)" if len(labels) > 1 else ""
    exc = WorkerCrashed(
        f"worker process died {attempts} times executing scenario group "
        f"{labels[0]}{extra}", cell_key=labels[0], attempts=attempts)
    cell = FailedCell.from_exception(labels[0], labels[0], exc,
                                     attempts=attempts)
    cell.context["scenarios"] = labels
    return cell


def _group_key(kernel: str, hardware: str, arbiter: ArbiterConfig) -> str:
    """Stable journal key of one scenario group (one simulation key).

    The arbiter's display name is suffixed with a content hash of the full
    frozen config, so two configs that happen to share a name can never
    replay each other's journaled results.
    """
    digest = hashlib.sha256(repr(arbiter).encode("utf-8")).hexdigest()[:8]
    return f"group/{kernel}/{hardware}/{arbiter.name}-{digest}"


def _outcome_from_dict(record: dict) -> ScenarioOutcome:
    """Inverse of :meth:`ScenarioOutcome.to_dict` (derived fields dropped)."""
    return ScenarioOutcome(
        kernel=record["kernel"], variant=record["variant"],
        arbiter=record["arbiter"], cores=record["cores"],
        core_id=record["core"], cycles=record["cycles"],
        wcet_cycles=record["wcet_cycles"])


def _loopcheck_from_dict(record: dict) -> LoopCheck:
    """Inverse of :meth:`LoopCheck.to_dict` (derived fields dropped)."""
    return LoopCheck(
        kernel=record["kernel"], function=record["function"],
        header=record["header"], annotated=record["annotated"],
        inferred=record["inferred"], bound=record["bound"],
        entries=record["entries"], observed=record["observed"],
        limit=record["limit"])


def _interrupted(run_dir: Optional[RunDirectory]) -> SweepInterrupted:
    if run_dir is None:
        return SweepInterrupted(
            "verification interrupted; the run was not journaled "
            "(no run directory)")
    resume_argv = f"--resume {run_dir.run_id}"
    return SweepInterrupted(
        f"verification interrupted; journal flushed — resume with: "
        f"python -m repro.verify {resume_argv}",
        run_id=run_dir.run_id, resume_argv=resume_argv)


def count_cells(kernels=("all",),
                variants: tuple[CacheModelVariant, ...] = DEFAULT_VARIANTS,
                arbiters: tuple[ArbiterConfig, ...] = DEFAULT_ARBITERS,
                rtos_scenarios: tuple[RtosScenario, ...] = ()) -> int:
    """How many journal cells a conformance run of this matrix executes."""
    scenarios = build_scenarios(kernels, variants, arbiters)
    groups = {(s.kernel, s.variant.hardware, s.arbiter) for s in scenarios}
    kernels_seen = {s.kernel for s in scenarios}
    return len(groups) + len(kernels_seen) + len(rtos_scenarios)


def run_conformance(kernels=("all",),
                    variants: tuple[CacheModelVariant, ...] = DEFAULT_VARIANTS,
                    arbiters: tuple[ArbiterConfig, ...] = DEFAULT_ARBITERS,
                    rtos_scenarios: tuple[RtosScenario, ...]
                    = DEFAULT_RTOS_SCENARIOS,
                    config: Optional[PatmosConfig] = None,
                    strict: bool = True,
                    jobs: int = 1,
                    progress: Optional[Callable[[str], None]] = None,
                    engine: str = "fast",
                    run_dir: Optional[RunDirectory] = None,
                    resume: bool = False
                    ) -> ConformanceReport:
    """Run the full conformance matrix and collect the report.

    Scenario cells execute through the shared :mod:`repro.jobs` engine:
    scenarios sharing a (kernel, hardware, arbiter) simulation stay in one
    group so the per-worker memoisation is preserved, and ``jobs > 1``
    fans the groups out over a heartbeat-supervised worker pool.  The
    report content is identical to a sequential run (deterministic
    scenario order), only the progress lines arrive in completion order
    and ``elapsed_s`` reflects the parallel wall-clock.  A worker that
    *dies* does not abort the run: its group is re-leased under the
    harness retry policy and becomes a :class:`~repro.errors.FailedCell`
    once the budget is exhausted, while errors *raised by* a scenario
    (functional mismatches) always propagate.

    With a ``run_dir`` every cell transition is journaled; ``resume=True``
    replays the journal first and re-executes only cells without a
    recorded result (the resumed report is byte-identical — modulo
    ``elapsed_s`` — to an uninterrupted run).  SIGINT/SIGTERM drain
    gracefully and raise :class:`~repro.errors.SweepInterrupted` carrying
    the resume command.

    The response-time cells (``rtos_scenarios``; pass ``()`` to skip them)
    and the per-kernel loop checks run after the kernel matrix on the main
    process — there are only a handful.  ``progress`` (if given) receives
    one line per finished scenario; the report itself never raises on
    soundness violations — callers decide (the CLI and the CI gate exit
    non-zero when ``violations()`` is non-empty).
    """
    if jobs < 1:
        raise VerificationError("jobs must be >= 1")
    scenarios = build_scenarios(kernels, variants, arbiters)
    report = ConformanceReport()
    started = time.perf_counter()
    journal = run_dir.journal() if run_dir is not None else None
    replay = run_dir.replay() if (run_dir is not None and resume) else None

    groups: dict[tuple, list[int]] = {}
    for index, scenario in enumerate(scenarios):
        key = (scenario.kernel, scenario.variant.hardware, scenario.arbiter)
        groups.setdefault(key, []).append(index)
    group_indices = list(groups.values())
    payloads = [[scenarios[i] for i in indices] for indices in group_indices]
    keys = [_group_key(*group) for group in groups]
    outcome_lists: list[Optional[list[ScenarioOutcome]]] = \
        [None] * len(scenarios)

    def place(g: int, results: list[list[ScenarioOutcome]]) -> None:
        for index, outcomes in zip(group_indices[g], results):
            outcome_lists[index] = outcomes
            if progress is not None:
                _emit_progress(progress, scenarios[index], outcomes)

    g_of_key = {keys[g]: g for g in range(len(payloads))}
    to_run: list[int] = []
    for g in range(len(payloads)):
        recorded = replay.done.get(keys[g]) if replay is not None else None
        if recorded is not None:
            # Journaled groups are *replayed*, not re-executed: the payload
            # is the full per-scenario outcome list.
            place(g, [[_outcome_from_dict(record) for record in outcomes]
                      for outcomes in recorded])
        else:
            to_run.append(g)

    def group_label(g: int) -> str:
        labels = [scenario.label() for scenario in payloads[g]]
        extra = f" (+{len(labels) - 1} more)" if len(labels) > 1 else ""
        return labels[0] + extra

    # The sequential path runs every group on one in-process harness (its
    # simulation memoisation is shared with the loop/rtos cells below);
    # only ``jobs > 1`` routes groups through the pool entry point, so a
    # test that replaces ``_run_scenario_group`` only ever affects forked
    # workers, never the calling process.
    local_harness = (ConformanceHarness(config=config, strict=strict,
                                        engine=engine)
                     if jobs == 1 else None)

    def _serial_group(group: list[Scenario]) -> list[list[ScenarioOutcome]]:
        return [local_harness.run_scenario(scenario) for scenario in group]

    outcome = run_jobs(
        [JobCell(key=keys[g], label=group_label(g), payload=payloads[g])
         for g in to_run],
        _serial_group if jobs == 1 else _group_worker,
        jobs=jobs, policy=_policy(), journal=journal,
        worker_init=_init_worker if jobs > 1 else None,
        init_args=(config.to_dict() if config is not None else None,
                   strict, engine),
        crash_failure=lambda cell, attempts: _crashed_group(cell.payload,
                                                            attempts),
        encode=lambda results: [[o.to_dict() for o in outcomes]
                                for outcomes in results],
        on_result=lambda cell, results: place(g_of_key[cell.key], results))
    report.failures.extend(outcome.failures)
    if outcome.interrupted:
        raise _interrupted(run_dir)

    # The per-loop soundness gate and the response-time cells run on the
    # main process — there are only a handful, and the sequential path
    # shares its simulation memoisation with the matrix cells above.
    harness = local_harness if local_harness is not None \
        else ConformanceHarness(config=config, strict=strict, engine=engine)
    seen_kernels: list[str] = []
    for scenario in scenarios:
        if scenario.kernel not in seen_kernels:
            seen_kernels.append(scenario.kernel)

    def run_main_cell(key: str, fn, encode, decode):
        """One journaled main-process cell (loop check / rtos scenario)."""
        recorded = replay.done.get(key) if replay is not None else None
        if recorded is not None:
            return decode(recorded)
        if journal is not None:
            journal.cell(key, "running", 1)
        try:
            value = fn()
        except KeyboardInterrupt:
            if journal is not None:
                journal.commit()
            raise _interrupted(run_dir) from None
        if journal is not None:
            journal.cell(key, "done", 1, payload=encode(value))
        return value

    for kernel in seen_kernels:
        checks = run_main_cell(
            f"loops/{kernel}",
            lambda kernel=kernel: harness.run_loop_checks(kernel),
            lambda checks: [check.to_dict() for check in checks],
            lambda records: [_loopcheck_from_dict(r) for r in records])
        report.loop_checks.extend(checks)
        if progress is not None:
            bad = sum(1 for check in checks if check.ok is False)
            status = "ok" if not bad else f"{bad} VIOLATIONS"
            progress(f"{kernel + ' loop bounds':60s} "
                     f"{len(checks):3d} loops checked  {status}")
    for rtos_scenario in rtos_scenarios:
        outcomes = run_main_cell(
            f"rtos/{rtos_scenario.name}",
            lambda s=rtos_scenario: harness.run_rtos_scenario(s),
            lambda outcomes: [o.to_dict() for o in outcomes],
            lambda records: [_outcome_from_dict(r) for r in records])
        outcome_lists.append(outcomes)
        if progress is not None:
            _emit_progress(progress, rtos_scenario, outcomes)
    if journal is not None:
        journal.commit()
    for outcomes in outcome_lists:
        # ``None`` slots belong to a crash-failed group recorded above.
        if outcomes is not None:
            report.outcomes.extend(outcomes)
    report.elapsed_s = time.perf_counter() - started
    return report
