"""Append-only JSONL write-ahead journal of sweep cell state transitions.

One journal file records the life of one sweep run: a ``run`` header, then
one ``cell`` record per state transition::

    {"type": "run", "run_id": ..., "kind": ..., "cells": N, "version": 1}
    {"type": "cell", "key": K, "state": "running", "attempt": 1, "worker": 0}
    {"type": "cell", "key": K, "state": "done", "attempt": 1, "payload": {...}}
    {"type": "cell", "key": K, "state": "failed", "attempt": 2, "payload": {...}}
    {"type": "cell", "key": K, "state": "lost", "attempt": 1, "worker": 0}
    {"type": "resume", "run_id": ...}

``done`` payloads carry the cell's full result record; ``failed`` payloads a
:meth:`~repro.errors.FailedCell.to_dict`.  A ``lost`` record marks a worker
declared dead (missed heartbeats, or the process vanished) while leasing the
cell — replay treats the cell as pending again.

Durability model: every appended line is *flushed* to the OS immediately
(a SIGKILL of the writer loses nothing already appended), and the file is
*fsync'd* in batches — at most every :attr:`Journal.sync_interval_s` and
always on :meth:`Journal.commit`/:meth:`Journal.close` — so a power cut
loses at most one sync window of transitions, which replay simply re-queues.

Replay is torn-tail tolerant: a record truncated mid-byte (torn by a crash
during the final write) is dropped and its cell falls back to the previous
recorded state, i.e. it re-executes.  Undecodable *interior* lines are
skipped with a warning rather than poisoning the whole journal — losing one
transition re-runs one cell, which is always sound.
"""

from __future__ import annotations

import io
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

#: Bump when the record schema changes incompatibly.
JOURNAL_VERSION = 1

#: Terminal cell states; anything else leaves the cell pending on replay.
TERMINAL_STATES = ("done", "failed")


class Journal:
    """Append-only writer for one run's journal file."""

    def __init__(self, path, sync_interval_s: float = 0.05):
        self.path = Path(path)
        self.sync_interval_s = sync_interval_s
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[io.TextIOWrapper] = open(
            self.path, "a", encoding="utf-8")
        self._last_sync = time.monotonic()
        self._unsynced = 0

    def append(self, record: dict) -> None:
        """Append one record (flushed to the OS; fsync batched)."""
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        self._unsynced += 1
        if time.monotonic() - self._last_sync >= self.sync_interval_s:
            self.commit()

    # Convenience appenders --------------------------------------------

    def run_header(self, run_id: str, kind: str, cells: int,
                   resumed: bool = False) -> None:
        record = {"type": "resume" if resumed else "run", "run_id": run_id,
                  "kind": kind, "cells": cells, "version": JOURNAL_VERSION}
        self.append(record)
        self.commit()

    def cell(self, key: str, state: str, attempt: int,
             worker: Optional[int] = None,
             payload: Optional[Any] = None) -> None:
        record: dict = {"type": "cell", "key": key, "state": state,
                        "attempt": attempt}
        if worker is not None:
            record["worker"] = worker
        if payload is not None:
            record["payload"] = payload
        self.append(record)

    # Durability -------------------------------------------------------

    def commit(self) -> None:
        """Force the batched fsync (no-op when nothing is pending)."""
        if self._handle is None or not self._unsynced:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced = 0
        self._last_sync = time.monotonic()

    def close(self) -> None:
        if self._handle is None:
            return
        self.commit()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class Replay:
    """The recovered state of a journal: what finished, what is pending.

    ``done`` maps cell keys to their recorded result payloads (these cells
    must *not* re-execute on resume); ``failed`` holds the last structured
    failure per key (resume re-queues them with a fresh retry budget — the
    point of resuming is that the cause was fixed); ``attempts`` counts the
    executions each non-done cell already consumed, for reporting.
    """

    run_id: Optional[str] = None
    kind: Optional[str] = None
    cells: Optional[int] = None
    done: dict[str, Any] = field(default_factory=dict)
    failed: dict[str, dict] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    records: int = 0
    #: True when the final line was truncated mid-record and dropped.
    torn_tail: bool = False

    def pending(self, keys) -> list:
        """The subset of ``keys`` that must (re-)execute."""
        return [key for key in keys if key not in self.done]


def replay_journal(path) -> Replay:
    """Reconstruct the last known state of every cell from a journal file.

    The final line may be torn (truncated mid-byte by a crash); it is
    dropped and the affected cell simply stays in its previous state.
    Interior lines that fail to parse are skipped with a warning.
    """
    path = Path(path)
    replay = Replay()
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return replay
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, leaving a trailing empty
    # chunk; anything else is a torn tail candidate.
    complete, tail = lines[:-1], lines[-1]
    if tail:
        replay.torn_tail = True
    for index, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            if index == len(complete) - 1:
                replay.torn_tail = True
            else:
                warnings.warn(
                    f"journal {path}: skipping undecodable record on line "
                    f"{index + 1}; the affected cell will re-execute",
                    RuntimeWarning, stacklevel=2)
            continue
        replay.records += 1
        rtype = record.get("type")
        if rtype in ("run", "resume"):
            replay.run_id = record.get("run_id", replay.run_id)
            replay.kind = record.get("kind", replay.kind)
            replay.cells = record.get("cells", replay.cells)
        elif rtype == "cell":
            key = record.get("key")
            state = record.get("state")
            if key is None or state is None:
                continue
            attempt = int(record.get("attempt", 1))
            replay.attempts[key] = max(replay.attempts.get(key, 0), attempt)
            if state == "done":
                replay.done[key] = record.get("payload")
                replay.failed.pop(key, None)
            elif state == "failed":
                replay.failed[key] = record.get("payload") or {}
                replay.done.pop(key, None)
            # "running"/"lost" leave the cell pending.
    return replay


__all__ = ["JOURNAL_VERSION", "Journal", "Replay", "replay_journal"]
