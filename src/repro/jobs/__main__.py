"""Entry point for ``python -m repro.jobs``."""

import sys

from .cli import main

sys.exit(main())
