"""Durable, resumable sweep execution: journaled jobs with supervision.

Both sweep runners — the design-space explorer (``python -m repro.explore``)
and the conformance harness (``python -m repro.verify``) — execute their
cells through this package.  A sweep becomes a *run*: a durable directory,
an append-only journal of every cell state transition, and a supervised
worker pool that survives crashed, wedged and killed workers.  A killed
sweep resumes with ``--resume RUN_ID``, re-executing only the cells that
never finished.

Module map
----------

:mod:`repro.jobs.journal`
    The append-only JSONL write-ahead journal and its torn-tail-tolerant
    replay.  Records are ``{"type": "run"|"resume"|"cell", ...}``; cell
    records carry ``key``, ``state`` (``running`` → ``done``/``failed``,
    or ``lost`` when a worker died holding the lease), ``attempt``, and a
    full result payload on the terminal states.  Lines are flushed per
    append and fsync'd in batches, so SIGKILL loses nothing and a power
    cut loses at most one sync window (those cells simply re-run).

:mod:`repro.jobs.rundir`
    Run directories under ``$REPRO_RUNS_DIR`` (default
    ``~/.cache/repro/runs``)::

        <runs root>/<run id>/
            meta.json        # kind + sweep matrix: enough to rebuild the CLI
            journal.jsonl    # the write-ahead journal

    Run ids are content-addressed (``<kind>-<sha256(matrix)[:12]>``), so
    the same sweep always lands in the same directory and ``--resume``
    needs nothing but the id.

:mod:`repro.jobs.policy`
    The declarative :class:`~repro.jobs.policy.RetryPolicy` both runners
    share: total attempts per cell, deterministic capped exponential
    backoff, heartbeat cadence/deadline, graceful-drain grace, and the
    per-cell wall-clock timeout classes (:data:`~repro.jobs.policy.TIMEOUT_CLASSES`).

:mod:`repro.jobs.supervisor`
    :func:`~repro.jobs.supervisor.run_jobs` — the execution engine.
    Workers heartbeat; lost workers' leased cells are returned to the
    queue and work-stolen by survivors while a replacement respawns;
    cells that keep killing workers become structured
    :class:`~repro.errors.FailedCell` records once the attempt budget is
    exhausted; SIGINT/SIGTERM drain gracefully with the journal flushed.

:mod:`repro.jobs.cli`
    ``python -m repro.jobs`` — ``list``/``show``/``latest`` over the runs
    root, for finding the run id to resume.

Resume semantics
----------------

Replaying the journal partitions cells into *done* (payload recorded — the
resumed run injects the payload and never re-executes), *failed* (re-queued
with a fresh retry budget: the point of resuming is that the cause was
fixed), and *pending* (anything else, including cells lost mid-flight).  A
resumed report is byte-identical (modulo elapsed time) to one from an
uninterrupted run.
"""

from ..errors import FailedCell, JobError, SweepInterrupted
from .journal import JOURNAL_VERSION, Journal, Replay, replay_journal
from .policy import TIMEOUT_CLASSES, CellTimeout, RetryPolicy
from .rundir import (RunDirectory, default_runs_root, derive_run_id,
                     list_runs)
from .supervisor import (CellError, JobCell, JobsOutcome,
                         default_crash_failure, run_jobs)

__all__ = [
    "CellError", "CellTimeout", "FailedCell", "JOURNAL_VERSION", "JobCell",
    "JobError", "Journal", "JobsOutcome", "Replay", "RetryPolicy",
    "RunDirectory", "SweepInterrupted", "TIMEOUT_CLASSES",
    "default_crash_failure", "default_runs_root", "derive_run_id",
    "list_runs", "replay_journal", "run_jobs",
]
