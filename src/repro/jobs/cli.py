"""Command-line front end: ``python -m repro.jobs``.

Inspection of the durable runs root — the companion of the ``--resume``
flags on the sweep CLIs::

    python -m repro.jobs list              # every run, newest first
    python -m repro.jobs latest            # just the newest run id
    python -m repro.jobs latest --kind verify
    python -m repro.jobs show RUN_ID       # replayed cell states of one run
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..errors import ReproError
from .rundir import RunDirectory, default_runs_root, list_runs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs",
        description="Inspect the durable sweep runs that --resume resumes.")
    parser.add_argument("--runs-root", default=None, metavar="DIR",
                        help="runs root (default: $REPRO_RUNS_DIR or "
                             "~/.cache/repro/runs)")
    sub = parser.add_subparsers(dest="command")
    list_cmd = sub.add_parser("list", help="list runs, newest first")
    list_cmd.add_argument("--kind", default=None,
                          choices=("explore", "verify"),
                          help="only runs of this kind")
    list_cmd.add_argument("--json", action="store_true",
                          help="machine-readable output")
    latest = sub.add_parser("latest", help="print the newest run id")
    latest.add_argument("--kind", default=None,
                        choices=("explore", "verify"),
                        help="only runs of this kind")
    show = sub.add_parser("show", help="replay one run's journal")
    show.add_argument("run_id")
    show.add_argument("--json", action="store_true",
                      help="machine-readable output")
    return parser


def _cmd_list(args) -> int:
    runs = list_runs(args.runs_root)
    if args.kind:
        runs = [meta for meta in runs if meta.get("kind") == args.kind]
    if args.json:
        print(json.dumps(runs, indent=2, sort_keys=True))
        return 0
    if not runs:
        root = args.runs_root or default_runs_root()
        print(f"no runs under {root}")
        return 0
    for meta in runs:
        print(f"{meta.get('run_id', '?'):28} kind={meta.get('kind', '?'):8}"
              f" cells={meta.get('cells', '?')}")
    return 0


def _cmd_latest(args) -> int:
    runs = list_runs(args.runs_root)
    if args.kind:
        runs = [meta for meta in runs if meta.get("kind") == args.kind]
    if not runs:
        print("no runs", file=sys.stderr)
        return 1
    print(runs[0].get("run_id", ""))
    return 0


def _cmd_show(args) -> int:
    run = RunDirectory.open(args.run_id, root=args.runs_root)
    replay = run.replay()
    meta = run.meta
    total = meta.get("cells")
    pending = None
    if isinstance(total, int):
        pending = total - len(replay.done) - len(replay.failed)
    if args.json:
        print(json.dumps(
            {"run_id": run.run_id, "kind": meta.get("kind"),
             "cells": total, "done": sorted(replay.done),
             "failed": sorted(replay.failed), "pending": pending,
             "records": replay.records, "torn_tail": replay.torn_tail},
            indent=2, sort_keys=True))
        return 0
    print(f"run {run.run_id} kind={meta.get('kind')} cells={total}")
    print(f"  journal: {replay.records} records"
          + (" (torn tail dropped)" if replay.torn_tail else ""))
    print(f"  done: {len(replay.done)}  failed: {len(replay.failed)}"
          + (f"  pending: {pending}" if pending is not None else ""))
    for key, payload in sorted(replay.failed.items()):
        message = (payload or {}).get("message", "")
        print(f"    failed {key}: {message}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        args.command = "list"
        args.kind = None
        args.json = False
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "latest":
            return _cmd_latest(args)
        return _cmd_show(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
