"""Supervised execution of journaled job cells over a heartbeat worker pool.

:func:`run_jobs` is the one execution engine both sweep runners share.  It
takes a list of :class:`JobCell` (key + label + picklable payload), a
module-level worker function, and a :class:`~repro.jobs.policy.RetryPolicy`,
and returns every cell's outcome — results for completed cells, structured
:class:`~repro.errors.FailedCell` records for cells that exhausted their
crash budget or overran their timeout class.

Supervision model (``jobs > 1``):

* every worker process runs a daemon *heartbeat thread* stamping a shared
  clock slot; the supervisor declares a worker **lost** when its process
  vanishes (SIGKILL, OOM, segfault) or its heartbeat goes stale past
  ``policy.heartbeat_timeout_s`` (a SIGSTOPped or wedged worker);
* a lost worker's leased cell is returned to the pending queue (after the
  policy's deterministic capped exponential backoff) and *work-stolen* by
  whichever worker goes idle first — the supervisor also respawns a
  replacement into the vacant slot so the pool keeps its width;
* a cell that keeps killing workers past ``policy.max_attempts`` total
  executions is declared poisoned and recorded as a ``FailedCell`` instead
  of aborting the sweep;
* each worker leases at most one cell at a time, so the lease table is
  exact: a crash can only ever lose (and re-run) the cells that were
  actually in flight.

Errors a cell *raises* are deterministic and are never retried: the
``contain`` predicate decides per error whether it becomes a ``FailedCell``
(the explore runner contains library errors) or propagates and fails the
sweep loudly (the verify harness propagates everything).

SIGINT/SIGTERM trigger a **graceful drain**: dispatch stops, in-flight
cells get ``policy.drain_grace_s`` to finish (their results are journaled),
anything still running is leased back (its journal state stays ``running``,
so replay re-queues it), the journal is committed, and the outcome returns
``interrupted=True`` so callers can print the resume command.

``jobs == 1`` — or any environment that cannot start worker processes —
runs the identical cell pipeline serially in-process (no heartbeats; a
KeyboardInterrupt drains in the same journal-consistent way).
"""

from __future__ import annotations

import pickle
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import (FailedCell, JobError, ReproError, SimulationTimeout,
                      WorkerCrashed)
from .journal import Journal
from .policy import RetryPolicy

#: How long one receive poll blocks before the liveness sweep runs again.
_POLL_S = 0.05


class _PoolUnavailable(Exception):
    """Worker processes cannot be created; fall back to serial execution."""


@dataclass(frozen=True)
class JobCell:
    """One schedulable unit of a sweep: a key, a label, a payload."""

    key: str
    label: str
    payload: Any


@dataclass
class CellError:
    """Wire-format of an exception a cell raised inside a worker."""

    type_name: str
    message: str
    context: dict
    is_repro: bool
    traceback: str = ""
    #: The original exception where it survived the process boundary.
    exception: Optional[BaseException] = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "CellError":
        context = exc.context() if hasattr(exc, "context") else {}
        return cls(type_name=type(exc).__name__, message=str(exc),
                   context=dict(context), is_repro=isinstance(exc, ReproError),
                   traceback=traceback.format_exc(), exception=exc)

    def encode(self) -> dict:
        """Picklable form for the result queue (exception best-effort)."""
        try:
            pickled = pickle.dumps(self.exception)
        except Exception:
            pickled = None
        return {"type_name": self.type_name, "message": self.message,
                "context": self.context, "is_repro": self.is_repro,
                "traceback": self.traceback, "pickled": pickled}

    @classmethod
    def decode(cls, data: dict) -> "CellError":
        exception = None
        if data.get("pickled") is not None:
            try:
                exception = pickle.loads(data["pickled"])
            except Exception:
                exception = None
        return cls(type_name=data["type_name"], message=data["message"],
                   context=data["context"], is_repro=data["is_repro"],
                   traceback=data.get("traceback", ""), exception=exception)

    def raise_(self) -> None:
        """Re-raise the original exception (reconstructed when possible)."""
        if self.exception is not None:
            raise self.exception
        raise JobError(f"worker raised {self.type_name}: {self.message}\n"
                       f"{self.traceback}")

    def failed_cell(self, cell: JobCell, attempts: int = 1) -> FailedCell:
        return FailedCell(key=cell.key, label=cell.label,
                          error=self.type_name, message=self.message,
                          attempts=attempts, context=dict(self.context))


@dataclass
class JobsOutcome:
    """Everything :func:`run_jobs` produced, keyed by cell key."""

    results: dict[str, Any] = field(default_factory=dict)
    failures: list[FailedCell] = field(default_factory=list)
    #: True after a graceful SIGINT/SIGTERM drain; unfinished cells stay
    #: re-runnable from the journal.
    interrupted: bool = False
    #: Cells actually executed to completion here (done or failed).
    executed: int = 0
    #: Workers declared lost (crashes, missed heartbeats, timeouts).
    lost_workers: int = 0


def default_crash_failure(cell: JobCell, attempts: int) -> FailedCell:
    """The structured record of a cell that kept killing its workers."""
    exc = WorkerCrashed(
        f"{cell.label}: worker process died {attempts} times executing "
        f"this cell", cell_key=cell.key, attempts=attempts)
    return FailedCell.from_exception(cell.key, cell.label, exc,
                                     attempts=attempts)


def _timeout_failure(cell: JobCell, attempts: int,
                     policy: RetryPolicy) -> FailedCell:
    timeout = policy.timeout
    exc = SimulationTimeout(
        f"{cell.label}: cell exceeded its {policy.timeout_class!r} "
        f"wall-clock budget of {timeout.max_wall_s:g} s",
        kind="wall_clock", limit=timeout.max_wall_s,
        max_cycles=timeout.max_cycles, max_wall_s=timeout.max_wall_s)
    return FailedCell.from_exception(cell.key, cell.label, exc,
                                     attempts=attempts)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _worker_main(slot: int, task_queue, result_queue, heartbeats,
                 interval_s: float, worker_fn, worker_init,
                 init_args: tuple) -> None:
    """One pool worker: heartbeat thread + lease-execute-report loop."""
    # The supervisor owns shutdown: workers must survive the terminal's
    # SIGINT (sent to the whole foreground process group) so in-flight
    # cells can finish during a graceful drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeats[slot] = time.monotonic()
            stop.wait(interval_s)

    threading.Thread(target=beat, daemon=True).start()
    if worker_init is not None:
        try:
            worker_init(*init_args)
        except BaseException as exc:
            result_queue.put(("init_error", slot,
                              CellError.from_exception(exc).encode()))
            return
    while True:
        item = task_queue.get()
        if item is None:
            break
        key, payload, attempt = item
        try:
            value = worker_fn(payload)
        except Exception as exc:
            result_queue.put(("error", slot, key, attempt,
                              CellError.from_exception(exc).encode()))
        else:
            result_queue.put(("ok", slot, key, attempt, value))
    stop.set()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------

class _Slot:
    """One worker slot: process handle plus its exact lease."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.task_queue = None
        self.lease: Optional[tuple[JobCell, int]] = None  # (cell, attempt)
        self.lease_started = 0.0


class _Supervisor:
    def __init__(self, cells, worker_fn, *, jobs, policy, journal,
                 worker_init, init_args, contain, crash_failure, encode,
                 on_result):
        self.cells = list(cells)
        self.worker_fn = worker_fn
        self.jobs = jobs
        self.policy = policy
        self.journal: Optional[Journal] = journal
        self.worker_init = worker_init
        self.init_args = init_args
        self.contain = contain
        self.crash_failure = crash_failure or default_crash_failure
        self.encode = encode or (lambda value: value)
        self.on_result = on_result
        self.outcome = JobsOutcome()
        #: (cell, attempt, not_before) ready for dispatch, FIFO.
        self.pending: list[tuple[JobCell, int, float]] = [
            (cell, 1, 0.0) for cell in self.cells]
        self.terminal: set[str] = set()
        self.draining = False

    # Journal helpers --------------------------------------------------

    def _journal_cell(self, key: str, state: str, attempt: int,
                      worker: Optional[int] = None,
                      payload: Optional[Any] = None) -> None:
        if self.journal is not None:
            self.journal.cell(key, state, attempt, worker=worker,
                              payload=payload)

    def _commit(self) -> None:
        if self.journal is not None:
            self.journal.commit()

    # Terminal transitions ---------------------------------------------

    def _complete(self, cell: JobCell, attempt: int, value: Any) -> None:
        if cell.key in self.terminal:
            return  # duplicate delivery after an at-least-once re-run
        self.terminal.add(cell.key)
        self.outcome.results[cell.key] = value
        self.outcome.executed += 1
        self._journal_cell(cell.key, "done", attempt,
                           payload=self.encode(value))
        if self.on_result is not None:
            self.on_result(cell, value)

    def _fail(self, failure: FailedCell) -> None:
        if failure.key in self.terminal:
            return
        self.terminal.add(failure.key)
        self.outcome.failures.append(failure)
        self.outcome.executed += 1
        self._journal_cell(failure.key, "failed", failure.attempts,
                           payload=failure.to_dict())

    def _outstanding(self) -> int:
        return len(self.cells) - len(self.terminal)

    # Serial path ------------------------------------------------------

    def run_serial(self) -> JobsOutcome:
        previous_term = _install_sigterm_as_interrupt()
        try:
            if self.worker_init is not None:
                self.worker_init(*self.init_args)
            for cell in self.cells:
                self._journal_cell(cell.key, "running", 1)
                try:
                    value = self.worker_fn(cell.payload)
                except KeyboardInterrupt:
                    self.outcome.interrupted = True
                    break
                except Exception as exc:
                    error = CellError.from_exception(exc)
                    if self.contain is not None and self.contain(error):
                        self._fail(error.failed_cell(cell))
                        continue
                    self._commit()
                    raise
                self._complete(cell, 1, value)
        finally:
            self._commit()
            _restore_sigterm(previous_term)
        return self.outcome

    # Parallel path ----------------------------------------------------

    def run_parallel(self) -> JobsOutcome:
        # Only *pool creation* may fall back to the serial path; anything
        # the workers raise later must propagate (or be contained) exactly
        # like a serial failure.
        try:
            import multiprocessing
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - platform-dependent
                context = multiprocessing.get_context()
            width = min(self.jobs, max(len(self.cells), 1))
            self.context = context
            self.result_queue = context.Queue()
            self.heartbeats = context.Array("d", width, lock=False)
            self.slots = [_Slot(index) for index in range(width)]
            for slot in self.slots:
                self._spawn(slot)
        except (ImportError, OSError) as exc:  # pragma: no cover
            for slot in getattr(self, "slots", []):
                if slot.process is not None and slot.process.is_alive():
                    slot.process.kill()
            raise _PoolUnavailable from exc
        previous = _install_drain_handlers(self._request_drain)
        drain_deadline: Optional[float] = None
        try:
            while self._outstanding():
                now = time.monotonic()
                if self.draining:
                    if drain_deadline is None:
                        drain_deadline = now + self.policy.drain_grace_s
                    if not any(slot.lease for slot in self.slots):
                        break  # nothing in flight; pending cells lease back
                    if now >= drain_deadline:
                        break  # grace expired; in-flight cells lease back
                else:
                    self._dispatch(now)
                self._receive()
                self._check_liveness(time.monotonic())
        finally:
            self.outcome.interrupted = self.outcome.interrupted \
                or self.draining
            _restore_drain_handlers(previous)
            self._shutdown()
        return self.outcome

    def _spawn(self, slot: _Slot) -> None:
        slot.task_queue = self.context.SimpleQueue()
        self.heartbeats[slot.index] = time.monotonic()
        slot.process = self.context.Process(
            target=_worker_main,
            args=(slot.index, slot.task_queue, self.result_queue,
                  self.heartbeats, self.policy.heartbeat_interval_s,
                  self.worker_fn, self.worker_init, self.init_args),
            daemon=True)
        slot.process.start()

    def _request_drain(self, signum, frame) -> None:
        if self.draining:
            raise KeyboardInterrupt  # second signal: stop insisting
        self.draining = True

    def _dispatch(self, now: float) -> None:
        for slot in self.slots:
            if slot.lease is not None:
                continue
            ready = next((entry for entry in self.pending
                          if entry[2] <= now), None)
            if ready is None:
                return
            self.pending.remove(ready)
            cell, attempt, _ = ready
            slot.lease = (cell, attempt)
            slot.lease_started = now
            self._journal_cell(cell.key, "running", attempt,
                               worker=slot.index)
            slot.task_queue.put((cell.key, cell.payload, attempt))

    def _receive(self) -> None:
        import queue as queue_module
        block = True
        while True:
            try:
                message = self.result_queue.get(
                    timeout=_POLL_S if block else 0)
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - torn queue
                return
            block = False
            self._handle(message)

    def _slot_for(self, index: int) -> _Slot:
        return self.slots[index]

    def _handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "init_error":
            _, _, encoded = message
            self._commit()
            CellError.decode(encoded).raise_()
        _, slot_index, key, attempt, data = message
        slot = self._slot_for(slot_index)
        cell = None
        if slot.lease is not None and slot.lease[0].key == key:
            cell = slot.lease[0]
            slot.lease = None
        else:
            # A stale delivery from a worker we already declared lost; the
            # cell may have been re-leased elsewhere, so find it by key.
            cell = next((c for c in self.cells if c.key == key), None)
            if cell is None:  # pragma: no cover - defensive
                return
        if kind == "ok":
            self._complete(cell, attempt, data)
        elif kind == "error":
            error = CellError.decode(data)
            if self.contain is not None and self.contain(error):
                self._fail(error.failed_cell(cell, attempts=attempt))
            else:
                self._commit()
                error.raise_()

    def _check_liveness(self, now: float) -> None:
        timeout = self.policy.timeout.max_wall_s
        for slot in self.slots:
            if slot.lease is None:
                continue
            alive = slot.process is not None and slot.process.is_alive()
            stale = (now - self.heartbeats[slot.index]
                     > self.policy.heartbeat_timeout_s)
            overrun = (timeout is not None
                       and now - slot.lease_started > timeout)
            if alive and not stale and not overrun:
                continue
            cell, attempt = slot.lease
            slot.lease = None
            self.outcome.lost_workers += 1
            self._journal_cell(cell.key, "lost", attempt, worker=slot.index)
            self._kill(slot)
            if overrun:
                self._fail(_timeout_failure(cell, attempt, self.policy))
            elif attempt >= self.policy.max_attempts:
                self._fail(self.crash_failure(cell, attempt))
            else:
                # Lease the cell back: the next idle worker steals it after
                # the deterministic backoff.
                self.pending.append(
                    (cell, attempt + 1,
                     now + self.policy.backoff_s(attempt + 1)))
            if not self.draining and self._outstanding():
                self._spawn(slot)

    def _kill(self, slot: _Slot) -> None:
        process = slot.process
        slot.process = None
        if process is None:
            return
        if process.is_alive():
            process.kill()
        process.join(timeout=2.0)

    def _shutdown(self) -> None:
        for slot in self.slots:
            if slot.process is not None and slot.process.is_alive():
                if self.draining or slot.lease is not None:
                    # Drain/abort: in-flight work is leased back, not waited.
                    self._kill(slot)
                    continue
                try:
                    slot.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for slot in self.slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=1.0)
        self.result_queue.close()
        self._commit()


# Signal plumbing ------------------------------------------------------

def _install_drain_handlers(handler) -> Optional[dict]:
    if threading.current_thread() is not threading.main_thread():
        return None
    try:
        previous = {signal.SIGINT: signal.signal(signal.SIGINT, handler),
                    signal.SIGTERM: signal.signal(signal.SIGTERM, handler)}
    except ValueError:  # pragma: no cover - embedded interpreter
        return None
    return previous


def _restore_drain_handlers(previous: Optional[dict]) -> None:
    if previous is None:
        return
    for signum, old in previous.items():
        signal.signal(signum, old)


def _install_sigterm_as_interrupt():
    """Serial mode: let SIGTERM drain exactly like Ctrl-C."""
    if threading.current_thread() is not threading.main_thread():
        return None

    def raise_interrupt(signum, frame):
        raise KeyboardInterrupt

    try:
        return signal.signal(signal.SIGTERM, raise_interrupt)
    except ValueError:  # pragma: no cover - embedded interpreter
        return None


def _restore_sigterm(previous) -> None:
    if previous is not None:
        signal.signal(signal.SIGTERM, previous)


def run_jobs(cells, worker_fn, *, jobs: int = 1,
             policy: Optional[RetryPolicy] = None,
             journal: Optional[Journal] = None,
             worker_init: Optional[Callable] = None,
             init_args: tuple = (),
             contain: Optional[Callable[[CellError], bool]] = None,
             crash_failure: Optional[Callable[[JobCell, int], FailedCell]]
             = None,
             encode: Optional[Callable[[Any], Any]] = None,
             on_result: Optional[Callable[[JobCell, Any], None]] = None
             ) -> JobsOutcome:
    """Execute every cell under the policy; see the module docstring.

    ``worker_fn`` must be a module-level callable of one payload (workers
    resolve the *current* binding under fork, which is how the containment
    tests plant crashing workers).  ``contain`` decides which raised errors
    become :class:`FailedCell` records (``None`` propagates everything);
    ``encode`` maps a result value to its JSON journal payload;
    ``on_result`` observes completions in completion order.
    """
    if jobs < 1:
        raise JobError("jobs must be >= 1")
    supervisor = _Supervisor(
        cells, worker_fn, jobs=jobs, policy=policy or RetryPolicy(),
        journal=journal, worker_init=worker_init, init_args=init_args,
        contain=contain, crash_failure=crash_failure, encode=encode,
        on_result=on_result)
    if jobs > 1 and len(supervisor.cells) > 0:
        try:
            return supervisor.run_parallel()
        except _PoolUnavailable:  # pragma: no cover - restricted env
            pass  # fall through to the identical serial pipeline
    return supervisor.run_serial()


__all__ = ["CellError", "JobCell", "JobsOutcome", "default_crash_failure",
           "run_jobs"]
