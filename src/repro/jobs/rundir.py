"""Durable run directories: one per sweep, addressed by a deterministic id.

A run directory holds everything needed to resume a killed sweep::

    <runs root>/<run id>/
        meta.json        # kind + the sweep-defining matrix (rebuilds the CLI)
        journal.jsonl    # append-only WAL of cell state transitions

The run id is content-addressed: ``<kind>-<sha256(matrix)[:12]>`` where
``matrix`` is the JSON-canonicalised description of the sweep (kernels,
axes, variants, engine, ...).  Re-running the same sweep therefore lands in
the same directory — and ``--resume RUN_ID`` can find it by id alone.

The runs root resolves, in order: an explicit ``root`` argument, the
``REPRO_RUNS_DIR`` environment variable, then ``~/.cache/repro/runs``
(the same user-cache convention as the generated-code engine's disk cache).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional

from ..errors import JobError
from .journal import Journal, Replay, replay_journal

META_NAME = "meta.json"
JOURNAL_NAME = "journal.jsonl"


def default_runs_root() -> Path:
    env = os.environ.get("REPRO_RUNS_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "runs"


def derive_run_id(kind: str, matrix: dict) -> str:
    """Deterministic run id from the sweep-defining matrix description."""
    blob = json.dumps(matrix, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return f"{kind}-{digest[:12]}"


class RunDirectory:
    """One sweep's durable on-disk state (meta + journal)."""

    def __init__(self, run_id: str, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_runs_root()
        self.run_id = run_id
        self.path = self.root / run_id
        self._journal: Optional[Journal] = None

    # Construction -----------------------------------------------------

    @classmethod
    def create(cls, kind: str, matrix: dict, cells: int,
               root: Optional[Path] = None) -> "RunDirectory":
        """Start a *fresh* run: (re)write meta and truncate the journal.

        The id is deterministic, so re-launching the same sweep reuses the
        directory; a fresh start deliberately discards the previous
        journal — resuming instead of restarting is what ``--resume`` is
        for, and the exit message of an interrupted run says so.
        """
        run = cls(derive_run_id(kind, matrix), root=root)
        run.path.mkdir(parents=True, exist_ok=True)
        meta = {"run_id": run.run_id, "kind": kind, "matrix": matrix,
                "cells": cells, "created": time.time(),
                "pid": os.getpid()}
        (run.path / META_NAME).write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        journal_path = run.path / JOURNAL_NAME
        if journal_path.exists():
            journal_path.unlink()
        run.journal().run_header(run.run_id, kind, cells)
        return run

    @classmethod
    def open(cls, run_id: str, root: Optional[Path] = None
             ) -> "RunDirectory":
        """Open an existing run for resumption; raises on unknown ids."""
        run = cls(run_id, root=root)
        if not run.path.is_dir() or not (run.path / META_NAME).exists():
            raise JobError(
                f"unknown run id {run_id!r} under {run.root} "
                f"(set REPRO_RUNS_DIR or --runs-root to the root the "
                f"original sweep used)", run_id=run_id)
        return run

    # Access -----------------------------------------------------------

    @property
    def meta(self) -> dict:
        try:
            return json.loads((self.path / META_NAME).read_text(
                encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise JobError(f"run {self.run_id}: unreadable {META_NAME}: "
                           f"{exc}", run_id=self.run_id) from exc

    @property
    def journal_path(self) -> Path:
        return self.path / JOURNAL_NAME

    def journal(self) -> Journal:
        """The (lazily opened, append-mode) journal of this run."""
        if self._journal is None:
            self._journal = Journal(self.journal_path)
        return self._journal

    def replay(self) -> Replay:
        """Recover the cell states of this run from its journal."""
        return replay_journal(self.journal_path)

    def mark_resumed(self, cells: int) -> None:
        """Append a resume marker so the journal documents the new epoch."""
        self.journal().run_header(self.run_id, str(self.meta.get("kind")),
                                  cells, resumed=True)

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None


def list_runs(root: Optional[Path] = None) -> list[dict]:
    """Every run directory under ``root``, newest first."""
    base = Path(root) if root is not None else default_runs_root()
    if not base.is_dir():
        return []
    runs = []
    for entry in base.iterdir():
        meta_path = entry / META_NAME
        if not meta_path.is_file():
            continue
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        meta["mtime"] = max(meta_path.stat().st_mtime,
                            (entry / JOURNAL_NAME).stat().st_mtime
                            if (entry / JOURNAL_NAME).exists() else 0.0)
        runs.append(meta)
    runs.sort(key=lambda meta: meta["mtime"], reverse=True)
    return runs


__all__ = ["JOURNAL_NAME", "META_NAME", "RunDirectory", "default_runs_root",
           "derive_run_id", "list_runs"]
