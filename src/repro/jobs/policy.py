"""The declarative retry/timeout policy shared by every sweep runner.

One :class:`RetryPolicy` replaces the two divergent crash-containment
implementations the explore and verify runners used to carry: how many
executions a cell may consume before it is declared poisoned, the
deterministic capped exponential backoff between crash-recovery attempts,
how stale a worker's heartbeat may grow before the supervisor declares it
lost, and which per-cell wall-clock timeout class applies.

Retries apply to *crashes* (a worker killed, OOMed or segfaulted, a missed
heartbeat deadline, a cell past its timeout class) — never to errors a cell
*raises*, which are deterministic and would fail identically on every
attempt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import JobError


@dataclass(frozen=True)
class CellTimeout:
    """One timeout class: the wall-clock budget of a single cell execution.

    ``max_wall_s`` is enforced by the supervisor (the worker is killed and
    the cell charged one attempt); ``max_cycles`` is advisory — runners that
    thread it into :meth:`MulticoreSystem.run` get the structured
    in-simulation watchdog as well.
    """

    name: str
    max_wall_s: Optional[float] = None
    max_cycles: Optional[int] = None


#: The built-in timeout classes.  ``unbounded`` (the default) preserves the
#: historical behaviour of both runners; the bounded classes give CI sweeps
#: a structured failure instead of a hung job.
TIMEOUT_CLASSES: dict[str, CellTimeout] = {
    "unbounded": CellTimeout("unbounded"),
    "smoke": CellTimeout("smoke", max_wall_s=60.0, max_cycles=20_000_000),
    "standard": CellTimeout("standard", max_wall_s=600.0,
                            max_cycles=200_000_000),
    "soak": CellTimeout("soak", max_wall_s=3600.0),
}


@dataclass(frozen=True)
class RetryPolicy:
    """How a sweep reacts to crashed, lost and overrunning workers."""

    #: Total executions a cell may consume (initial run + crash retries).
    max_attempts: int = 3
    #: Base of the exponential pause before a crash-recovery attempt.
    backoff_base_s: float = 0.05
    #: Longest pause between crash-recovery attempts.
    backoff_cap_s: float = 2.0
    #: How often workers refresh their heartbeat.
    heartbeat_interval_s: float = 0.2
    #: A leased worker whose heartbeat is older than this is declared lost.
    heartbeat_timeout_s: float = 10.0
    #: How long a graceful drain waits for in-flight cells before leasing
    #: them back to the journal.
    drain_grace_s: float = 10.0
    #: Name of the per-cell wall-clock budget (see :data:`TIMEOUT_CLASSES`).
    timeout_class: str = "unbounded"

    def __post_init__(self):
        if self.max_attempts < 1:
            raise JobError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise JobError("backoff must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise JobError("heartbeat_interval_s must be > 0")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise JobError("heartbeat_timeout_s must exceed the interval")
        if self.timeout_class not in TIMEOUT_CLASSES:
            raise JobError(
                f"unknown timeout class {self.timeout_class!r}; choose "
                f"from {sorted(TIMEOUT_CLASSES)}")

    @property
    def timeout(self) -> CellTimeout:
        return TIMEOUT_CLASSES[self.timeout_class]

    def backoff_s(self, attempt: int) -> float:
        """Deterministic capped exponential pause before attempt ``attempt``.

        ``attempt`` is 1-based; the first *retry* is attempt 2 and waits the
        base, each further retry doubles it up to the cap.  No jitter: a
        deterministic schedule keeps crash-containment runs reproducible.
        """
        if attempt <= 1 or self.backoff_base_s == 0:
            return 0.0
        return min(self.backoff_base_s * (2 ** (attempt - 2)),
                   self.backoff_cap_s)


__all__ = ["CellTimeout", "RetryPolicy", "TIMEOUT_CLASSES"]
