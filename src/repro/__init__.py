"""repro — a reproduction of the Patmos time-predictable dual-issue processor.

The package provides, in Python:

* the Patmos instruction set (:mod:`repro.isa`), an assembler
  (:mod:`repro.asm`) and a program builder (:mod:`repro.program`);
* the time-predictable memory hierarchy — method cache, stack cache, split
  data caches, scratchpad, burst memory controller and TDMA arbitration
  (:mod:`repro.caches`, :mod:`repro.memory`);
* functional and cycle-accurate simulators (:mod:`repro.sim`);
* WCET-aware compilation passes — VLIW scheduling, if-conversion, single-path
  transformation, function splitting and stack-cache allocation
  (:mod:`repro.compiler`);
* static WCET analysis built on IPET (:mod:`repro.wcet`) and a differential
  WCET-vs-simulation soundness conformance harness (:mod:`repro.verify`,
  ``python -m repro.verify``);
* a chip-multiprocessor model: true shared-memory multicore co-simulation
  with pluggable arbitration (TDMA, round-robin, priority) plus the
  decoupled analytic TDMA view (:mod:`repro.cmp`);
* an FPGA timing/resource model reproducing the register-file evaluation of
  the paper (:mod:`repro.hw`);
* the kernel workloads used by the benchmarks (:mod:`repro.workloads`).

Quickstart
----------

>>> from repro import ProgramBuilder, compile_and_link, CycleSimulator
>>> b = ProgramBuilder("hello")
>>> f = b.function("main")
>>> f.li("r1", 21)
>>> f.emit("add", "r2", "r1", "r1")
>>> f.out("r2")
>>> f.halt()
>>> image, _ = compile_and_link(b.build())
>>> CycleSimulator(image).run().output
[42]
"""

from .asm import assemble, disassemble_image, disassemble_program
from .config import (
    DEFAULT_CONFIG,
    MemoryConfig,
    MethodCacheConfig,
    PatmosConfig,
    PipelineConfig,
    ScratchpadConfig,
    SetAssocCacheConfig,
    StackCacheConfig,
)
from .cmp import CmpSystem, MulticoreSystem, default_tdma_schedule
from .compiler import CompileOptions, CompileResult, compile_and_link, compile_program
from .errors import (
    AssemblerError,
    CacheError,
    CompilerError,
    ConfigError,
    EncodingError,
    ExplorationError,
    IsaError,
    LinkError,
    MemoryAccessError,
    ReproError,
    RtosError,
    ScheduleViolation,
    SimulationError,
    StackCacheError,
    VerificationError,
    WcetError,
)
from .explore import (
    ExperimentSpec,
    ExplorationResult,
    ExplorationRunner,
    ParameterSpace,
    ResultCache,
    pareto_frontier,
)
from .isa import Bundle, Guard, Instruction, Opcode
from .program import (
    BasicBlock,
    CallGraph,
    ControlFlowGraph,
    DataSpace,
    Function,
    Image,
    Program,
    ProgramBuilder,
    link,
)
from .sim import CycleSimulator, FunctionalSimulator, SimResult
from .wcet import WcetAnalyzer, WcetOptions, WcetResult, analyze_wcet

__version__ = "0.1.0"

__all__ = [
    "AssemblerError",
    "BasicBlock",
    "Bundle",
    "CacheError",
    "CallGraph",
    "CompileOptions",
    "CompileResult",
    "CompilerError",
    "ConfigError",
    "ControlFlowGraph",
    "CycleSimulator",
    "DEFAULT_CONFIG",
    "DataSpace",
    "EncodingError",
    "ExperimentSpec",
    "ExplorationError",
    "ExplorationResult",
    "ExplorationRunner",
    "Function",
    "FunctionalSimulator",
    "Guard",
    "Image",
    "Instruction",
    "IsaError",
    "LinkError",
    "MemoryAccessError",
    "MemoryConfig",
    "MethodCacheConfig",
    "Opcode",
    "ParameterSpace",
    "PatmosConfig",
    "PipelineConfig",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "RtosError",
    "ResultCache",
    "ScheduleViolation",
    "ScratchpadConfig",
    "SetAssocCacheConfig",
    "SimResult",
    "SimulationError",
    "StackCacheConfig",
    "StackCacheError",
    "VerificationError",
    "CmpSystem",
    "MulticoreSystem",
    "WcetAnalyzer",
    "WcetError",
    "WcetOptions",
    "WcetResult",
    "analyze_wcet",
    "assemble",
    "compile_and_link",
    "compile_program",
    "default_tdma_schedule",
    "disassemble_image",
    "disassemble_program",
    "link",
    "pareto_frontier",
    "__version__",
]
