"""Two-pass textual assembler for Patmos programs.

The accepted syntax matches the rendering produced by
:func:`repro.isa.instruction.render_instruction` and the disassembler, so
programs round-trip between text and the in-memory representation:

.. code-block:: text

    ; sum of an array
    .data values const 1 2 3 4
    .entry main

    .func main
        lil r2 = 4
        lil r3 = 0
        addl r1 = r0, values
    loop:
        lwc r4 = [r1 + 0]
        add r3 = r3, r4
        addi r1 = r1, 4
        subi r2 = r2, 1
        cmpineq p1 = r2, 0
        (p1) br loop
        .loopbound loop 4
        out r3
        halt

Directives: ``.func name``, ``.entry name``, ``.frame words``,
``.loopbound label bound``, ``.data name space value...`` (space is one of
``const``, ``data``, ``heap``, ``local``).  Comments start with ``;``, ``#``
or ``//``.  Guards are written as a ``(pN)`` / ``(!pN)`` prefix.
"""

from __future__ import annotations

import re

from ..errors import AssemblerError
from ..isa.opcodes import MNEMONIC_TABLE
from ..program.builder import FunctionBuilder, ProgramBuilder, _make_instruction, parse_guard
from ..program.program import DataSpace, Program

_COMMENT_RE = re.compile(r"(;|#|//).*$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_GUARD_RE = re.compile(r"^\(\s*(!?\s*p\d+)\s*\)")
_INT_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")


def _strip_comment(line: str) -> str:
    return _COMMENT_RE.sub("", line).strip()


def _parse_operand(token: str):
    """Convert a numeric token to int, leave registers/symbols as strings."""
    if _INT_RE.match(token):
        return int(token, 0)
    return token


def _split_operands(text: str) -> list:
    """Split an operand string into tokens, discarding assembly punctuation."""
    cleaned = text.replace("=", " ").replace("[", " ").replace("]", " ")
    cleaned = cleaned.replace("+", " ").replace(",", " ")
    return [_parse_operand(token) for token in cleaned.split()]


class Assembler:
    """Parses assembly text into an (unscheduled) :class:`Program`."""

    def __init__(self, name: str = "assembled"):
        self.name = name

    def assemble(self, text: str) -> Program:
        """Assemble a complete program from source text."""
        builder = ProgramBuilder(self.name)
        current: FunctionBuilder | None = None
        entry: str | None = None

        for number, raw_line in enumerate(text.splitlines(), start=1):
            line = _strip_comment(raw_line)
            if not line:
                continue
            try:
                current, entry = self._process_line(line, builder, current, entry)
            except AssemblerError as exc:
                if exc.line is None:
                    raise AssemblerError(str(exc), line=number) from exc
                raise
            except Exception as exc:  # noqa: BLE001 - rewrap with line context
                raise AssemblerError(str(exc), line=number) from exc

        if entry is not None:
            builder.entry = entry
        program = builder.build()
        return program

    # ------------------------------------------------------------------

    def _process_line(self, line: str, builder: ProgramBuilder,
                      current: FunctionBuilder | None,
                      entry: str | None):
        # Labels may start with '.' (compiler-generated block labels), so
        # check for a label before treating the line as a directive.
        label_match = _LABEL_RE.match(line)
        if label_match is None and line.startswith("."):
            return self._process_directive(line, builder, current, entry)

        if label_match:
            if current is None:
                raise AssemblerError(
                    f"label {label_match.group(1)!r} outside of a function")
            current.label(label_match.group(1))
            return current, entry

        if current is None:
            raise AssemblerError(f"instruction outside of a function: {line!r}")
        current.add_instruction(self._parse_instruction(line))
        return current, entry

    def _process_directive(self, line: str, builder: ProgramBuilder,
                           current: FunctionBuilder | None,
                           entry: str | None):
        parts = line.split()
        directive = parts[0].lower()
        if directive == ".func":
            if len(parts) != 2:
                raise AssemblerError(".func expects exactly one name")
            current = builder.function(parts[1])
            return current, entry
        if directive == ".entry":
            if len(parts) != 2:
                raise AssemblerError(".entry expects exactly one name")
            return current, parts[1]
        if directive == ".frame":
            if current is None:
                raise AssemblerError(".frame outside of a function")
            if len(parts) != 2:
                raise AssemblerError(".frame expects the frame size in words")
            current.frame(int(parts[1], 0))
            return current, entry
        if directive == ".loopbound":
            if current is None:
                raise AssemblerError(".loopbound outside of a function")
            if len(parts) != 3:
                raise AssemblerError(".loopbound expects a label and a bound")
            current.loop_bound(parts[1], int(parts[2], 0))
            return current, entry
        if directive == ".data":
            if len(parts) < 3:
                raise AssemblerError(
                    ".data expects a name, a space and the initial words")
            name, space = parts[1], parts[2].lower()
            try:
                data_space = DataSpace(space)
            except ValueError as exc:
                raise AssemblerError(
                    f"unknown data space {space!r} (use const/data/heap/local)"
                ) from exc
            words = [int(token, 0) for token in parts[3:]]
            builder.data(name, words, space=data_space)
            return current, entry
        if directive == ".zeros":
            if len(parts) != 4:
                raise AssemblerError(".zeros expects a name, a space and a count")
            builder.zeros(parts[1], int(parts[3], 0),
                          space=DataSpace(parts[2].lower()))
            return current, entry
        raise AssemblerError(f"unknown directive {parts[0]!r}")

    def _parse_instruction(self, line: str):
        guard = None
        guard_match = _GUARD_RE.match(line)
        if guard_match:
            guard = guard_match.group(1).replace(" ", "")
            line = line[guard_match.end():].strip()
        if not line:
            raise AssemblerError("empty instruction after guard")
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in MNEMONIC_TABLE:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        opcode = MNEMONIC_TABLE[mnemonic]
        return _make_instruction(opcode, tuple(operands), parse_guard(guard))


def assemble(text: str, name: str = "assembled") -> Program:
    """Assemble ``text`` into an unscheduled program."""
    return Assembler(name).assemble(text)
