"""Textual assembler and disassembler for Patmos."""

from .disassembler import disassemble_image, disassemble_program
from .parser import Assembler, assemble

__all__ = [
    "Assembler",
    "assemble",
    "disassemble_image",
    "disassemble_program",
]
