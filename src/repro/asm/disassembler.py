"""Disassembler: programs and linked images back to assembly text.

Unscheduled programs are printed in the assembler's input syntax (so that
``assemble(disassemble(p))`` round-trips); linked images are printed with
addresses and bundle markers for inspection and debugging.
"""

from __future__ import annotations

from ..program.linker import Image
from ..program.program import Program


def disassemble_program(program: Program) -> str:
    """Render an (unscheduled) program in assembler syntax."""
    lines: list[str] = []
    for item in program.data_in_order():
        words = " ".join(str(word) for word in item.words)
        lines.append(f".data {item.name} {item.space.value} {words}")
    if program.data:
        lines.append("")
    lines.append(f".entry {program.entry}")
    lines.append("")
    for function in program.functions_in_order():
        lines.append(f".func {function.name}")
        if function.frame_words:
            lines.append(f"    .frame {function.frame_words}")
        for label, bound in function.loop_bounds().items():
            lines.append(f"    .loopbound {label} {bound}")
        for block in function.blocks:
            lines.append(f"{block.label}:")
            for instr in block.instrs:
                lines.append(f"    {instr}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def disassemble_image(image: Image) -> str:
    """Render a linked image with addresses and issue bundles."""
    lines: list[str] = []
    for record in image.functions:
        lines.append(f"{record.entry_addr:#010x} <{record.name}>  "
                     f"({record.size_bytes} bytes)")
        addr = record.entry_addr
        end = record.entry_addr + record.size_bytes
        while addr < end:
            block = image.block_at(addr)
            if block is not None:
                lines.append(f"{block.label}:")
            bundle = image.bundle_at(addr)
            lines.append(f"  {addr:#010x}  {bundle}")
            addr += bundle.size_bytes
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
