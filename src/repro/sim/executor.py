"""Pure evaluation of ALU, compare and predicate operations.

These helpers implement the arithmetic semantics shared by the functional and
cycle-accurate simulators.  All values are 32-bit unsigned register contents;
signed interpretations are applied where the operation requires them.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..isa.opcodes import Opcode
from .state import to_signed, to_unsigned


def alu_op(opcode: Opcode, a: int, b: int) -> int:
    """Evaluate a (register or immediate) ALU operation on 32-bit values."""
    a = to_unsigned(a)
    b = to_unsigned(b)
    if opcode in (Opcode.ADD, Opcode.ADDI, Opcode.ADDL):
        return to_unsigned(a + b)
    if opcode in (Opcode.SUB, Opcode.SUBI, Opcode.SUBL):
        return to_unsigned(a - b)
    if opcode in (Opcode.AND, Opcode.ANDI, Opcode.ANDL):
        return a & b
    if opcode in (Opcode.OR, Opcode.ORI, Opcode.ORL):
        return a | b
    if opcode in (Opcode.XOR, Opcode.XORI, Opcode.XORL):
        return a ^ b
    if opcode is Opcode.NOR:
        return to_unsigned(~(a | b))
    if opcode in (Opcode.SHL, Opcode.SHLI):
        return to_unsigned(a << (b & 31))
    if opcode in (Opcode.SHR, Opcode.SHRI):
        return a >> (b & 31)
    if opcode in (Opcode.SRA, Opcode.SRAI):
        return to_unsigned(to_signed(a) >> (b & 31))
    if opcode is Opcode.SHADD:
        return to_unsigned((a << 1) + b)
    if opcode is Opcode.SHADD2:
        return to_unsigned((a << 2) + b)
    raise SimulationError(f"not an ALU opcode: {opcode}")


def compare_op(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a compare operation, returning the predicate value."""
    ua, ub = to_unsigned(a), to_unsigned(b)
    sa, sb = to_signed(a), to_signed(b)
    if opcode in (Opcode.CMPEQ, Opcode.CMPIEQ):
        return ua == ub
    if opcode in (Opcode.CMPNEQ, Opcode.CMPINEQ):
        return ua != ub
    if opcode in (Opcode.CMPLT, Opcode.CMPILT):
        return sa < sb
    if opcode in (Opcode.CMPLE, Opcode.CMPILE):
        return sa <= sb
    if opcode in (Opcode.CMPULT, Opcode.CMPIULT):
        return ua < ub
    if opcode in (Opcode.CMPULE, Opcode.CMPIULE):
        return ua <= ub
    if opcode is Opcode.BTEST:
        return bool((ua >> (ub & 31)) & 1)
    raise SimulationError(f"not a compare opcode: {opcode}")


def predicate_op(opcode: Opcode, a: bool, b: bool) -> bool:
    """Evaluate a predicate-combine operation."""
    if opcode is Opcode.PAND:
        return a and b
    if opcode is Opcode.POR:
        return a or b
    if opcode is Opcode.PXOR:
        return a != b
    if opcode is Opcode.PNOT:
        return not a
    raise SimulationError(f"not a predicate opcode: {opcode}")


def multiply(opcode: Opcode, a: int, b: int) -> tuple[int, int]:
    """Evaluate a multiplication, returning ``(low word, high word)``."""
    if opcode is Opcode.MUL:
        product = to_signed(a) * to_signed(b)
    elif opcode is Opcode.MULU:
        product = to_unsigned(a) * to_unsigned(b)
    else:
        raise SimulationError(f"not a multiply opcode: {opcode}")
    product &= 0xFFFF_FFFF_FFFF_FFFF
    return product & 0xFFFF_FFFF, product >> 32
