"""Pre-decoded execution engine for the Patmos simulators.

The reference interpreter in :mod:`repro.sim.base` re-decodes every bundle on
every step: it probes ``image.bundle_at``/``image.block_at`` dictionaries,
walks a :class:`~repro.isa.opcodes.Format` if-chain per instruction and scans
a linear ``_pending_writes`` list per bundle.  This module removes all of that
from the hot loop with a classic pre-decoding pass (threaded-code
interpretation à la the interpreter literature cited in PAPERS.md):

* :func:`decode_image` runs **once per image** and compiles every bundle into
  a dense, PC-indexed table of micro-op records.  Operand indices, pre-bound
  ALU/compare/predicate evaluation functions, pre-resolved
  :class:`~repro.isa.opcodes.OpInfo` attributes (width, signedness, memory
  type), delay-slot counts, resolved control-flow targets (including the
  :class:`~repro.program.linker.FunctionRecord` of call/brcf targets), basic
  block keys and call-count keys are all resolved at decode time.
* :class:`EngineContext` executes the table with a flat dispatch loop: no
  ``Format`` if-chain, no per-step dict probes, and the linear
  ``_pending_writes`` scan is replaced by a small ring of write slots indexed
  by due-issue, so committing exposed-delay results is O(writes due now).
  The context is *persistent*: in-flight state stays inside it between
  :meth:`~EngineContext.advance` calls, so a multicore scheduler re-enters
  the hot loop at method-call cost (:func:`run_predecoded` wraps a
  throw-away context for the single-shot case).  With
  :meth:`~EngineContext.enable_sync` the context additionally pauses before
  any bundle that may register a shared-bus transfer — the next-event
  lookahead protocol of the event-driven co-simulation.
* ``strict`` and ``trace`` handling are hoisted out of the hot loop into
  *decode-time variants*: strict staleness checks become dedicated check
  micro-ops that exist only in the strict decode of the program, and the
  rendered trace text is pre-computed (and only present) in the trace decode,
  so the common path pays nothing for either feature.

The engine drives an ordinary :class:`~repro.sim.base.BaseSimulator` (or
:class:`~repro.sim.cycle.CycleSimulator`) instance: it imports the
simulator's architectural state on entry, mutates the *same* state objects
(register file, memories, caches, statistics) through the timing hooks, and
exports the in-flight state (pending writes/control/load) back to the
simulator's reference-format attributes on exit — even on exceptions — so
results, strict violations and post-run inspection are indistinguishable from
the reference interpreter for every run that completes a bundle.  (The one
known post-mortem difference: after an exception *inside* a bundle, the
aggregate ``instructions``/``nops`` counters exclude that partial bundle
entirely, whereas the reference counts its already-executed slots — the
engine counts instructions per bundle, not per slot.)

Register indices are validated once at decode time; the hot loop then indexes
``ArchState.regs``/``preds`` through the unchecked paths (see
:class:`~repro.sim.state.ArchState`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..config import NUM_GPRS, NUM_PREDS
from ..errors import (
    LinkError,
    ScheduleViolation,
    SimulationError,
    StackCacheError,
)
from ..isa.instruction import Instruction
from ..isa.opcodes import ControlKind, Format, MemType, Opcode, OpInfo, \
    control_delay_slots, result_delay_slots
from ..isa.registers import SpecialReg
from ..program.linker import Image
from .results import TraceEntry

_M = 0xFFFF_FFFF
_M64 = 0xFFFF_FFFF_FFFF_FFFF


def _s32(value: int) -> int:
    """Signed view of a 32-bit register value (inlined ``to_signed``)."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


# ---------------------------------------------------------------------------
# Pre-bound operation evaluation (decode-time resolved, no opcode dispatch)
# ---------------------------------------------------------------------------

def _sra(a: int, b: int) -> int:
    return (_s32(a) >> (b & 31)) & _M


def _mul_signed(a: int, b: int) -> tuple[int, int]:
    product = (_s32(a) * _s32(b)) & _M64
    return product & _M, product >> 32


def _mul_unsigned(a: int, b: int) -> tuple[int, int]:
    product = (a * b) & _M64
    return product & _M, product >> 32


_ADD = lambda a, b: (a + b) & _M          # noqa: E731
_SUB = lambda a, b: (a - b) & _M          # noqa: E731
_AND = lambda a, b: a & b                 # noqa: E731
_OR = lambda a, b: a | b                  # noqa: E731
_XOR = lambda a, b: a ^ b                 # noqa: E731
_NOR = lambda a, b: ~(a | b) & _M         # noqa: E731
_SHL = lambda a, b: (a << (b & 31)) & _M  # noqa: E731
_SHR = lambda a, b: a >> (b & 31)         # noqa: E731

#: ALU evaluation functions, resolved once at decode time.
_ALU_FN: dict[Opcode, object] = {
    Opcode.ADD: _ADD, Opcode.ADDI: _ADD, Opcode.ADDL: _ADD,
    Opcode.SUB: _SUB, Opcode.SUBI: _SUB, Opcode.SUBL: _SUB,
    Opcode.AND: _AND, Opcode.ANDI: _AND, Opcode.ANDL: _AND,
    Opcode.OR: _OR, Opcode.ORI: _OR, Opcode.ORL: _OR,
    Opcode.XOR: _XOR, Opcode.XORI: _XOR, Opcode.XORL: _XOR,
    Opcode.NOR: _NOR,
    Opcode.SHL: _SHL, Opcode.SHLI: _SHL,
    Opcode.SHR: _SHR, Opcode.SHRI: _SHR,
    Opcode.SRA: _sra, Opcode.SRAI: _sra,
    Opcode.SHADD: lambda a, b: ((a << 1) + b) & _M,
    Opcode.SHADD2: lambda a, b: ((a << 2) + b) & _M,
}

_CMP_EQ = lambda a, b: a == b                  # noqa: E731
_CMP_NEQ = lambda a, b: a != b                 # noqa: E731
_CMP_LT = lambda a, b: _s32(a) < _s32(b)       # noqa: E731
_CMP_LE = lambda a, b: _s32(a) <= _s32(b)      # noqa: E731
_CMP_ULT = lambda a, b: a < b                  # noqa: E731
_CMP_ULE = lambda a, b: a <= b                 # noqa: E731

#: Compare evaluation functions (operands are masked register values).
_CMP_FN: dict[Opcode, object] = {
    Opcode.CMPEQ: _CMP_EQ, Opcode.CMPIEQ: _CMP_EQ,
    Opcode.CMPNEQ: _CMP_NEQ, Opcode.CMPINEQ: _CMP_NEQ,
    Opcode.CMPLT: _CMP_LT, Opcode.CMPILT: _CMP_LT,
    Opcode.CMPLE: _CMP_LE, Opcode.CMPILE: _CMP_LE,
    Opcode.CMPULT: _CMP_ULT, Opcode.CMPIULT: _CMP_ULT,
    Opcode.CMPULE: _CMP_ULE, Opcode.CMPIULE: _CMP_ULE,
    Opcode.BTEST: lambda a, b: bool((a >> (b & 31)) & 1),
}

#: Predicate-combine evaluation functions (operands/results are bools).
_PRED_FN: dict[Opcode, object] = {
    Opcode.PAND: lambda a, b: a and b,
    Opcode.POR: lambda a, b: a or b,
    Opcode.PXOR: lambda a, b: a != b,
    Opcode.PNOT: lambda a, b: not a,
}

#: Multiplication evaluation functions returning ``(low, high)``.
_MUL_FN: dict[Opcode, object] = {
    Opcode.MUL: _mul_signed,
    Opcode.MULU: _mul_unsigned,
}


# ---------------------------------------------------------------------------
# Micro-op kinds (first element of every micro-op tuple)
# ---------------------------------------------------------------------------

K_CHECK = 0        # (k, -1, _, guard, gneg, gprs, preds, specials) strict only
K_ALU_RR = 1       # (k, g, neg, fn, rs1, rs2, rd)
K_ALU_RI = 2       # (k, g, neg, fn, rs1, immu, rd)
K_LI = 3           # (k, g, neg, value, rd)
K_LIH = 4          # (k, g, neg, hi16, rd)
K_CMP_RR = 5       # (k, g, neg, fn, rs1, rs2, pd)
K_CMP_RI = 6       # (k, g, neg, fn, rs1, immu, pd)
K_PRED = 7         # (k, g, neg, fn, ps1, ps2|-1, pd)
K_MUL = 8          # (k, g, neg, fn, rs1, rs2, delay)
K_LOAD_W = 9       # (k, g, neg, rs1, imm, rd, delay, mem_type, schk, srel)
K_LOAD = 10        # (k, ... as K_LOAD_W ..., width, signed)
K_LOAD_LW = 11     # (k, g, neg, rs1, imm, rd, delay, mem_type)
K_LOAD_L = 12      # (k, ... as K_LOAD_LW ..., width, signed)
K_LOAD_M = 13      # (k, g, neg, rs1, imm, rd, width, signed)
K_STORE_W = 14     # (k, g, neg, rs1, imm, rs2, mem_type, schk, srel)
K_STORE = 15       # (k, ... as K_STORE_W ..., width)
K_STORE_LW = 16    # (k, g, neg, rs1, imm, rs2, mem_type)
K_STORE_L = 17     # (k, ... as K_STORE_LW ..., width)
K_STORE_M = 18     # (k, g, neg, rs1, imm, rs2, width)
K_WMEM = 19        # (k, g, neg)
K_STACK = 20       # (k, g, neg, opcode, op_id, words)
K_BRANCH = 21      # (k, g, neg, t_idx, t_addr, delay)
K_BRCF = 22        # (k, g, neg, t_idx, t_addr, delay, record|None)
K_CALL = 23        # (k, g, neg, t_idx, t_addr, delay, record|None)
K_CALLR = 24       # (k, g, neg, rs1, delay)
K_RET = 25         # (k, g, neg, delay)
K_MTS = 26         # (k, g, neg, special, rs1)
K_MFS = 27         # (k, g, neg, special, rd)
K_HALT = 28        # (k, g, neg)
K_OUT = 29         # (k, g, neg, rs1)
K_UNRESOLVED = 30  # (k, g, neg, target) — raises like the reference
K_CHECK1 = 31      # (k, -1, _, guard, gneg, gpr) strict, single-GPR read
K_CHECK2 = 32      # (k, -1, _, guard, gneg, gpr, gpr) strict, two-GPR read


# Record tuple layout of one decoded bundle.
R_UOPS, R_BLOCK, R_ADDR, R_FALL_ADDR, R_FALL_IDX, R_BUNDLE, R_FUNC, \
    R_TRACE, R_NINSTR, R_NNOPS = range(10)


@dataclass
class DecodedProgram:
    """A dense, PC-indexed micro-op table for one image/pipeline variant."""

    table: list
    base: int
    ring_size: int
    strict: bool
    trace: bool
    #: Stable content hash of this decode: image content, pipeline
    #: configuration and the strict/trace variant.  Two decodes with equal
    #: keys produce identical tables, so the key addresses the on-disk
    #: generated-code cache of :mod:`repro.sim.codegen`.
    codegen_key: str = ""
    #: Memoised per-bundle may-arbitrate flags, keyed by the cache/store
    #: organisation signature (see :meth:`EngineContext.enable_sync`).
    sync_flags_cache: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Summary of the decode for cache diagnostics (JSON-safe)."""
        return {
            "base": self.base,
            "length": len(self.table),
            "bundles": sum(1 for rec in self.table if rec is not None),
            "ring_size": self.ring_size,
            "strict": self.strict,
            "trace": self.trace,
            "codegen_key": self.codegen_key,
        }


def decode_image(image: Image, pipeline, strict: bool,
                 trace: bool) -> DecodedProgram:
    """Return the (cached) pre-decoded program for an image.

    The cache lives on the image and is keyed by the (hashable) pipeline
    configuration plus the ``strict``/``trace`` decode variant, so repeated
    simulations of the same image — sweeps, CMP cores, golden comparisons —
    decode once.
    """
    cache = image.__dict__.setdefault("_predecoded", {})
    key = (pipeline, strict, trace)
    program = cache.get(key)
    if program is None:
        program = _decode(image, pipeline, strict, trace)
        cache[key] = program
    return program


def _validate_index(value, limit: int, what: str) -> int:
    """Decode-time register-index validation backing the unchecked hot path."""
    if not isinstance(value, int) or not 0 <= value < limit:
        raise SimulationError(f"{what} index out of range at decode: {value!r}")
    return value


def _codegen_key(image: Image, pipeline, strict: bool, trace: bool) -> str:
    """Content hash of one decode variant (see ``DecodedProgram.codegen_key``).

    ``pipeline`` is a frozen dataclass whose ``repr`` spells out every field,
    so the digest changes whenever issue width or any delay-slot count does.
    """
    payload = (f"{image.content_hash()}|{pipeline!r}|"
               f"strict={strict}|trace={trace}")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _ring_size(pipeline) -> int:
    needed = max(pipeline.load_delay_slots, pipeline.mul_delay_slots) + 2
    size = 2
    while size < needed:
        size *= 2
    return size


def _decode(image: Image, pipeline, strict: bool,
            trace: bool) -> DecodedProgram:
    bundles = image.bundles
    if not bundles:
        return DecodedProgram(table=[], base=image.entry_addr,
                              ring_size=_ring_size(pipeline), strict=strict,
                              trace=trace,
                              codegen_key=_codegen_key(image, pipeline,
                                                       strict, trace))
    base = min(bundles)
    length = ((max(bundles) - base) >> 2) + 1
    table: list = [None] * length

    for addr, bundle in bundles.items():
        uops: list[tuple] = []
        n_nops = 0
        for instr in bundle.instructions():
            if instr.is_nop:
                n_nops += 1
                continue
            uops.extend(_decode_instruction(instr, image, base, length,
                                            pipeline, strict))
        block = image.block_at(addr)
        block_key = (block.function, block.label) if block is not None else None
        try:
            func = image.function_containing(addr)
        except LinkError:  # pragma: no cover - images place code in functions
            func = None
        fall_addr = addr + bundle.size_bytes
        table[(addr - base) >> 2] = (
            tuple(uops),
            block_key,
            addr,
            fall_addr,
            (fall_addr - base) >> 2,
            bundle,
            func,
            str(bundle) if trace else None,
            len(bundle.instructions()),
            n_nops,
        )
    return DecodedProgram(table=table, base=base,
                          ring_size=_ring_size(pipeline), strict=strict,
                          trace=trace,
                          codegen_key=_codegen_key(image, pipeline, strict,
                                                   trace))


def _read_sets(instr: Instruction, info: OpInfo
               ) -> tuple[tuple, tuple, tuple]:
    """Registers the reference interpreter reads through checked accessors."""
    fmt = info.fmt
    gprs: list[int] = []
    preds: list[int] = []
    specials: list[SpecialReg] = []
    if fmt in (Format.ALU_R, Format.ALU_I, Format.ALU_L, Format.MUL,
               Format.CMP_R, Format.CMP_I):
        gprs.append(instr.rs1)
        if fmt in (Format.ALU_R, Format.MUL, Format.CMP_R):
            gprs.append(instr.rs2)
    elif fmt is Format.LI:
        if instr.opcode is Opcode.LIH:
            gprs.append(instr.rd)
    elif fmt is Format.PRED:
        preds.append(instr.ps1)
        if instr.ps2 is not None:
            preds.append(instr.ps2)
    elif fmt in (Format.LOAD, Format.STORE):
        gprs.append(instr.rs1)
        if info.mem_type is MemType.STACK:
            specials.append(SpecialReg.ST)
        if fmt is Format.STORE:
            gprs.append(instr.rs2)
    elif fmt in (Format.CALLR, Format.MTS, Format.OUT):
        gprs.append(instr.rs1)
    elif fmt is Format.MFS:
        specials.append(instr.special)
    elif fmt is Format.RET:
        specials.extend((SpecialReg.SRB, SpecialReg.SRO))
    return tuple(gprs), tuple(preds), tuple(specials)


def _decode_instruction(instr: Instruction, image: Image, base: int,
                        length: int, pipeline, strict: bool) -> list[tuple]:
    info = instr.info
    fmt = info.fmt
    guard = instr.guard
    g = -1 if guard.is_always else _validate_index(guard.pred, NUM_PREDS,
                                                   "guard predicate")
    neg = guard.negate

    uops: list[tuple] = []
    if strict:
        gprs, preds, specials = _read_sets(instr, info)
        if not preds and not specials and len(gprs) == 1:
            uops.append((K_CHECK1, -1, False, g, neg, gprs[0]))
        elif not preds and not specials and len(gprs) == 2:
            uops.append((K_CHECK2, -1, False, g, neg, gprs[0], gprs[1]))
        elif g >= 0 or gprs or preds or specials:
            uops.append((K_CHECK, -1, False, g, neg, gprs, preds, specials))

    def gpr(value, what="register"):
        return _validate_index(value, NUM_GPRS, what)

    def pred(value, what="predicate"):
        return _validate_index(value, NUM_PREDS, what)

    if fmt in (Format.ALU_R, Format.ALU_I, Format.ALU_L):
        if instr.rd == 0:
            return uops  # write to hard-wired r0: architecturally dead
        fn = _ALU_FN[instr.opcode]
        if fmt is Format.ALU_R:
            uops.append((K_ALU_RR, g, neg, fn, gpr(instr.rs1), gpr(instr.rs2),
                         gpr(instr.rd)))
        else:
            uops.append((K_ALU_RI, g, neg, fn, gpr(instr.rs1),
                         instr.imm & _M, gpr(instr.rd)))
    elif fmt is Format.LI:
        if instr.rd == 0:
            return uops
        if instr.opcode is Opcode.LIL:
            uops.append((K_LI, g, neg, instr.imm & _M, gpr(instr.rd)))
        else:
            uops.append((K_LIH, g, neg, (instr.imm & 0xFFFF) << 16,
                         gpr(instr.rd)))
    elif fmt is Format.MUL:
        uops.append((K_MUL, g, neg, _MUL_FN[instr.opcode], gpr(instr.rs1),
                     gpr(instr.rs2), result_delay_slots(info, pipeline)))
    elif fmt in (Format.CMP_R, Format.CMP_I):
        if instr.pd == 0:
            return uops  # write to hard-wired p0: architecturally dead
        fn = _CMP_FN[instr.opcode]
        if fmt is Format.CMP_R:
            uops.append((K_CMP_RR, g, neg, fn, gpr(instr.rs1), gpr(instr.rs2),
                         pred(instr.pd)))
        else:
            uops.append((K_CMP_RI, g, neg, fn, gpr(instr.rs1), instr.imm & _M,
                         pred(instr.pd)))
    elif fmt is Format.PRED:
        if instr.pd == 0:
            return uops
        ps2 = -1 if instr.ps2 is None else pred(instr.ps2)
        uops.append((K_PRED, g, neg, _PRED_FN[instr.opcode], pred(instr.ps1),
                     ps2, pred(instr.pd)))
    elif fmt is Format.LOAD:
        mem_type = info.mem_type
        rs1 = gpr(instr.rs1)
        rd = gpr(instr.rd)
        delay = result_delay_slots(info, pipeline)
        if mem_type is MemType.MAIN:
            uops.append((K_LOAD_M, g, neg, rs1, instr.imm, rd, info.width,
                         info.signed))
        elif mem_type is MemType.LOCAL:
            if info.width == 4:
                uops.append((K_LOAD_LW, g, neg, rs1, instr.imm, rd, delay,
                             mem_type))
            else:
                uops.append((K_LOAD_L, g, neg, rs1, instr.imm, rd, delay,
                             mem_type, info.width, info.signed))
        else:
            schk = strict and mem_type is MemType.STACK
            srel = mem_type is MemType.STACK
            if info.width == 4:
                uops.append((K_LOAD_W, g, neg, rs1, instr.imm, rd, delay,
                             mem_type, schk, srel))
            else:
                uops.append((K_LOAD, g, neg, rs1, instr.imm, rd, delay,
                             mem_type, schk, srel, info.width, info.signed))
    elif fmt is Format.STORE:
        mem_type = info.mem_type
        rs1 = gpr(instr.rs1)
        rs2 = gpr(instr.rs2)
        if mem_type is MemType.MAIN:
            uops.append((K_STORE_M, g, neg, rs1, instr.imm, rs2, info.width))
        elif mem_type is MemType.LOCAL:
            if info.width == 4:
                uops.append((K_STORE_LW, g, neg, rs1, instr.imm, rs2,
                             mem_type))
            else:
                uops.append((K_STORE_L, g, neg, rs1, instr.imm, rs2, mem_type,
                             info.width))
        else:
            schk = strict and mem_type is MemType.STACK
            srel = mem_type is MemType.STACK
            if info.width == 4:
                uops.append((K_STORE_W, g, neg, rs1, instr.imm, rs2, mem_type,
                             schk, srel))
            else:
                uops.append((K_STORE, g, neg, rs1, instr.imm, rs2, mem_type,
                             schk, srel, info.width))
    elif fmt is Format.WAIT:
        uops.append((K_WMEM, g, neg))
    elif fmt is Format.STACK:
        op_id = {Opcode.SRES: 0, Opcode.SENS: 1, Opcode.SFREE: 2}[instr.opcode]
        uops.append((K_STACK, g, neg, instr.opcode, op_id, instr.imm))
    elif fmt in (Format.BRANCH, Format.CALL):
        delay = control_delay_slots(info, pipeline)
        target = instr.target
        if not isinstance(target, int):
            uops.append((K_UNRESOLVED, g, neg, target))
        else:
            t_idx = (target - base) >> 2 if target >= base else -1
            if info.control is ControlKind.CALL:
                try:
                    record = image.function_at(target)
                except LinkError:
                    record = None  # resolved (and raised) at execution time
                uops.append((K_CALL, g, neg, t_idx, target, delay, record))
            elif instr.opcode is Opcode.BRCF:
                try:
                    record = image.function_containing(target)
                except LinkError:
                    record = None
                uops.append((K_BRCF, g, neg, t_idx, target, delay, record))
            else:
                uops.append((K_BRANCH, g, neg, t_idx, target, delay))
    elif fmt is Format.CALLR:
        uops.append((K_CALLR, g, neg, gpr(instr.rs1),
                     control_delay_slots(info, pipeline)))
    elif fmt is Format.RET:
        uops.append((K_RET, g, neg, control_delay_slots(info, pipeline)))
    elif fmt is Format.MTS:
        uops.append((K_MTS, g, neg, instr.special, gpr(instr.rs1)))
    elif fmt is Format.MFS:
        if instr.rd == 0:
            return uops
        uops.append((K_MFS, g, neg, instr.special, gpr(instr.rd)))
    elif fmt is Format.HALT:
        uops.append((K_HALT, g, neg))
    elif fmt is Format.OUT:
        uops.append((K_OUT, g, neg, gpr(instr.rs1)))
    else:  # pragma: no cover - every format is handled above
        raise SimulationError(f"cannot pre-decode {instr}")
    return uops


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

_KIND_NAMES = ("gpr", "pred", "special")


def _raise_stale(kind_id: int, index, issued: int, ring: list,
                 ring_mask: int) -> None:
    """Cold path of the strict check micro-op: find the due and raise.

    When several writes to the same register are pending, the message cites
    the earliest due one (the reference interpreter cites the first in
    scheduling order); only the message may differ, never the exception type.
    """
    due = None
    for offset in range(1, ring_mask + 2):
        for write in ring[(issued + offset) & ring_mask]:
            if write[0] == kind_id and write[1] == index:
                due = issued + offset
                break
        if due is not None:
            break
    raise ScheduleViolation(
        f"read of {_KIND_NAMES[kind_id]} {index} at bundle {issued} before "
        f"the result of a previous instruction is available "
        f"(due at bundle {due})")


def _hook(sim, base_cls, name):
    """A timing hook bound method, or ``None`` if the subclass keeps the
    zero-stall default of :class:`BaseSimulator` (skip the call entirely)."""
    if getattr(type(sim), name) is getattr(base_cls, name):
        return None
    return getattr(sim, name)


def _uop_may_arbitrate(u: tuple, uses_method_cache: bool, unified: bool,
                       ideal: bool, store_arbitrates: bool) -> bool:
    """Can executing this micro-op ever register a shared-bus transfer?

    The classification mirrors the timing hooks of
    :class:`~repro.sim.cycle.CycleSimulator` exactly: typed cached accesses
    arbitrate only on a miss path that exists for their cache organisation,
    split main-memory loads always arbitrate, stores only reach the arbiter
    when the store buffer has zero entries (background drains are not
    modelled on the bus), stack control arbitrates on spill/fill traffic and
    call/return/brcf on method-cache fills.  Being conservative here is
    always sound — a pause before a bundle that then hits in its cache costs
    a scheduling round trip, never correctness.
    """
    k = u[0]
    if k == K_LOAD_W or k == K_LOAD:
        mem_type = u[7]
        return not ideal and (mem_type is MemType.STATIC
                              or mem_type is MemType.OBJECT
                              or (mem_type is MemType.STACK and unified))
    if k == K_LOAD_M:
        return True
    if k == K_STORE_W or k == K_STORE:
        mem_type = u[6]
        return store_arbitrates and (mem_type is MemType.STATIC
                                     or mem_type is MemType.OBJECT
                                     or (mem_type is MemType.STACK
                                         and unified))
    if k == K_STORE_M:
        return store_arbitrates
    if k == K_STACK:
        return u[4] != 2  # sres/sens may spill/fill; sfree never transfers
    if k in (K_BRCF, K_CALL, K_CALLR, K_RET):
        return uses_method_cache
    return False


class EngineContext:
    """Persistent, resumable execution context of one pre-decoded simulator.

    The fast engine's per-call prologue — decoding-cache lookup, some forty
    local aliases, materialising the due-issue ring and pending-write
    counters, resolving the timing hooks — is cheap once per *run* but
    dominates wall-clock when a multicore scheduler re-enters the engine
    every few bundles.  An ``EngineContext`` hoists all of that into one
    object created once per core per co-simulation: :meth:`advance` re-binds
    locals from the context and continues exactly where the previous call
    stopped, so a slice re-entry costs a method call instead of a full
    import/export of the in-flight state.

    The context also implements the *next-event lookahead* protocol of the
    event-driven co-simulation scheduler: :meth:`enable_sync` classifies
    every decoded bundle by whether it can register a transfer with the
    shared memory arbiter (see :func:`_uop_may_arbitrate`), and
    :meth:`advance` then pauses *before* executing such a bundle, reporting
    ``"sync"`` with the core's clock — which is the exact global cycle its
    next arbitration request would be stamped with.  The scheduler releases
    paused cores in global time order (``release=True`` executes the pending
    bundle), so requests reach the shared arbiter exactly as the quantum
    scheduler's interleaving would deliver them, while the core runs
    completely undisturbed between its own memory events.

    In-flight state lives in the context between calls; :meth:`export`
    writes it back to the simulator's reference-format attributes
    (``_pending_writes`` and friends) so results, resumption by the
    interpreter and post-mortem inspection are indistinguishable from the
    reference engine.  ``export`` is idempotent and must be called after the
    final :meth:`advance` (also on exceptions — :func:`run_predecoded` and
    the co-sim scheduler both guarantee this with ``finally``).
    """

    def __init__(self, sim):
        from .base import BaseSimulator

        self.sim = sim
        program = decode_image(sim.image, sim.config.pipeline, sim.strict,
                               sim.trace_enabled)
        self.program = program
        self.table = program.table
        self.tlen = len(program.table)
        self.base = program.base
        nring = program.ring_size
        self.ring_mask = nring - 1

        # -- architectural state aliases (mutated in place) --------------------
        state = sim.state
        self.state = state
        self.regs = state.regs
        self.preds = state.preds
        self.specials = state.specials
        self.output = state.output
        self.block_counts = sim.block_counts
        self.call_counts = sim.call_counts
        self.stack_cache = sim.stack_cache
        self.memory = sim.memory
        self.scratchpad = sim.scratchpad
        self.func_at = sim.image.function_at
        self.func_containing = sim.image.function_containing
        self.trace_append = sim.trace.append

        # -- timing hooks (None = the subclass charges no stalls there) --------
        self.fetch_hook = sim._engine_fetch_hook()
        self.mc_hook = _hook(sim, BaseSimulator, "_method_cache_stall")
        self.read_hook = _hook(sim, BaseSimulator, "_cached_read_stall")
        self.write_hook = _hook(sim, BaseSimulator, "_cached_write_stall")
        self.stack_hook = _hook(sim, BaseSimulator, "_stack_control_stall")
        self.store_hook = _hook(sim, BaseSimulator, "_main_store_stall")
        self.split_hook = _hook(sim, BaseSimulator, "_split_load_latency")

        # -- dynamic state import ----------------------------------------------
        issued = sim.issued
        self.issued = issued
        self.cycles = sim.cycles
        self.instructions = sim.instructions
        self.nops = sim.nops
        self.halted = state.halted
        self.cur_func = sim._current_func
        self.idx = (sim._pc - self.base) >> 2

        ring: list[list] = [[] for _ in range(nring)]
        pg = [0] * NUM_GPRS
        pp = [0] * NUM_PREDS
        ps: dict = {}
        regs = self.regs
        preds = self.preds
        specials = self.specials
        for write in sim._pending_writes:
            kind_id = (0 if write.kind == "gpr"
                       else 1 if write.kind == "pred" else 2)
            if write.due_issue <= issued:
                # Would commit at the next reference step start: apply now.
                if kind_id == 0:
                    regs[write.index] = write.value & _M
                elif kind_id == 1:
                    preds[write.index] = bool(write.value)
                else:
                    specials[write.index] = write.value & _M
                continue
            ring[write.due_issue & self.ring_mask].append(
                (kind_id, write.index, write.value))
            if kind_id == 0:
                pg[write.index] += 1
            elif kind_id == 1:
                pp[write.index] += 1
            else:
                ps[write.index] = ps.get(write.index, 0) + 1
        self.ring = ring
        self.pg = pg
        self.pp = pp
        self.ps = ps

        self.ctrl_cd = 0
        self.ctrl_tidx = -1
        self.ctrl_target = 0
        self.ctrl_is_call = False
        self.ctrl_name = None
        if sim._pending_control is not None:
            pending = sim._pending_control
            self.ctrl_cd = pending.countdown
            self.ctrl_target = pending.target
            self.ctrl_tidx = (pending.target - self.base) >> 2
            self.ctrl_is_call = pending.is_call
            self.ctrl_name = pending.call_target_name

        self.has_pml = sim._pending_main_load is not None
        self.pml_rd = self.pml_val = self.pml_ready = 0
        if self.has_pml:
            pml = sim._pending_main_load
            self.pml_rd, self.pml_val, self.pml_ready = \
                pml.rd, pml.value, pml.ready_cycle

        #: Stall cycles accumulated since the last :meth:`export`.
        self.s_icache = self.s_data = self.s_method = 0
        self.s_stack = self.s_split = self.s_store = 0

        #: Per-bundle "may register an arbitrated transfer" flags
        #: (:meth:`enable_sync`); ``None`` disables the pause protocol.
        self.sync_flags = None

    def _sync_key(self):
        """The cache/store organisation signature of this core (or ``None``).

        ``None`` means no shared arbiter is attached, so no bundle can ever
        register a transfer; otherwise the tuple captures exactly the
        configuration bits :func:`_uop_may_arbitrate` classifies against.
        """
        sim = self.sim
        hierarchy = getattr(sim, "hierarchy", None)
        controller = getattr(sim, "controller", None)
        if controller is None or controller.arbiter is None:
            return None  # no arbiter: no bundle can ever request
        uses_mc = hierarchy is not None and hierarchy.uses_method_cache
        options = hierarchy.options if hierarchy is not None else None
        return (uses_mc,
                options is not None and options.unified_data_cache,
                options is not None and options.ideal_data_caches,
                controller.store_buffer_entries == 0)

    def _sync_flags_for(self, key) -> list:
        """Memoised per-bundle may-arbitrate flags for one signature."""
        flags = self.program.sync_flags_cache.get(key)
        if flags is None:
            flags = [False] * self.tlen
            if key is not None:
                uses_mc, unified, ideal, store_arb = key
                for index, rec in enumerate(self.table):
                    if rec is None:
                        continue
                    for u in rec[R_UOPS]:
                        if _uop_may_arbitrate(u, uses_mc, unified, ideal,
                                              store_arb):
                            flags[index] = True
                            break
            self.program.sync_flags_cache[key] = flags
        return flags

    def enable_sync(self) -> None:
        """Classify every bundle for the pause-before-memory-event protocol.

        The flags depend on the core's cache organisation and store-buffer
        configuration, not just on the image, so they are per-context rather
        than part of the shared decode cache.
        """
        self.sync_flags = self._sync_flags_for(self._sync_key())

    def export(self) -> None:
        """Write the in-flight state back to the simulator (idempotent)."""
        from .base import _PendingControl, _PendingMainLoad, _PendingWrite

        sim = self.sim
        sim.issued = self.issued
        sim.cycles = self.cycles
        sim.instructions = self.instructions
        sim.nops = self.nops
        stalls = sim.stalls
        stalls.icache += self.s_icache
        stalls.data_cache += self.s_data
        stalls.method_cache += self.s_method
        stalls.stack_cache += self.s_stack
        stalls.split_load_wait += self.s_split
        stalls.store_buffer += self.s_store
        self.s_icache = self.s_data = self.s_method = 0
        self.s_stack = self.s_split = self.s_store = 0
        sim._pc = self.base + (self.idx << 2)
        sim._current_func = self.cur_func
        sim._pending_control = _PendingControl(
            target=self.ctrl_target, countdown=self.ctrl_cd,
            is_call=self.ctrl_is_call,
            call_target_name=self.ctrl_name) if self.ctrl_cd else None
        sim._pending_main_load = _PendingMainLoad(
            rd=self.pml_rd, value=self.pml_val,
            ready_cycle=self.pml_ready) if self.has_pml else None
        pending_writes = []
        ring_mask = self.ring_mask
        for offset in range(ring_mask + 1):
            due = self.issued + offset
            for write in self.ring[due & ring_mask]:
                pending_writes.append(_PendingWrite(
                    due_issue=due, kind=_KIND_NAMES[write[0]],
                    index=write[1], value=write[2]))
        sim._pending_writes = pending_writes

    def warp_to(self, cycle: int) -> None:
        """Advance the context's clock to ``cycle`` without issuing bundles.

        A preemptive task scheduler (:mod:`repro.rtos`) suspends a context
        mid-program and resumes it later on the same core; the cycles in
        between belong to other tasks and to scheduling overhead, so on
        resume the context's notion of *now* must jump forward to the core's
        clock.  All absolute-cycle state stays consistent under the warp:
        TDMA slot phases, store-buffer drain times and a pending split
        load's ready cycle are compared against the warped clock, so an
        in-flight memory operation simply completes during the preemption
        gap — exactly what the hardware would do while the core executes
        another task.

        The clock only moves forward; warping backwards would re-order
        already-issued arbitration requests and is rejected.
        """
        if cycle < self.cycles:
            raise SimulationError(
                f"cannot warp context clock backwards ({self.cycles} -> "
                f"{cycle})")
        self.cycles = cycle
        self.sim.cycles = cycle

    def advance(self, max_bundles: int, release: bool = False,
                sync: bool = True, until_cycle=None, event_source=None) -> str:
        """Run until the next scheduling point; returns why it stopped.

        * ``"halted"`` — the program executed ``halt``;
        * ``"sync"`` — sync flags are enabled and the *next* bundle may
          register an arbitrated transfer (the bundle has **not** executed;
          ``self.cycles`` is the global cycle its requests would carry);
        * ``"memory_event"`` / ``"cycle_limit"`` — the reference stepping
          conditions, for :func:`run_predecoded` compatibility.

        ``release=True`` executes the pending flagged bundle (the scheduler
        granting this core its turn) before pausing again; ``sync=False``
        ignores the flags entirely — used for single-core runs and for the
        last surviving core of a co-simulation, whose requests can no longer
        interleave with anyone.

        ``until_cycle`` doubles as the *interrupt check* of the RTOS layer:
        it is tested **before** the sync flags, at every bundle boundary, so
        a task scheduler that bounds each run by the next release time gets
        control back at the first bundle boundary at or after an interrupt
        fires — a bundle already issued runs to completion (the source of
        the one-bundle blocking term in the response-time analysis), and no
        sync pause is ever reported at or beyond the interrupt time.
        """
        sim = self.sim
        table = self.table
        tlen = self.tlen
        base = self.base
        ring_mask = self.ring_mask

        state = self.state
        regs = self.regs
        preds = self.preds
        specials = self.specials
        output = self.output
        block_counts = self.block_counts
        call_counts = self.call_counts
        stack_cache = self.stack_cache
        contains = stack_cache.contains
        func_at = self.func_at
        func_containing = self.func_containing
        memory = self.memory
        mem_read = memory.read
        mem_read_u32 = memory.read_u32
        mem_write = memory.write
        mem_write_u32 = memory.write_u32
        spad = self.scratchpad
        spad_read = spad.read
        spad_read_u32 = spad.read_u32
        spad_write = spad.write
        spad_write_u32 = spad.write_u32
        trace_append = self.trace_append

        ST, SS = SpecialReg.ST, SpecialReg.SS
        SL, SH = SpecialReg.SL, SpecialReg.SH
        SRB, SRO = SpecialReg.SRB, SpecialReg.SRO

        fetch_hook = self.fetch_hook
        mc_hook = self.mc_hook
        read_hook = self.read_hook
        write_hook = self.write_hook
        stack_hook = self.stack_hook
        store_hook = self.store_hook
        split_hook = self.split_hook

        issued = self.issued
        cycles = self.cycles
        instructions = self.instructions
        nops = self.nops
        halted = self.halted
        cur_func = self.cur_func
        cur_entry = cur_func.entry_addr
        idx = self.idx
        ring = self.ring
        pg = self.pg
        pp = self.pp
        ps = self.ps

        ctrl_cd = self.ctrl_cd
        ctrl_tidx = self.ctrl_tidx
        ctrl_target = self.ctrl_target
        ctrl_is_call = self.ctrl_is_call
        ctrl_name = self.ctrl_name
        has_pml = self.has_pml
        pml_rd = self.pml_rd
        pml_val = self.pml_val
        pml_ready = self.pml_ready

        s_icache = self.s_icache
        s_data = self.s_data
        s_method = self.s_method
        s_stack = self.s_stack
        s_split = self.s_split
        s_store = self.s_store

        sync_flags = self.sync_flags if sync else None
        skip_sync = release
        status = "cycle_limit"

        # Co-simulation stepping: all checks live behind one flag so the
        # single-core fast path pays a single predictable branch per bundle.
        stepping = (until_cycle is not None or event_source is not None
                    or sync_flags is not None)
        events_before = event_source.events if event_source is not None else 0

        try:
            while not halted:
                if issued >= max_bundles:
                    raise SimulationError(
                        f"program did not halt within {max_bundles} bundles")
                if stepping:
                    if until_cycle is not None and cycles >= until_cycle:
                        break
                    if event_source is not None and \
                            event_source.events != events_before:
                        status = "memory_event"
                        break
                    if sync_flags is not None:
                        if skip_sync:
                            skip_sync = False
                        elif 0 <= idx < tlen and sync_flags[idx]:
                            status = "sync"
                            break
                # Commit results whose exposed delay elapsed (due == issued).
                slot = ring[issued & ring_mask]
                if slot:
                    for write in slot:
                        kind = write[0]
                        if kind == 0:
                            regs[write[1]] = write[2]
                            pg[write[1]] -= 1
                        elif kind == 1:
                            preds[write[1]] = write[2]
                            pp[write[1]] -= 1
                        else:
                            specials[write[1]] = write[2]
                            ps[write[1]] -= 1
                    del slot[:]

                rec = table[idx] if 0 <= idx < tlen else None
                if rec is None:
                    raise LinkError(f"no bundle at address {base + (idx << 2):#x}")
                uops, block_key, addr, fall_addr, fall_idx, bundle, _func, \
                    trace_text, n_instr, n_nops = rec

                sim.cycles = cycles  # timing hooks (TDMA, store buffer) read this
                if block_key is not None:
                    block_counts[block_key] = block_counts.get(block_key, 0) + 1

                if fetch_hook is not None:
                    stall = fetch_hook(addr, bundle)
                    s_icache += stall
                else:
                    stall = 0

                for u in uops:
                    k = u[0]
                    g = u[1]
                    if g >= 0 and preds[g] == u[2]:
                        continue  # guard false
                    if k == 2:  # ALU reg-imm
                        value = u[3](regs[u[4]], u[5])
                        rd = u[6]
                        ring[(issued + 1) & ring_mask].append((0, rd, value))
                        pg[rd] += 1
                    elif k == 31:  # strict check: one GPR read
                        gg = u[3]
                        if gg >= 0:
                            if pp[gg]:
                                _raise_stale(1, gg, issued, ring, ring_mask)
                            if preds[gg] == u[4]:
                                continue
                        if pg[u[5]]:
                            _raise_stale(0, u[5], issued, ring, ring_mask)
                    elif k == 32:  # strict check: two GPR reads
                        gg = u[3]
                        if gg >= 0:
                            if pp[gg]:
                                _raise_stale(1, gg, issued, ring, ring_mask)
                            if preds[gg] == u[4]:
                                continue
                        if pg[u[5]]:
                            _raise_stale(0, u[5], issued, ring, ring_mask)
                        if pg[u[6]]:
                            _raise_stale(0, u[6], issued, ring, ring_mask)
                    elif k == 1:  # ALU reg-reg
                        value = u[3](regs[u[4]], regs[u[5]])
                        rd = u[6]
                        ring[(issued + 1) & ring_mask].append((0, rd, value))
                        pg[rd] += 1
                    elif k == 6:  # compare reg-imm
                        value = u[3](regs[u[4]], u[5])
                        pd = u[6]
                        ring[(issued + 1) & ring_mask].append((1, pd, value))
                        pp[pd] += 1
                    elif k == 5:  # compare reg-reg
                        value = u[3](regs[u[4]], regs[u[5]])
                        pd = u[6]
                        ring[(issued + 1) & ring_mask].append((1, pd, value))
                        pp[pd] += 1
                    elif k == 9:  # word load via a data cache
                        a0 = regs[u[3]] + u[4]
                        if u[9]:
                            a0 += specials[ST]
                        a0 &= _M
                        if u[8] and not contains(a0, 4):
                            raise StackCacheError(
                                f"stack access at {a0:#x} outside the cached "
                                f"window [{stack_cache.st:#x}, "
                                f"{stack_cache.ss:#x})")
                        value = mem_read_u32(a0)
                        rd = u[5]
                        if rd:
                            ring[(issued + 1 + u[6]) & ring_mask].append(
                                (0, rd, value))
                            pg[rd] += 1
                        if read_hook is not None:
                            st_ = read_hook(u[7], a0)
                            if st_:
                                s_data += st_
                                stall += st_
                    elif k == 14:  # word store via a data cache
                        a0 = regs[u[3]] + u[4]
                        if u[8]:
                            a0 += specials[ST]
                        a0 &= _M
                        if u[7] and not contains(a0, 4):
                            raise StackCacheError(
                                f"stack store at {a0:#x} outside the cached "
                                f"window [{stack_cache.st:#x}, "
                                f"{stack_cache.ss:#x})")
                        mem_write_u32(a0, regs[u[5]])
                        if write_hook is not None:
                            st_ = write_hook(u[6], a0)
                            if st_:
                                s_data += st_
                                stall += st_
                    elif k == 3:  # load 16-bit immediate (low half, pre-computed)
                        rd = u[4]
                        ring[(issued + 1) & ring_mask].append((0, rd, u[3]))
                        pg[rd] += 1
                    elif k == 4:  # load 16-bit immediate into the high half
                        rd = u[4]
                        value = (regs[rd] & 0xFFFF) | u[3]
                        ring[(issued + 1) & ring_mask].append((0, rd, value))
                        pg[rd] += 1
                    elif k == 21:  # branch
                        if ctrl_cd:
                            raise SimulationError(
                                "control-transfer issued inside the delay slots "
                                "of another control transfer")
                        ctrl_tidx = u[3]
                        ctrl_target = u[4]
                        ctrl_cd = u[5] + 1
                        ctrl_is_call = False
                        ctrl_name = None
                    elif k == 7:  # predicate combine
                        a = preds[u[4]]
                        b = preds[u[5]] if u[5] >= 0 else False
                        pd = u[6]
                        ring[(issued + 1) & ring_mask].append((1, pd, u[3](a, b)))
                        pp[pd] += 1
                    elif k == 0:  # strict-mode staleness checks
                        gg = u[3]
                        if gg >= 0:
                            if pp[gg]:
                                _raise_stale(1, gg, issued, ring, ring_mask)
                            if preds[gg] == u[4]:
                                continue
                        for i in u[5]:
                            if pg[i]:
                                _raise_stale(0, i, issued, ring, ring_mask)
                        for i in u[6]:
                            if pp[i]:
                                _raise_stale(1, i, issued, ring, ring_mask)
                        for r in u[7]:
                            if ps.get(r):
                                _raise_stale(2, r, issued, ring, ring_mask)
                    elif k == 10:  # sub-word load via a data cache
                        a0 = regs[u[3]] + u[4]
                        if u[9]:
                            a0 += specials[ST]
                        a0 &= _M
                        if u[8] and not contains(a0, u[10]):
                            raise StackCacheError(
                                f"stack access at {a0:#x} outside the cached "
                                f"window [{stack_cache.st:#x}, "
                                f"{stack_cache.ss:#x})")
                        value = mem_read(a0, u[10], u[11]) & _M
                        rd = u[5]
                        if rd:
                            ring[(issued + 1 + u[6]) & ring_mask].append(
                                (0, rd, value))
                            pg[rd] += 1
                        if read_hook is not None:
                            st_ = read_hook(u[7], a0)
                            if st_:
                                s_data += st_
                                stall += st_
                    elif k == 11 or k == 12:  # scratchpad load
                        a0 = (regs[u[3]] + u[4]) & _M
                        if k == 11:
                            value = spad_read_u32(a0)
                        else:
                            value = spad_read(a0, u[8], u[9]) & _M
                        rd = u[5]
                        if rd:
                            ring[(issued + 1 + u[6]) & ring_mask].append(
                                (0, rd, value))
                            pg[rd] += 1
                        if read_hook is not None:
                            st_ = read_hook(u[7], a0)
                            if st_:
                                s_data += st_
                                stall += st_
                    elif k == 15:  # sub-word store via a data cache
                        a0 = regs[u[3]] + u[4]
                        if u[8]:
                            a0 += specials[ST]
                        a0 &= _M
                        if u[7] and not contains(a0, u[9]):
                            raise StackCacheError(
                                f"stack store at {a0:#x} outside the cached "
                                f"window [{stack_cache.st:#x}, "
                                f"{stack_cache.ss:#x})")
                        mem_write(a0, regs[u[5]], u[9])
                        if write_hook is not None:
                            st_ = write_hook(u[6], a0)
                            if st_:
                                s_data += st_
                                stall += st_
                    elif k == 16 or k == 17:  # scratchpad store
                        a0 = (regs[u[3]] + u[4]) & _M
                        if k == 16:
                            spad_write_u32(a0, regs[u[5]])
                        else:
                            spad_write(a0, regs[u[5]], u[7])
                        if write_hook is not None:
                            st_ = write_hook(u[6], a0)
                            if st_:
                                s_data += st_
                                stall += st_
                    elif k == 13:  # split main-memory load
                        if has_pml:
                            raise SimulationError(
                                "split load issued while another main-memory "
                                "load is pending")
                        a0 = (regs[u[3]] + u[4]) & _M
                        if u[6] == 4:
                            pml_val = mem_read_u32(a0)
                        else:
                            pml_val = mem_read(a0, u[6], u[7]) & _M
                        pml_rd = u[5]
                        pml_ready = cycles + (split_hook() if split_hook is not None
                                              else 0)
                        has_pml = True
                    elif k == 19:  # wmem: wait for the split load
                        if has_pml:
                            has_pml = False
                            st_ = pml_ready - cycles
                            if st_ < 0:
                                st_ = 0
                            if pml_rd:
                                ring[(issued + 1) & ring_mask].append(
                                    (0, pml_rd, pml_val))
                                pg[pml_rd] += 1
                            s_split += st_
                            stall += st_
                    elif k == 18:  # uncached main-memory store
                        a0 = (regs[u[3]] + u[4]) & _M
                        value = regs[u[5]]
                        st_ = store_hook(a0, value, u[6]) if store_hook is not None \
                            else 0
                        if u[6] == 4:
                            mem_write_u32(a0, value)
                        else:
                            mem_write(a0, value, u[6])
                        if st_:
                            s_store += st_
                            stall += st_
                    elif k == 20:  # sres/sens/sfree
                        st_ = stack_hook(u[3], u[5]) if stack_hook is not None \
                            else 0
                        if u[4] == 0:
                            stack_cache.reserve(u[5])
                        elif u[4] == 1:
                            stack_cache.ensure(u[5])
                        else:
                            stack_cache.free(u[5])
                        specials[ST] = stack_cache.st & _M
                        specials[SS] = stack_cache.ss & _M
                        s_stack += st_
                        stall += st_
                    elif k == 8:  # multiply
                        low, high = u[3](regs[u[4]], regs[u[5]])
                        mslot = ring[(issued + 1 + u[6]) & ring_mask]
                        mslot.append((2, SL, low))
                        mslot.append((2, SH, high))
                        ps[SL] = ps.get(SL, 0) + 1
                        ps[SH] = ps.get(SH, 0) + 1
                    elif k == 22:  # brcf: branch with method-cache fill
                        record = u[6]
                        if record is None:
                            record = func_containing(u[4])
                        if mc_hook is not None:
                            st_ = mc_hook(record)
                            if st_:
                                s_method += st_
                                stall += st_
                        if ctrl_cd:
                            raise SimulationError(
                                "control-transfer issued inside the delay slots "
                                "of another control transfer")
                        ctrl_tidx = u[3]
                        ctrl_target = u[4]
                        ctrl_cd = u[5] + 1
                        ctrl_is_call = False
                        ctrl_name = None
                    elif k == 23 or k == 24:  # call / call-register
                        if k == 23:
                            record = u[6]
                            if record is None:
                                record = func_at(u[4])
                            target = u[4]
                            t_idx = u[3]
                            delay = u[5]
                        else:
                            target = regs[u[3]]
                            record = func_at(target)
                            t_idx = (target - base) >> 2
                            delay = u[4]
                        if mc_hook is not None:
                            st_ = mc_hook(record)
                            if st_:
                                s_method += st_
                                stall += st_
                        name = record.name
                        call_counts[name] = call_counts.get(name, 0) + 1
                        specials[SRB] = cur_entry
                        if ctrl_cd:
                            raise SimulationError(
                                "control-transfer issued inside the delay slots "
                                "of another control transfer")
                        ctrl_tidx = t_idx
                        ctrl_target = target
                        ctrl_cd = delay + 1
                        ctrl_is_call = True
                        ctrl_name = name
                    elif k == 25:  # return
                        ret_base = specials[SRB]
                        record = func_containing(ret_base)
                        if mc_hook is not None:
                            st_ = mc_hook(record)
                            if st_:
                                s_method += st_
                                stall += st_
                        target = (ret_base + specials[SRO]) & _M
                        if ctrl_cd:
                            raise SimulationError(
                                "control-transfer issued inside the delay slots "
                                "of another control transfer")
                        ctrl_tidx = (target - base) >> 2
                        ctrl_target = target
                        ctrl_cd = u[3] + 1
                        ctrl_is_call = False
                        ctrl_name = None
                    elif k == 26:  # mts
                        value = regs[u[4]]
                        special = u[3]
                        specials[special] = value
                        if special is ST:
                            stack_cache.st = value
                            if stack_cache.ss < value:
                                stack_cache.ss = value
                        elif special is SS:
                            stack_cache.ss = value
                    elif k == 27:  # mfs
                        rd = u[4]
                        ring[(issued + 1) & ring_mask].append(
                            (0, rd, specials[u[3]]))
                        pg[rd] += 1
                    elif k == 29:  # debug output
                        value = regs[u[3]]
                        output.append(value - 0x1_0000_0000
                                      if value & 0x8000_0000 else value)
                    elif k == 28:  # halt
                        state.halted = True
                        halted = True
                    else:  # k == 30: unresolved control-flow target
                        raise SimulationError(
                            f"unresolved control-flow target {u[3]!r}; "
                            "simulate a linked image")

                if trace_text is not None:
                    trace_append(TraceEntry(cycle=cycles, addr=addr,
                                            text=trace_text))
                issued += 1
                cycles += 1 + stall
                instructions += n_instr
                nops += n_nops

                next_idx = fall_idx
                if ctrl_cd:
                    ctrl_cd -= 1
                    if ctrl_cd == 0:
                        if ctrl_is_call:
                            specials[SRO] = (fall_addr - cur_entry) & _M
                        next_idx = ctrl_tidx
                        if not halted:
                            rec2 = table[next_idx] \
                                if 0 <= next_idx < tlen else None
                            if rec2 is not None and rec2[R_FUNC] is not None:
                                cur_func = rec2[R_FUNC]
                            else:
                                cur_func = func_containing(ctrl_target)
                            cur_entry = cur_func.entry_addr
                        ctrl_is_call = False
                        ctrl_name = None
                idx = next_idx
        finally:
            # Store the in-flight scalars back into the context; the ring,
            # pending counters and statistics dicts are mutated in place.
            # Resumption needs no further work, and :meth:`export` can
            # rebuild the reference representation at any time.
            self.issued = issued
            self.cycles = cycles
            self.instructions = instructions
            self.nops = nops
            self.halted = halted
            self.cur_func = cur_func
            self.idx = idx
            self.ctrl_cd = ctrl_cd
            self.ctrl_tidx = ctrl_tidx
            self.ctrl_target = ctrl_target
            self.ctrl_is_call = ctrl_is_call
            self.ctrl_name = ctrl_name
            self.has_pml = has_pml
            self.pml_rd = pml_rd
            self.pml_val = pml_val
            self.pml_ready = pml_ready
            self.s_icache = s_icache
            self.s_data = s_data
            self.s_method = s_method
            self.s_stack = s_stack
            self.s_split = s_split
            self.s_store = s_store
        return "halted" if halted else status


def run_predecoded(sim, max_bundles: int, until_cycle=None,
                   event_source=None) -> None:
    """Run ``sim`` to completion (or ``max_bundles``) on the fast engine.

    Mutates the simulator in place exactly like its reference ``_step`` loop
    would; the caller produces the :class:`SimResult` afterwards.

    The two stepping parameters make the engine resumable for multicore
    co-simulation without giving up the pre-decoded fast path: with
    ``until_cycle`` the loop stops before issuing a bundle once the local
    clock reaches the horizon, and with ``event_source`` (an object whose
    ``events`` counter ticks on every arbitrated shared-memory transfer) it
    stops after the bundle that performed a transfer.  On any stop (also on
    exceptions) the complete in-flight state is exported, so a later call
    resumes exactly where this one left off.

    Each call builds a fresh :class:`EngineContext` and tears it down again;
    a scheduler that re-enters a core every few bundles should hold on to
    one context per core instead (the event-driven co-simulation does).
    """
    context = EngineContext(sim)
    try:
        context.advance(max_bundles, sync=False, until_cycle=until_cycle,
                        event_source=event_source)
    finally:
        context.export()
