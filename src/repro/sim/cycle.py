"""Cycle-accurate Patmos simulator with the time-predictable memory hierarchy.

On top of the architectural semantics of :class:`~repro.sim.base.BaseSimulator`
this simulator charges stall cycles for:

* method-cache fills at call, return and ``brcf`` (or per-fetch misses of the
  conventional instruction-cache baseline);
* misses in the static/constant cache and the object/heap cache;
* stack-cache spill and fill traffic caused by ``sres``/``sens``;
* split main-memory loads (the ``wmem`` wait time) and the store buffer;
* TDMA arbitration delays when the core is part of a chip multiprocessor.

The pipeline itself never stalls for hazards: operand delays are exposed at
the ISA level and must be respected by the compiler (checked with
``strict=True``).
"""

from __future__ import annotations

from typing import Optional

from ..config import PatmosConfig
from ..caches.hierarchy import CacheHierarchy, HierarchyOptions
from ..caches.stack_cache import StackCache
from ..isa.instruction import Bundle
from ..isa.opcodes import MemType, Opcode
from ..memory.controller import MemoryController
from ..program.linker import FunctionRecord, Image
from .base import BaseSimulator


class CycleSimulator(BaseSimulator):
    """Cycle-accurate simulator of one Patmos core."""

    def __init__(self, image: Image, config: Optional[PatmosConfig] = None,
                 strict: bool = False, trace: bool = False,
                 hierarchy_options: Optional[HierarchyOptions] = None,
                 arbiter=None, core_id: int = 0, engine: str = "fast",
                 memory=None):
        self._hierarchy_options = hierarchy_options or HierarchyOptions()
        self._config_for_hierarchy = config
        super().__init__(image, config=config, strict=strict, trace=trace,
                         engine=engine, memory=memory)
        self.core_id = core_id
        self.hierarchy = CacheHierarchy(self.config, self._hierarchy_options)
        # Share the single stack-cache model between hierarchy and executor.
        self.hierarchy.stack_cache = self.stack_cache
        self.controller = MemoryController(
            self.memory, self.config.memory,
            arbiter=arbiter,
            store_buffer_entries=self.config.pipeline.store_buffer_entries)

    # ------------------------------------------------------------------
    # Timing hooks
    # ------------------------------------------------------------------

    def _on_start(self) -> None:
        # Loading the entry function into the method cache is the first
        # memory transfer of a real system; charge it so that method-cache
        # statistics cover the whole execution.
        entry = self.image.function_at(self.image.entry_addr)
        stall = self._method_cache_stall(entry)
        self.stalls.method_cache += stall
        self.cycles += stall

    def _make_stack_cache(self) -> StackCache:
        return StackCache(self.config.stack_cache, self.config.memory,
                          self.config.memory_map.stack_top)

    def _memory_event_source(self):
        # Every arbitrated transfer ticks the arbiter's ``events`` counter
        # (both ArbiterPort and the closed-form TdmaArbiter count), which is
        # what run-until-memory-event stepping watches.
        arbiter = self.controller.arbiter
        if arbiter is not None and hasattr(arbiter, "events"):
            return arbiter
        return None

    def _fetch_stall(self, addr: int, bundle: Bundle) -> int:
        if self.hierarchy.uses_method_cache:
            return 0
        stall = self.hierarchy.fetch_stall(addr)
        if bundle.size_bytes > 4:
            stall += self.hierarchy.fetch_stall(addr + 4)
        return stall

    def _engine_fetch_hook(self):
        # With the method cache, instruction fetch never stalls per bundle
        # (fills are charged at call/return/brcf); let the fast engine skip
        # the per-fetch call entirely in that configuration — unless a
        # subclass overrode _fetch_stall, whose behaviour must be preserved.
        if self.hierarchy.uses_method_cache and \
                type(self)._fetch_stall is CycleSimulator._fetch_stall:
            return None
        return self._fetch_stall

    def _count_bus_words(self, words: int) -> None:
        """Account main-memory bus traffic (cache fills, spills, splits).

        The memory controller's own stats only cover the store traffic
        routed through it; fills, spills and split loads are priced by the
        hooks below, so they record their word counts here to keep
        ``ControllerStats.words_transferred`` a genuine bus-traffic metric.
        """
        self.controller.stats.words_transferred += words

    def _method_cache_stall(self, record: FunctionRecord) -> int:
        if not self.hierarchy.uses_method_cache:
            return 0
        result = self.hierarchy.instruction_access(record.name, record.size_bytes)
        if result.hit:
            return 0
        self._count_bus_words(result.fill_words)
        return result.stall_cycles + self._arbitration(result.fill_words)

    def _arbitration(self, words: int) -> int:
        if self.controller.arbiter is None:
            return 0
        transfer = min(self.config.memory.transfer_cycles(min(
            words, self.config.memory.burst_words)),
            self.config.memory.burst_cycles())
        wait = self.controller.arbiter.arbitration_delay(self.cycles, transfer)
        self.stalls.arbitration += wait
        return wait

    def _cached_read_stall(self, mem_type: MemType, addr: int) -> int:
        if mem_type is MemType.LOCAL:
            return self.scratchpad.access_cycles()
        stall = self.hierarchy.data_read(mem_type, addr)
        if stall > 0:
            line_words = self.config.static_cache.line_bytes // 4
            self._count_bus_words(line_words)
            stall += self._arbitration(line_words)
        return stall

    def _cached_write_stall(self, mem_type: MemType, addr: int) -> int:
        if mem_type is MemType.LOCAL:
            return self.scratchpad.access_cycles()
        stall = self.hierarchy.data_write(mem_type, addr)
        # Write-through traffic (static/object caches — and stack data when
        # the unified baseline is used) goes through the store buffer.  Stack
        # cache writes stay on chip; their memory traffic happens at spill
        # time and is charged by the sres instruction.
        write_through = mem_type in (MemType.STATIC, MemType.OBJECT) or (
            mem_type is MemType.STACK
            and self._hierarchy_options.unified_data_cache)
        if write_through:
            stall += self.controller.buffer_store(self.cycles)
        return stall

    def _stack_control_stall(self, opcode: Opcode, words: int) -> int:
        # Compute the spill/fill cost without mutating the stack cache twice:
        # peek at the occupancy change the base class is about to apply.
        cache = self.stack_cache
        if opcode is Opcode.SRES:
            new_occupancy = cache.occupancy_bytes + 4 * words
            spill_bytes = max(0, new_occupancy - cache.size_bytes)
            stall = self.config.memory.transfer_cycles(spill_bytes // 4)
            if spill_bytes:
                self._count_bus_words(spill_bytes // 4)
                stall += self._arbitration(spill_bytes // 4)
            return stall
        if opcode is Opcode.SENS:
            fill_bytes = max(0, 4 * words - cache.occupancy_bytes)
            stall = self.config.memory.transfer_cycles(fill_bytes // 4)
            if fill_bytes:
                self._count_bus_words(fill_bytes // 4)
                stall += self._arbitration(fill_bytes // 4)
            return stall
        return 0

    def _main_store_stall(self, addr: int, value: int, width: int) -> int:
        # The base simulator writes the value to memory; only the write-buffer
        # timing is charged here.
        return self.controller.buffer_store(self.cycles)

    def _split_load_latency(self) -> int:
        self._count_bus_words(1)
        latency = self.config.memory.transfer_cycles(1)
        latency += self._arbitration(1)
        # A load must not overtake buffered stores to main memory.
        latency += self.controller.drain_cycles(self.cycles)
        return latency

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _cache_stats(self) -> dict[str, dict]:
        stats = self.hierarchy.stats_summary()
        stats["stack_cache"] = vars(self.stack_cache.stats).copy()
        stats["memory_controller"] = vars(self.controller.stats).copy()
        return stats
