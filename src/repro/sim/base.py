"""Shared execution engine of the Patmos simulators.

:class:`BaseSimulator` implements the full architectural semantics of the
Patmos ISA — fully predicated execution, exposed delay slots for loads,
multiplies, branches and calls, split main-memory accesses, stack-cache
control instructions and the method-cache call/return protocol — but charges
no stall cycles for the memory hierarchy.  Used directly it is the
*functional* simulator; :class:`repro.sim.cycle.CycleSimulator` subclasses it
and plugs in the time-predictable caches and the memory controller to obtain
cycle-accurate timing.

Exposed-delay semantics
-----------------------

Patmos never stalls to hide operand latencies (Section 3.2): an instruction
that reads a result before the producer's delay has elapsed observes the *old*
register value.  The simulator reproduces this by committing register writes
only after the corresponding number of issued bundles.  With ``strict=True``
such premature reads raise :class:`~repro.errors.ScheduleViolation` instead,
which is how the test-suite validates that the compiler's scheduler respects
all delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import ScheduleViolation, SimulationError, StackCacheError
from ..isa.instruction import Bundle, Instruction
from ..isa.opcodes import (
    ControlKind,
    Format,
    MemType,
    Opcode,
    control_delay_slots,
    result_delay_slots,
)
from ..isa.registers import SpecialReg
from ..memory.main_memory import MainMemory
from ..memory.scratchpad import Scratchpad
from ..program.linker import FunctionRecord, Image
from ..caches.stack_cache import StackCache
from .executor import alu_op, compare_op, multiply, predicate_op
from .results import SimResult, StallBreakdown, TraceEntry
from .state import ArchState, to_signed, to_unsigned


@dataclass
class _PendingWrite:
    due_issue: int
    kind: str  # "gpr", "pred" or "special"
    index: object
    value: object


@dataclass
class _PendingControl:
    target: int
    countdown: int
    is_call: bool
    call_target_name: Optional[str] = None


@dataclass
class _PendingMainLoad:
    rd: int
    value: int
    ready_cycle: int


#: Execution internals of the reference interpreter.  A subclass overriding
#: any of these has changed the semantics the pre-decoded engine hard-codes,
#: so ``run()`` silently falls back to the interpreter for it.
_REFERENCE_SEMANTICS_METHODS = (
    "_step", "_execute", "_execute_load", "_execute_store", "_execute_wmem",
    "_execute_stack_control", "_execute_control", "_commit_due_writes",
    "_schedule_write", "_check_stale", "_read_gpr", "_read_pred",
    "_read_special", "_guard_true", "_effective_address", "_resolved_target",
    "_take_control",
)

_reference_semantics_cache: dict[type, bool] = {}


def _uses_reference_semantics(cls: type) -> bool:
    """True if ``cls`` keeps every execution internal of the base class."""
    cached = _reference_semantics_cache.get(cls)
    if cached is None:
        cached = all(
            getattr(cls, name) is getattr(BaseSimulator, name)
            for name in _REFERENCE_SEMANTICS_METHODS)
        _reference_semantics_cache[cls] = cached
    return cached


class BaseSimulator:
    """Functional Patmos simulator (architectural semantics, no timing).

    Three execution engines share these semantics: the readable reference
    interpreter implemented by :meth:`_step`/:meth:`_execute` below, the
    pre-decoded fast engine of :mod:`repro.sim.engine` (the default), which
    compiles the image into a micro-op table once and is several times
    faster, and the jit engine of :mod:`repro.sim.codegen`
    (``engine="jit"``), which generates straight-line Python superblocks per
    program for another large speed-up.  Pass ``engine="reference"`` to
    force the interpreter; subclasses that override any execution internal
    (``_step``, ``_execute`` and the helpers they dispatch to) fall back to
    it automatically.
    """

    def __init__(self, image: Image, config: Optional[PatmosConfig] = None,
                 strict: bool = False, trace: bool = False,
                 engine: str = "fast",
                 memory: Optional[MainMemory] = None):
        if engine not in ("fast", "reference", "jit"):
            raise SimulationError(
                f"unknown engine {engine!r}; use 'fast', 'reference' or "
                f"'jit'")
        self.image = image
        self.config = config or image.config or DEFAULT_CONFIG
        self.strict = strict
        self.trace_enabled = trace
        self.engine = engine

        self.state = ArchState()
        # An externally provided memory (e.g. a bank view of the multicore
        # system's shared memory) replaces the private per-core memory.
        self.memory = memory if memory is not None \
            else MainMemory(self.config.memory.size_bytes)
        self.memory.load_words(image.initial_memory)
        self.scratchpad = Scratchpad(self.config.scratchpad)
        self.scratchpad.load_words(image.initial_scratchpad)
        self.stack_cache = self._make_stack_cache()

        stack_top = self.config.memory_map.stack_top
        self.state.write_special(SpecialReg.ST, stack_top)
        self.state.write_special(SpecialReg.SS, stack_top)

        self.cycles = 0
        self.issued = 0
        self.instructions = 0
        self.nops = 0
        self.stalls = StallBreakdown()
        self.block_counts: dict[tuple[str, str], int] = {}
        self.call_counts: dict[str, int] = {}
        self.trace: list[TraceEntry] = []

        self._pending_writes: list[_PendingWrite] = []
        self._pending_control: Optional[_PendingControl] = None
        self._pending_main_load: Optional[_PendingMainLoad] = None
        self._pc = image.entry_addr
        self._current_func: FunctionRecord = image.function_at(image.entry_addr)
        self._started = False

    # ------------------------------------------------------------------
    # Hooks overridden by the cycle-accurate simulator
    # ------------------------------------------------------------------

    def _make_stack_cache(self) -> StackCache:
        return StackCache(self.config.stack_cache, self.config.memory,
                          self.config.memory_map.stack_top)

    def _fetch_stall(self, addr: int, bundle: Bundle) -> int:
        """Stall cycles charged for fetching a bundle (conventional I$ only)."""
        return 0

    def _method_cache_stall(self, record: FunctionRecord) -> int:
        """Stall cycles for a method-cache access at call/return/brcf."""
        return 0

    def _cached_read_stall(self, mem_type: MemType, addr: int) -> int:
        """Stall cycles of a typed cached read (C$, D$, S$, SP)."""
        return 0

    def _cached_write_stall(self, mem_type: MemType, addr: int) -> int:
        """Stall cycles of a typed cached write."""
        return 0

    def _stack_control_stall(self, opcode: Opcode, words: int) -> int:
        """Stall cycles of an sres/sens/sfree (spill/fill traffic)."""
        return 0

    def _main_store_stall(self, addr: int, value: int, width: int) -> int:
        """Stall cycles of an uncached main-memory store."""
        return 0

    def _split_load_latency(self) -> int:
        """Cycles until an uncached split load completes."""
        return 0

    def _engine_fetch_hook(self):
        """Per-fetch stall callback for the pre-decoded engine.

        ``None`` means fetches never stall, letting the engine skip the call
        per bundle; subclasses that charge fetch stalls return the callable.
        """
        if type(self)._fetch_stall is BaseSimulator._fetch_stall:
            return None
        return self._fetch_stall

    # ------------------------------------------------------------------
    # Register access with exposed-delay semantics
    # ------------------------------------------------------------------

    def _commit_due_writes(self) -> None:
        remaining = []
        for write in self._pending_writes:
            if write.due_issue <= self.issued:
                if write.kind == "gpr":
                    self.state.write_gpr(write.index, write.value)
                elif write.kind == "pred":
                    self.state.write_pred(write.index, write.value)
                else:
                    self.state.write_special(write.index, write.value)
            else:
                remaining.append(write)
        self._pending_writes = remaining

    def _schedule_write(self, kind: str, index, value, delay_slots: int) -> None:
        # r0 and p0 are hard-wired; writes to them disappear and must not be
        # tracked as pending (they would trip the strict stale-read check).
        if kind in ("gpr", "pred") and index == 0:
            return
        self._pending_writes.append(_PendingWrite(
            due_issue=self.issued + 1 + delay_slots, kind=kind, index=index,
            value=value))

    def _check_stale(self, kind: str, index) -> None:
        if not self.strict:
            return
        for write in self._pending_writes:
            if write.kind == kind and write.index == index:
                raise ScheduleViolation(
                    f"read of {kind} {index} at bundle {self.issued} before the "
                    f"result of a previous instruction is available "
                    f"(due at bundle {write.due_issue})")

    def _read_gpr(self, index: int) -> int:
        self._check_stale("gpr", index)
        return self.state.read_gpr(index)

    def _read_pred(self, index: int) -> bool:
        self._check_stale("pred", index)
        return self.state.read_pred(index)

    def _read_special(self, reg: SpecialReg) -> int:
        self._check_stale("special", reg)
        return self.state.read_special(reg)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _on_start(self) -> None:
        """Hook invoked once before the first bundle is issued."""

    def _ensure_started(self) -> None:
        if not self._started:
            self._started = True
            self._on_start()

    def _memory_event_source(self):
        """Object whose ``events`` counter ticks on shared-memory transfers.

        ``None`` (the functional simulator has no shared bus) disables
        run-until-memory-event stepping; the cycle simulator returns its
        arbiter port when the core is attached to a shared memory.
        """
        return None

    def run(self, max_bundles: int = 2_000_000) -> SimResult:
        """Run until ``halt`` (or until ``max_bundles`` bundles were issued)."""
        self.run_step(max_bundles=max_bundles)
        return self.result()

    def run_step(self, until_cycle: Optional[int] = None,
                 stop_on_memory_event: bool = False,
                 max_bundles: int = 2_000_000) -> str:
        """Resumable stepping: run until a scheduling point and return why.

        The simulator keeps all in-flight state (pending writes, delayed
        control transfers, outstanding split loads) between calls, so a
        global multicore scheduler can interleave several cores on one clock
        without losing the pre-decoded fast path.  Returns one of:

        * ``"halted"`` — the program executed ``halt``;
        * ``"memory_event"`` — ``stop_on_memory_event`` was set and the core
          performed at least one arbitrated shared-memory transfer (the
          bundle containing the transfer completes before control returns);
        * ``"cycle_limit"`` — the core's clock reached ``until_cycle``.

        ``until_cycle`` is exclusive: the core stops *before* issuing a
        bundle once ``cycles >= until_cycle``, so a caller advancing the
        global clock never lets a core run past the horizon unobserved.
        """
        self._ensure_started()
        source = self._memory_event_source() if stop_on_memory_event else None
        events_before = source.events if source is not None else 0
        if self.engine == "jit" and _uses_reference_semantics(type(self)):
            from .codegen import run_jit
            run_jit(self, max_bundles, until_cycle=until_cycle,
                    event_source=source)
        elif self.engine == "fast" and _uses_reference_semantics(type(self)):
            from .engine import run_predecoded
            run_predecoded(self, max_bundles, until_cycle=until_cycle,
                           event_source=source)
        else:
            while not self.state.halted:
                if self.issued >= max_bundles:
                    raise SimulationError(
                        f"program did not halt within {max_bundles} bundles")
                if until_cycle is not None and self.cycles >= until_cycle:
                    break
                if source is not None and source.events != events_before:
                    break
                self._step()
        if self.state.halted:
            return "halted"
        if source is not None and source.events != events_before:
            return "memory_event"
        return "cycle_limit"

    def _step(self) -> None:
        self._commit_due_writes()

        pc = self._pc
        block = self.image.block_at(pc)
        if block is not None:
            key = (block.function, block.label)
            self.block_counts[key] = self.block_counts.get(key, 0) + 1

        bundle = self.image.bundle_at(pc)
        fetch_stall = self._fetch_stall(pc, bundle)
        self.stalls.icache += fetch_stall

        stall = fetch_stall
        for instr in bundle.instructions():
            stall += self._execute(instr, pc)
            self.instructions += 1
            if instr.is_nop:
                self.nops += 1

        if self.trace_enabled:
            self.trace.append(TraceEntry(cycle=self.cycles, addr=pc,
                                         text=str(bundle)))

        self.issued += 1
        self.cycles += 1 + stall

        next_pc = pc + bundle.size_bytes
        if self._pending_control is not None:
            self._pending_control.countdown -= 1
            if self._pending_control.countdown == 0:
                control = self._pending_control
                self._pending_control = None
                if control.is_call:
                    # The return offset is the fall-through point after the
                    # delay slots, relative to the caller's entry.
                    self.state.write_special(
                        SpecialReg.SRO, next_pc - self._current_func.entry_addr)
                next_pc = control.target
                if not self.state.halted:
                    self._current_func = self.image.function_containing(next_pc)
        self._pc = next_pc

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------

    def _guard_true(self, instr: Instruction) -> bool:
        value = self._read_pred(instr.guard.pred)
        return (not value) if instr.guard.negate else value

    def _execute(self, instr: Instruction, pc: int) -> int:
        """Execute one instruction; returns the stall cycles it caused."""
        info = instr.info
        fmt = info.fmt

        if fmt is Format.NOP:
            return 0
        if not self._guard_true(instr):
            return 0

        if fmt in (Format.ALU_R, Format.ALU_I, Format.ALU_L):
            a = self._read_gpr(instr.rs1)
            b = (self._read_gpr(instr.rs2) if fmt is Format.ALU_R
                 else to_unsigned(instr.imm))
            self._schedule_write("gpr", instr.rd, alu_op(instr.opcode, a, b), 0)
            return 0
        if fmt is Format.LI:
            if instr.opcode is Opcode.LIL:
                value = to_unsigned(to_signed(to_unsigned(instr.imm)))
            else:  # LIH: merge into the upper half, keeping the lower half
                old = self._read_gpr(instr.rd)
                value = (old & 0xFFFF) | ((instr.imm & 0xFFFF) << 16)
            self._schedule_write("gpr", instr.rd, value, 0)
            return 0
        if fmt is Format.MUL:
            low, high = multiply(instr.opcode, self._read_gpr(instr.rs1),
                                 self._read_gpr(instr.rs2))
            delay = result_delay_slots(info, self.config.pipeline)
            self._schedule_write("special", SpecialReg.SL, low, delay)
            self._schedule_write("special", SpecialReg.SH, high, delay)
            return 0
        if fmt in (Format.CMP_R, Format.CMP_I):
            a = self._read_gpr(instr.rs1)
            b = (self._read_gpr(instr.rs2) if fmt is Format.CMP_R
                 else to_unsigned(instr.imm))
            self._schedule_write("pred", instr.pd, compare_op(instr.opcode, a, b), 0)
            return 0
        if fmt is Format.PRED:
            a = self._read_pred(instr.ps1)
            b = self._read_pred(instr.ps2) if instr.ps2 is not None else False
            self._schedule_write("pred", instr.pd,
                                 predicate_op(instr.opcode, a, b), 0)
            return 0
        if fmt is Format.LOAD:
            return self._execute_load(instr)
        if fmt is Format.STORE:
            return self._execute_store(instr)
        if fmt is Format.WAIT:
            return self._execute_wmem()
        if fmt is Format.STACK:
            return self._execute_stack_control(instr)
        if fmt in (Format.BRANCH, Format.CALL, Format.CALLR, Format.RET):
            return self._execute_control(instr, pc)
        if fmt is Format.MTS:
            value = self._read_gpr(instr.rs1)
            self.state.write_special(instr.special, value)
            if instr.special is SpecialReg.ST:
                self.stack_cache.st = value
                self.stack_cache.ss = max(self.stack_cache.ss, value)
            if instr.special is SpecialReg.SS:
                self.stack_cache.ss = value
            return 0
        if fmt is Format.MFS:
            self._schedule_write("gpr", instr.rd,
                                 self._read_special(instr.special), 0)
            return 0
        if fmt is Format.HALT:
            self.state.halted = True
            return 0
        if fmt is Format.OUT:
            self.state.output.append(to_signed(self._read_gpr(instr.rs1)))
            return 0
        raise SimulationError(f"cannot execute {instr}")  # pragma: no cover

    # -- memory accesses -------------------------------------------------------------

    def _effective_address(self, instr: Instruction) -> int:
        base = self._read_gpr(instr.rs1)
        addr = to_unsigned(base + instr.imm)
        if instr.info.mem_type is MemType.STACK:
            # Stack accesses are relative to the stack-top pointer.
            addr = to_unsigned(self._read_special(SpecialReg.ST) + base + instr.imm)
        return addr

    def _execute_load(self, instr: Instruction) -> int:
        info = instr.info
        mem_type = info.mem_type
        addr = self._effective_address(instr)

        if mem_type is MemType.MAIN:
            if self._pending_main_load is not None:
                raise SimulationError(
                    "split load issued while another main-memory load is pending")
            value = self.memory.read(addr, info.width, signed=info.signed)
            latency = self._split_load_latency()
            self._pending_main_load = _PendingMainLoad(
                rd=instr.rd, value=to_unsigned(value),
                ready_cycle=self.cycles + latency)
            return 0

        if mem_type is MemType.LOCAL:
            value = self.scratchpad.read(addr, info.width, signed=info.signed)
            stall = self._cached_read_stall(mem_type, addr)
        else:
            if mem_type is MemType.STACK and self.strict and \
                    not self.stack_cache.contains(addr, info.width):
                raise StackCacheError(
                    f"stack access at {addr:#x} outside the cached window "
                    f"[{self.stack_cache.st:#x}, {self.stack_cache.ss:#x})")
            value = self.memory.read(addr, info.width, signed=info.signed)
            stall = self._cached_read_stall(mem_type, addr)
        delay = result_delay_slots(info, self.config.pipeline)
        self._schedule_write("gpr", instr.rd, to_unsigned(value), delay)
        self.stalls.data_cache += stall
        return stall

    def _execute_store(self, instr: Instruction) -> int:
        info = instr.info
        mem_type = info.mem_type
        addr = self._effective_address(instr)
        value = self._read_gpr(instr.rs2)

        if mem_type is MemType.LOCAL:
            self.scratchpad.write(addr, value, info.width)
            stall = self._cached_write_stall(mem_type, addr)
            self.stalls.data_cache += stall
            return stall
        if mem_type is MemType.MAIN:
            stall = self._main_store_stall(addr, value, info.width)
            self.memory.write(addr, value, info.width)
            self.stalls.store_buffer += stall
            return stall
        if mem_type is MemType.STACK and self.strict and \
                not self.stack_cache.contains(addr, info.width):
            raise StackCacheError(
                f"stack store at {addr:#x} outside the cached window "
                f"[{self.stack_cache.st:#x}, {self.stack_cache.ss:#x})")
        self.memory.write(addr, value, info.width)
        stall = self._cached_write_stall(mem_type, addr)
        self.stalls.data_cache += stall
        return stall

    def _execute_wmem(self) -> int:
        pending = self._pending_main_load
        if pending is None:
            return 0
        self._pending_main_load = None
        stall = max(0, pending.ready_cycle - self.cycles)
        self._schedule_write("gpr", pending.rd, pending.value, 0)
        self.stalls.split_load_wait += stall
        return stall

    def _execute_stack_control(self, instr: Instruction) -> int:
        words = instr.imm
        stall = self._stack_control_stall(instr.opcode, words)
        if instr.opcode is Opcode.SRES:
            self.stack_cache.reserve(words)
        elif instr.opcode is Opcode.SENS:
            self.stack_cache.ensure(words)
        else:
            self.stack_cache.free(words)
        self.state.write_special(SpecialReg.ST, self.stack_cache.st)
        self.state.write_special(SpecialReg.SS, self.stack_cache.ss)
        self.stalls.stack_cache += stall
        return stall

    # -- control flow ------------------------------------------------------------------

    def _resolved_target(self, instr: Instruction) -> int:
        if not isinstance(instr.target, int):
            raise SimulationError(
                f"unresolved control-flow target {instr.target!r}; "
                "simulate a linked image")
        return instr.target

    def _take_control(self, target: int, delay_slots: int, is_call: bool,
                      call_name: Optional[str] = None) -> None:
        if self._pending_control is not None:
            raise SimulationError(
                "control-transfer issued inside the delay slots of another "
                "control transfer")
        self._pending_control = _PendingControl(
            target=target, countdown=delay_slots + 1, is_call=is_call,
            call_target_name=call_name)

    def _execute_control(self, instr: Instruction, pc: int) -> int:
        info = instr.info
        pipeline = self.config.pipeline
        delay = control_delay_slots(info, pipeline)

        if info.control is ControlKind.BRANCH:
            target = self._resolved_target(instr)
            stall = 0
            if instr.opcode is Opcode.BRCF:
                record = self.image.function_containing(target)
                stall = self._method_cache_stall(record)
                self.stalls.method_cache += stall
            self._take_control(target, delay, is_call=False)
            return stall

        if info.control is ControlKind.CALL:
            if instr.opcode is Opcode.CALLR:
                target = self._read_gpr(instr.rs1)
            else:
                target = self._resolved_target(instr)
            record = self.image.function_at(target)
            stall = self._method_cache_stall(record)
            self.stalls.method_cache += stall
            self.call_counts[record.name] = self.call_counts.get(record.name, 0) + 1
            self.state.write_special(SpecialReg.SRB, self._current_func.entry_addr)
            self._take_control(target, delay, is_call=True, call_name=record.name)
            return stall

        # Return
        base = self._read_special(SpecialReg.SRB)
        offset = self._read_special(SpecialReg.SRO)
        record = self.image.function_containing(base)
        stall = self._method_cache_stall(record)
        self.stalls.method_cache += stall
        self._take_control(to_unsigned(base + offset), delay, is_call=False)
        return stall

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self) -> SimResult:
        return SimResult(
            cycles=self.cycles,
            bundles=self.issued,
            instructions=self.instructions,
            nops=self.nops,
            output=list(self.state.output),
            stalls=self.stalls,
            block_counts=dict(self.block_counts),
            call_counts=dict(self.call_counts),
            cache_stats=self._cache_stats(),
            trace=self.trace if self.trace_enabled else None,
            halted=self.state.halted,
            issue_width=2 if self.config.pipeline.dual_issue else 1,
        )

    def _cache_stats(self) -> dict[str, dict]:
        return {"stack_cache": vars(self.stack_cache.stats).copy()}
