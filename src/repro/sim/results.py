"""Simulation results and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class StallBreakdown:
    """Where stall cycles were spent."""

    method_cache: int = 0
    icache: int = 0
    data_cache: int = 0
    stack_cache: int = 0
    split_load_wait: int = 0
    store_buffer: int = 0
    arbitration: int = 0

    def total(self) -> int:
        return (self.method_cache + self.icache + self.data_cache +
                self.stack_cache + self.split_load_wait + self.store_buffer +
                self.arbitration)

    def to_dict(self) -> dict[str, int]:
        """Plain dict of the per-category stall cycles (JSON-serializable)."""
        return {
            "method_cache": self.method_cache,
            "icache": self.icache,
            "data_cache": self.data_cache,
            "stack_cache": self.stack_cache,
            "split_load_wait": self.split_load_wait,
            "store_buffer": self.store_buffer,
            "arbitration": self.arbitration,
        }


@dataclass(slots=True)
class TraceEntry:
    """One issued bundle in an execution trace.

    Allocated once per issued bundle when tracing is enabled, so it is kept
    slotted to keep long traces cheap.
    """

    cycle: int
    addr: int
    text: str


@dataclass
class SimResult:
    """Result of simulating one program on one core."""

    cycles: int
    bundles: int
    instructions: int
    nops: int
    output: list[int] = field(default_factory=list)
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    #: Execution count of every basic block, keyed by ``(function, label)``.
    block_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Call counts per callee function name.
    call_counts: dict[str, int] = field(default_factory=dict)
    cache_stats: dict[str, dict] = field(default_factory=dict)
    trace: Optional[list[TraceEntry]] = None
    halted: bool = True
    #: Issue slots offered per bundle cycle (2 for dual-issue, 1 otherwise).
    issue_width: int = 2
    #: Cycles the core spent with no work to run (task scheduler idle gaps,
    #: or the tail a halted-early core sits out while the rest of a co-sim
    #: finishes).  Distinct from stall cycles: a stalled core is *executing*
    #: a program that is waiting on memory; an idle core has nothing to run.
    idle_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (including NOPs, which occupy issue slots)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def useful_ipc(self) -> float:
        """Instructions per cycle excluding NOPs."""
        if self.cycles == 0:
            return 0.0
        return (self.instructions - self.nops) / self.cycles

    @property
    def slot_utilisation(self) -> float:
        """Fraction of issue slots filled with useful (non-NOP) instructions.

        The machine offers ``issue_width`` slots per issued bundle cycle
        (two when dual-issue is configured, one otherwise); the utilisation
        measures how well the compiler fills them.  A single-issue run can
        therefore reach 1.0 instead of being capped at 0.5 by construction.
        """
        if self.bundles == 0:
            return 0.0
        return (self.instructions - self.nops) / (self.issue_width * self.bundles)

    def metrics(self) -> dict:
        """Flat, JSON-serializable metrics of this run.

        Used by batch tooling (``repro.explore``) to persist results without
        dragging the trace or the raw per-block counters along.
        """
        controller = self.cache_stats.get("memory_controller", {})
        return {
            "cycles": self.cycles,
            "bundles": self.bundles,
            "instructions": self.instructions,
            "nops": self.nops,
            "stall_cycles": self.stalls.total(),
            "stalls": self.stalls.to_dict(),
            "issue_width": self.issue_width,
            "slot_utilisation": round(self.slot_utilisation, 6),
            "cache_stats": self.cache_stats,
            # Interference figures of merit, surfaced flat so batch tooling
            # (explore/Pareto) can rank design points by memory contention:
            # arbitration waits are charged both by the simulator (cache
            # fills) and inside the controller (split loads, stores).
            "arbitration_cycles": (self.stalls.arbitration
                                   + controller.get("arbitration_cycles", 0)),
            "words_transferred": controller.get("words_transferred", 0),
            "write_stall_cycles": controller.get("write_stall_cycles", 0),
            "idle_cycles": self.idle_cycles,
            "halted": self.halted,
        }

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"cycles           : {self.cycles}",
            f"bundles issued   : {self.bundles}",
            f"instructions     : {self.instructions} ({self.nops} nops)",
            f"IPC (useful)     : {self.useful_ipc:.3f}",
            f"stall cycles     : {self.stalls.total()}",
            f"  method cache   : {self.stalls.method_cache}",
            f"  i-cache        : {self.stalls.icache}",
            f"  data caches    : {self.stalls.data_cache}",
            f"  stack cache    : {self.stalls.stack_cache}",
            f"  split-load wait: {self.stalls.split_load_wait}",
            f"  store buffer   : {self.stalls.store_buffer}",
        ]
        if self.idle_cycles:
            lines.append(f"idle cycles      : {self.idle_cycles}")
        return "\n".join(lines)
