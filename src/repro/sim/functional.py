"""Functional (instruction-accurate) Patmos simulator.

The functional simulator executes the full architectural semantics — including
the exposed delay slots, which are part of the ISA — but charges no stall
cycles for the memory hierarchy: every reported "cycle" corresponds to one
issued bundle.  It plays the role of the SystemC simulation model mentioned in
Section 5 of the paper and is used for validating program semantics and as the
"ideal memory" baseline in several experiments.
"""

from __future__ import annotations

from .base import BaseSimulator


class FunctionalSimulator(BaseSimulator):
    """Architectural simulator without memory-hierarchy timing."""

    # All timing hooks of :class:`BaseSimulator` already return zero stalls;
    # the functional simulator is the base engine used as-is.
