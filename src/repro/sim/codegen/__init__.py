"""Per-program Python code generation — the *jit* execution engine.

Module map
----------

``generator``
    Lowers one :class:`~repro.sim.engine.DecodedProgram` into a specialised
    Python module: superblock discovery (:func:`compute_leaders`), the
    eager-commit analysis, and straight-line source emission
    (:func:`generate_source`).  :func:`cache_key` addresses one generated
    specialisation (image content + pipeline + strict/trace + hook/sync
    signature + :data:`CODEGEN_VERSION`).
``context``
    :class:`JitContext` — an :class:`~repro.sim.engine.EngineContext` whose
    :meth:`~JitContext.advance` dispatches generated superblocks, bridging
    through the micro-op interpreter at non-leader entry points; and
    :func:`run_jit`, the single-shot driver behind ``engine="jit"``.
``cache``
    The on-disk source cache (``~/.cache/repro/jit`` or
    ``REPRO_JIT_CACHE_DIR``): locked atomic writes, quarantine of corrupt
    entries — the durability idiom of :mod:`repro.explore.cache`.
``runtime``
    Out-of-line helpers the generated code calls (due-issue ring drain).
``__main__``
    ``python -m repro.sim.codegen --dump <kernel>`` prints the generated
    source of a workload kernel for inspection.

Set ``REPRO_NO_JIT=1`` to make :class:`JitContext` fall back to the
inherited micro-op interpreter (results are identical either way; the
golden equivalence suite pins this).
"""

from .context import JitContext, run_jit
from .generator import (
    CODEGEN_VERSION,
    cache_key,
    compute_leaders,
    generate_source,
)
from .cache import cache_dir

__all__ = [
    "CODEGEN_VERSION",
    "JitContext",
    "cache_dir",
    "cache_key",
    "compute_leaders",
    "generate_source",
    "run_jit",
]
