"""On-disk cache of generated superblock modules.

Mirrors the durability idiom of :mod:`repro.explore.cache` (the sweep result
cache): atomic writes via ``tempfile.mkstemp`` + ``os.replace`` under an
``fcntl`` file lock, and corrupt entries *quarantined* — moved aside with a
warning so the offending bytes stay available for diagnosis — rather than
ever crashing a run.  Unlike the result cache the stored artefact is Python
source, so validation happens in :mod:`repro.sim.codegen.context` (compile,
exec, check the embedded ``GENERATED_KEY``); this module only moves bytes.

The cache key (:func:`repro.sim.codegen.generator.cache_key`) covers the
image content hash, the pipeline/strict/trace decode variant, the timing-hook
signature, the sync-flag signature and ``CODEGEN_VERSION``, so a version bump
simply makes old entries unreachable — no invalidation pass is needed.

Every operation degrades gracefully: a read-only or missing cache directory
disables persistence (each process regenerates in memory) but never fails a
simulation.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from contextlib import contextmanager
from pathlib import Path

try:  # POSIX only; the cache degrades to last-writer-wins without locking.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None


def cache_dir() -> Path:
    """Directory holding generated modules (``REPRO_JIT_CACHE_DIR`` wins)."""
    override = os.environ.get("REPRO_JIT_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "jit"


def _entry_path(full_key: str) -> Path:
    return cache_dir() / f"{full_key}.py"


@contextmanager
def _write_lock(directory: Path):
    """Serialise concurrent writers (same idiom as the explore cache)."""
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        yield
        return
    lock_path = directory / ".lock"
    with open(lock_path, "w") as lock_file:
        fcntl.flock(lock_file, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_file, fcntl.LOCK_UN)


def load_source(full_key: str):
    """The cached source for ``full_key``, or ``None`` on any miss/failure."""
    try:
        return _entry_path(full_key).read_text(encoding="utf-8")
    except OSError:
        return None


def store_source(full_key: str, source: str) -> None:
    """Atomically persist ``source``; persistence failures are non-fatal."""
    path = _entry_path(full_key)
    directory = path.parent
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with _write_lock(directory):
            fd, tmp_name = tempfile.mkstemp(dir=directory,
                                            prefix=path.name + ".")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(source)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
    except OSError as exc:
        warnings.warn(f"repro.sim.codegen: could not persist generated "
                      f"module {path.name}: {exc}", RuntimeWarning,
                      stacklevel=3)


def quarantine(full_key: str) -> None:
    """Move a corrupt entry aside (never delete evidence, never raise)."""
    path = _entry_path(full_key)
    quarantine_dir = path.parent / "quarantine"
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine_dir / f"{path.name}.{suffix}"
        os.replace(path, target)
        warnings.warn(f"repro.sim.codegen: quarantined corrupt generated "
                      f"module to {target}", RuntimeWarning, stacklevel=3)
    except OSError as exc:
        warnings.warn(f"repro.sim.codegen: could not quarantine corrupt "
                      f"generated module {path.name}: {exc}", RuntimeWarning,
                      stacklevel=3)
