"""Superblock source generator: one `DecodedProgram` -> straight-line Python.

The micro-op engine (:mod:`repro.sim.engine`) still dispatches one micro-op
tuple at a time through pre-bound closures.  This module removes the last
layer of interpretation: it partitions the decoded table into *superblocks*
(maximal fall-through chains between control-flow join points) and emits one
specialised Python function per program in which

* every bundle is straight-line code — operand indices, immediates, branch
  targets, delay-slot counts, block/call keys and the strict/trace variant
  are all literals;
* ALU/compare/predicate evaluation is inlined as expressions (no function
  call per micro-op);
* writes whose commit no later micro-op in the same bundle can observe are
  applied *eagerly* to the register file, bypassing the due-issue ring (the
  dominant cost of the micro-op engine); every other write keeps the exact
  ring protocol, so resumption, export and strict checking are unchanged;
* the event-scheduler protocol of :class:`~repro.sim.engine.EngineContext`
  is preserved bundle-for-bundle: the per-bundle ``until_cycle`` /
  ``event_source`` checks, and pause-before-arbitration ``"sync"`` stops at
  exactly the bundles :func:`~repro.sim.engine._uop_may_arbitrate` flags.

Superblock *leaders* (entry points of generated blocks) are every static
branch/call target, call return point, function entry and sync-flagged
bundle, so control transfers and scheduler pauses always land on a block
head.  Execution that reaches an index with no generated block (computed
branches into code the analysis did not anticipate, dead addresses) returns
the pseudo-status ``"__bridge__"`` and the caller
(:class:`~repro.sim.codegen.context.JitContext`) falls back to the micro-op
interpreter until the next leader — never wrong, at worst slower.

Eager-commit soundness
----------------------
A delay-0 write (due at ``issued + 1``) may commit immediately iff

* no later micro-op in the same bundle reads the target (including guard
  predicates and, in strict mode, the staleness-check micro-ops — a check
  must still see the pending-write counter and raise);
* no earlier delay-0 write to the same target already went to the ring in
  this bundle (ring order would make the later write win);
* for registers: the bundle contains no ``wmem`` (which commits a split
  load's register at the same due slot) and the register is never the
  target of a *delayed* load anywhere in the program (a delayed write due
  at the same slot would lose to the eager write; the reference commits in
  ring-append order, where the later-issued write wins).

Everything the golden equivalence suite observes — cycles, outputs, traces,
memory images, strict violations, arbiter interleavings — is bit-identical
to the reference interpreter by construction.
"""

from __future__ import annotations

import hashlib

from ..engine import (
    K_ALU_RI,
    K_ALU_RR,
    K_BRANCH,
    K_BRCF,
    K_CALL,
    K_CALLR,
    K_CHECK,
    K_CHECK1,
    K_CHECK2,
    K_CMP_RI,
    K_CMP_RR,
    K_HALT,
    K_LI,
    K_LIH,
    K_LOAD,
    K_LOAD_L,
    K_LOAD_LW,
    K_LOAD_M,
    K_LOAD_W,
    K_MFS,
    K_MTS,
    K_MUL,
    K_OUT,
    K_PRED,
    K_RET,
    K_STACK,
    K_STORE,
    K_STORE_L,
    K_STORE_LW,
    K_STORE_M,
    K_STORE_W,
    K_UNRESOLVED,
    K_WMEM,
    R_ADDR,
    R_BLOCK,
    R_FALL_ADDR,
    R_FALL_IDX,
    R_FUNC,
    R_NINSTR,
    R_NNOPS,
    R_TRACE,
    R_UOPS,
    _ADD,
    _ALU_FN,
    _AND,
    _CMP_EQ,
    _CMP_FN,
    _CMP_LE,
    _CMP_LT,
    _CMP_NEQ,
    _CMP_ULE,
    _CMP_ULT,
    _NOR,
    _OR,
    _PRED_FN,
    _s32,
    _SHL,
    _SHR,
    _sra,
    _SUB,
    _XOR,
    _mul_signed,
    _mul_unsigned,
)
from ...isa.opcodes import Opcode

#: Bump whenever the shape of the generated source changes; part of the
#: on-disk cache key, so stale entries are simply never looked up again.
CODEGEN_VERSION = 1

#: Longest fall-through chain compiled into one superblock; longer chains
#: are split (the cut point becomes a leader), bounding generated function
#: size without limiting which programs can be compiled.
MAX_SUPERBLOCK = 256

_MASK = 4294967295  # 0xFFFF_FFFF, spelled as the literal the source uses

_SHADD = _ALU_FN[Opcode.SHADD]
_SHADD2 = _ALU_FN[Opcode.SHADD2]
_BTEST = _CMP_FN[Opcode.BTEST]
_PAND = _PRED_FN[Opcode.PAND]
_POR = _PRED_FN[Opcode.POR]
_PXOR = _PRED_FN[Opcode.PXOR]
_PNOT = _PRED_FN[Opcode.PNOT]

_CTRL_RAISE = ('raise SimulationError("control-transfer issued inside '
               'the delay slots of another control transfer")')
_STACK_LOAD_RAISE = (
    'raise StackCacheError(f"stack access at {_a:#x} outside the cached '
    'window [{stack_cache.st:#x}, {stack_cache.ss:#x})")')
_STACK_STORE_RAISE = (
    'raise StackCacheError(f"stack store at {_a:#x} outside the cached '
    'window [{stack_cache.st:#x}, {stack_cache.ss:#x})")')
_MAXB_RAISE = ('raise SimulationError(f"program did not halt within '
               '{max_bundles} bundles")')
_SPLIT_RAISE = ('raise SimulationError("split load issued while another '
                'main-memory load is pending")')

_SR_NAMES = ("ST", "SS", "SL", "SH", "SRB", "SRO")


def cache_key(program, hook_sig, sync_key) -> str:
    """On-disk cache key of one generated module.

    Covers the decode identity (image content, pipeline, strict/trace), the
    timing-hook presence signature (absent hooks are compiled out), the
    sync-flag signature (pause points are compiled in) and the generator
    version.
    """
    hooks = "".join("1" if h else "0" for h in hook_sig)
    payload = (f"{program.codegen_key}|hooks={hooks}|sync={sync_key!r}"
               f"|v{CODEGEN_VERSION}")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Superblock discovery
# ---------------------------------------------------------------------------

def compute_leaders(program, sync_flags) -> set:
    """Indices where generated execution may (re-)enter a superblock."""
    table = program.table
    tlen = len(table)
    leaders: set = set()
    for idx, rec in enumerate(table):
        if rec is None:
            continue
        func = rec[R_FUNC]
        if func is not None and rec[R_ADDR] == func.entry_addr:
            leaders.add(idx)  # covers entry points, callr and ret targets
        for u in rec[R_UOPS]:
            k = u[0]
            if k in (K_BRANCH, K_BRCF, K_CALL):
                if 0 <= u[3] < tlen:
                    leaders.add(u[3])
            if k == K_CALL or k == K_CALLR:
                # The return target: the call fires after `delay` further
                # fall-through bundles; the firing bundle's fall-through
                # successor is where the matching ret resumes.
                delay = u[5] if k == K_CALL else u[4]
                j = idx
                ok = True
                for _ in range(delay):
                    r = table[j] if 0 <= j < tlen else None
                    if r is None:
                        ok = False
                        break
                    j = r[R_FALL_IDX]
                if ok:
                    r = table[j] if 0 <= j < tlen else None
                    if r is not None:
                        leaders.add(r[R_FALL_IDX])
    if sync_flags:
        for idx, flagged in enumerate(sync_flags):
            if flagged:
                leaders.add(idx)
    return {idx for idx in leaders
            if 0 <= idx < tlen and table[idx] is not None}


def _superblocks(table, leaders: set) -> dict:
    """Leader -> fall-through chain of bundle indices (splits long chains)."""
    tlen = len(table)
    blocks: dict = {}
    pending = sorted(leaders)
    pos = 0
    while pos < len(pending):
        head = pending[pos]
        pos += 1
        if head in blocks:
            continue
        chain = [head]
        j = head
        while True:
            nxt = table[j][R_FALL_IDX]
            if (not 0 <= nxt < tlen or table[nxt] is None
                    or nxt in leaders):
                break
            if len(chain) >= MAX_SUPERBLOCK:
                leaders.add(nxt)
                pending.append(nxt)
                break
            chain.append(nxt)
            j = nxt
        blocks[head] = chain
    return blocks


# ---------------------------------------------------------------------------
# Eager-commit analysis
# ---------------------------------------------------------------------------

def _uop_reads(u) -> tuple:
    """(gpr indices, pred indices) this micro-op reads, incl. its guard.

    Strict check micro-ops count as readers of everything they check: an
    eager commit must never hide a pending-write counter from them.
    """
    k = u[0]
    gprs: set = set()
    preds: set = set()
    if u[1] >= 0:
        preds.add(u[1])
    if k in (K_ALU_RR, K_CMP_RR, K_MUL):
        gprs.add(u[4])
        gprs.add(u[5])
    elif k in (K_ALU_RI, K_CMP_RI, K_LIH):
        gprs.add(u[4])
    elif k == K_PRED:
        preds.add(u[4])
        if u[5] >= 0:
            preds.add(u[5])
    elif k in (K_LOAD_W, K_LOAD, K_LOAD_LW, K_LOAD_L, K_LOAD_M):
        gprs.add(u[3])
    elif k in (K_STORE_W, K_STORE, K_STORE_LW, K_STORE_L, K_STORE_M):
        gprs.add(u[3])
        gprs.add(u[5])
    elif k in (K_CALLR, K_OUT):
        gprs.add(u[3])
    elif k == K_MTS:
        gprs.add(u[4])
    elif k == K_CHECK1:
        if u[3] >= 0:
            preds.add(u[3])
        gprs.add(u[5])
    elif k == K_CHECK2:
        if u[3] >= 0:
            preds.add(u[3])
        gprs.add(u[5])
        gprs.add(u[6])
    elif k == K_CHECK:
        if u[3] >= 0:
            preds.add(u[3])
        gprs.update(u[5])
        preds.update(u[6])
    return gprs, preds


def _delay0_write(u):
    """('g'|'p', index) of this micro-op's due-``issued+1`` write, or None."""
    k = u[0]
    if k in (K_ALU_RR, K_ALU_RI):
        return ("g", u[6])
    if k in (K_LI, K_LIH, K_MFS):
        return ("g", u[4])
    if k in (K_CMP_RR, K_CMP_RI, K_PRED):
        return ("p", u[6])
    if k in (K_LOAD_W, K_LOAD, K_LOAD_LW, K_LOAD_L) and u[6] == 0 and u[5]:
        return ("g", u[5])
    return None


def _delayed_gprs(table) -> set:
    """Registers written by any *delayed* load anywhere in the program.

    An eager delay-0 commit to such a register could race a delayed write
    due at the same slot (the reference resolves the race in ring-append
    order, where the later-issued instruction wins), so these registers
    always take the ring.
    """
    regs: set = set()
    for rec in table:
        if rec is None:
            continue
        for u in rec[R_UOPS]:
            if (u[0] in (K_LOAD_W, K_LOAD, K_LOAD_LW, K_LOAD_L)
                    and u[6] > 0 and u[5]):
                regs.add(u[5])
    return regs


def _ctrl_cd(u):
    """Fire countdown a control-transfer micro-op arms, or ``None``."""
    k = u[0]
    if k in (K_BRANCH, K_BRCF, K_CALL):
        return u[5] + 1
    if k == K_CALLR:
        return u[4] + 1
    if k == K_RET:
        return u[3] + 1
    return None


def _max_ctrl_cd(table) -> int:
    """Largest countdown any control transfer in the program can arm."""
    mx = 0
    for rec in table:
        if rec is None:
            continue
        for u in rec[R_UOPS]:
            cd = _ctrl_cd(u)
            if cd is not None and cd > mx:
                mx = cd
    return mx


def _eager_flags(uops, delayed_gprs: set) -> list:
    """Per-micro-op: may its delay-0 write commit eagerly?"""
    n = len(uops)
    suffix_g: list = [set() for _ in range(n + 1)]
    suffix_p: list = [set() for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        rg, rp = _uop_reads(uops[i])
        suffix_g[i] = suffix_g[i + 1] | rg
        suffix_p[i] = suffix_p[i + 1] | rp
    has_wmem = any(u[0] == K_WMEM for u in uops)
    flags = [False] * n
    ring_g: set = set()
    ring_p: set = set()
    for i, u in enumerate(uops):
        write = _delay0_write(u)
        if write is None:
            continue
        kind, target = write
        if kind == "g":
            ok = (not has_wmem and target not in delayed_gprs
                  and target not in suffix_g[i + 1]
                  and target not in ring_g)
        else:
            ok = target not in suffix_p[i + 1] and target not in ring_p
        flags[i] = ok
        if not ok:
            (ring_g if kind == "g" else ring_p).add(target)
    return flags


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------

def _alu_expr(fn, a, b, b_const):
    if fn is _ADD:
        return f"({a} + {b}) & {_MASK}"
    if fn is _SUB:
        return f"({a} - {b}) & {_MASK}"
    if fn is _AND:
        return f"{a} & {b}"
    if fn is _OR:
        return f"{a} | {b}"
    if fn is _XOR:
        return f"{a} ^ {b}"
    if fn is _NOR:
        return f"~({a} | {b}) & {_MASK}"
    if fn is _SHL:
        shift = str(b_const & 31) if b_const is not None else f"({b} & 31)"
        return f"({a} << {shift}) & {_MASK}"
    if fn is _SHR:
        shift = str(b_const & 31) if b_const is not None else f"({b} & 31)"
        return f"{a} >> {shift}"
    if fn is _sra:
        return f"_sra({a}, {b})"
    if fn is _SHADD:
        return f"(({a} << 1) + {b}) & {_MASK}"
    if fn is _SHADD2:
        return f"(({a} << 2) + {b}) & {_MASK}"
    return None


def _cmp_expr(fn, a, b, b_const):
    if fn is _CMP_EQ:
        return f"{a} == {b}"
    if fn is _CMP_NEQ:
        return f"{a} != {b}"
    if fn is _CMP_LT:
        rhs = str(_s32(b_const)) if b_const is not None else f"_s32({b})"
        return f"_s32({a}) < {rhs}"
    if fn is _CMP_LE:
        rhs = str(_s32(b_const)) if b_const is not None else f"_s32({b})"
        return f"_s32({a}) <= {rhs}"
    if fn is _CMP_ULT:
        return f"{a} < {b}"
    if fn is _CMP_ULE:
        return f"{a} <= {b}"
    if fn is _BTEST:
        shift = str(b_const & 31) if b_const is not None else f"({b} & 31)"
        return f"bool(({a} >> {shift}) & 1)"
    return None


def _pred_expr(fn, a, b):
    if fn is _PAND:
        return f"({a} and {b})"
    if fn is _POR:
        return f"({a} or {b})"
    if fn is _PXOR:
        return f"({a} != {b})"
    if fn is _PNOT:
        return f"(not {a})"
    return None


# ---------------------------------------------------------------------------
# Emitter
# ---------------------------------------------------------------------------

class _Emitter:
    """Builds the generated module for one (program, hooks, sync) variant."""

    def __init__(self, program, hook_sig, sync_flags, leaders):
        self.program = program
        self.table = program.table
        self.tlen = len(program.table)
        self.base = program.base
        self.rm = program.ring_size - 1
        self.strict = program.strict
        self.trace = program.trace
        (self.has_fetch, self.has_mc, self.has_read, self.has_write,
         self.has_stack, self.has_store, self.has_split) = hook_sig
        #: With every timing hook absent no bundle can ever stall (a pending
        #: split load's ready cycle is never in the future without a split
        #: hook), so ``cycles - issued`` is invariant across the whole run
        #: and the generated code drops per-bundle cycle bookkeeping
        #: entirely, deriving the clock as ``issued + _cdelta``.
        self.no_timing = not any(hook_sig)
        #: How the current cycle is spelled in generated code: a live local
        #: in timing mode, derived from ``issued`` when no hook exists.
        self.cycles_expr = "(issued + _cdelta)" if self.no_timing else "cycles"
        self.sync_flags = sync_flags
        self.leaders = leaders
        self.delayed_gprs = _delayed_gprs(self.table)
        self.max_cd = _max_ctrl_cd(self.table)
        self.block_locals: dict = {}  # block key -> accumulator local name
        self.fw_counter = 0  # forwarded-load local name allocator
        self.consts: dict = {}   # name -> make()-level binding expression
        self.lines: list = []

    # -- small helpers -----------------------------------------------------

    def emit(self, ind, text):
        self.lines.append(ind + text)

    def const(self, name, expr):
        self.consts[name] = expr
        return name

    def mem_type_const(self, mem_type):
        return self.const(f"_mt{mem_type.name}", f"MemType.{mem_type.name}")

    def record_const(self, idx, pos):
        return self.const(f"_f{idx}_{pos}", f"table[{idx}][0][{pos}][6]")

    def fn_const(self, idx, pos):
        return self.const(f"_fn{idx}_{pos}", f"table[{idx}][0][{pos}][3]")

    def ring_slot(self, due_offset):
        return f"ring[(issued + {due_offset}) & {self.rm}]"

    # -- write paths -------------------------------------------------------

    def write_gpr(self, ind, rd, expr, eager, due_offset=1):
        if eager:
            self.emit(ind, f"regs[{rd}] = {expr}")
            return
        self.emit(ind, f"{self.ring_slot(due_offset)}.append((0, {rd}, "
                       f"{expr}))")
        if self.strict:
            self.emit(ind, f"pg[{rd}] += 1")

    def write_pred(self, ind, pd, expr, eager):
        if eager:
            self.emit(ind, f"preds[{pd}] = {expr}")
            return
        self.emit(ind, f"{self.ring_slot(1)}.append((1, {pd}, {expr}))")
        if self.strict:
            self.emit(ind, f"pp[{pd}] += 1")

    def data_stall(self, ind, hook, mem_type, counter):
        self.emit(ind, f"st_ = {hook}({self.mem_type_const(mem_type)}, _a)")
        self.emit(ind, "if st_:")
        self.emit(ind, f"    {counter} += st_")
        self.emit(ind, "    stall += st_")

    def cached_addr(self, ind, rs1, imm, srel, schk, width, store):
        if srel:
            self.emit(ind, f"_a = (regs[{rs1}] + {imm} + specials[ST]) "
                           f"& {_MASK}")
        else:
            self.emit(ind, f"_a = (regs[{rs1}] + {imm}) & {_MASK}")
        if schk:
            self.emit(ind, f"if not contains(_a, {width}):")
            self.emit(ind, "    " + (_STACK_STORE_RAISE if store
                                     else _STACK_LOAD_RAISE))

    def ctrl_guard(self, ind):
        self.emit(ind, "if ctrl_cd:")
        self.emit(ind, "    " + _CTRL_RAISE)

    def set_ctrl(self, ind, tidx, target, countdown, is_call, name_expr):
        self.emit(ind, f"ctrl_tidx = {tidx}")
        self.emit(ind, f"ctrl_target = {target}")
        self.emit(ind, f"ctrl_cd = {countdown}")
        self.emit(ind, f"ctrl_is_call = {is_call}")
        self.emit(ind, f"ctrl_name = {name_expr}")

    def mc_stall(self, ind, record_expr):
        if not self.has_mc:
            return
        self.emit(ind, f"st_ = mc_hook({record_expr})")
        self.emit(ind, "if st_:")
        self.emit(ind, "    s_method += st_")
        self.emit(ind, "    stall += st_")

    # -- per-micro-op lowering ---------------------------------------------

    def emit_uop(self, ind, idx, pos, u, eager, fw_local=None):
        k = u[0]
        g = u[1]
        if g >= 0:
            cond = f"not preds[{g}]" if u[2] else f"preds[{g}]"
            self.emit(ind, f"if {cond}:")
            ind += "    "

        if k == K_ALU_RR:
            expr = _alu_expr(u[3], f"regs[{u[4]}]", f"regs[{u[5]}]", None)
            if expr is None:
                expr = (f"{self.fn_const(idx, pos)}(regs[{u[4]}], "
                        f"regs[{u[5]}])")
            self.write_gpr(ind, u[6], expr, eager)
        elif k == K_ALU_RI:
            expr = _alu_expr(u[3], f"regs[{u[4]}]", str(u[5]), u[5])
            if expr is None:
                expr = f"{self.fn_const(idx, pos)}(regs[{u[4]}], {u[5]})"
            self.write_gpr(ind, u[6], expr, eager)
        elif k == K_LI:
            self.write_gpr(ind, u[4], str(u[3]), eager)
        elif k == K_LIH:
            self.write_gpr(ind, u[4], f"(regs[{u[4]}] & 65535) | {u[3]}",
                           eager)
        elif k == K_CMP_RR:
            expr = _cmp_expr(u[3], f"regs[{u[4]}]", f"regs[{u[5]}]", None)
            if expr is None:
                expr = (f"{self.fn_const(idx, pos)}(regs[{u[4]}], "
                        f"regs[{u[5]}])")
            self.write_pred(ind, u[6], expr, eager)
        elif k == K_CMP_RI:
            expr = _cmp_expr(u[3], f"regs[{u[4]}]", str(u[5]), u[5])
            if expr is None:
                expr = f"{self.fn_const(idx, pos)}(regs[{u[4]}], {u[5]})"
            self.write_pred(ind, u[6], expr, eager)
        elif k == K_PRED:
            b = f"preds[{u[5]}]" if u[5] >= 0 else "False"
            expr = _pred_expr(u[3], f"preds[{u[4]}]", b)
            if expr is None:
                expr = f"{self.fn_const(idx, pos)}(preds[{u[4]}], {b})"
            self.write_pred(ind, u[6], expr, eager)
        elif k == K_MUL:
            if u[3] is _mul_signed:
                self.emit(ind, f"_p = (_s32(regs[{u[4]}]) * "
                               f"_s32(regs[{u[5]}])) & 18446744073709551615")
            elif u[3] is _mul_unsigned:
                self.emit(ind, f"_p = (regs[{u[4]}] * regs[{u[5]}]) "
                               f"& 18446744073709551615")
            else:
                self.emit(ind, f"_lo, _hi = {self.fn_const(idx, pos)}"
                               f"(regs[{u[4]}], regs[{u[5]}])")
            self.emit(ind, f"_ms = {self.ring_slot(1 + u[6])}")
            if u[3] is _mul_signed or u[3] is _mul_unsigned:
                self.emit(ind, f"_ms.append((2, SL, _p & {_MASK}))")
                self.emit(ind, "_ms.append((2, SH, _p >> 32))")
            else:
                self.emit(ind, "_ms.append((2, SL, _lo))")
                self.emit(ind, "_ms.append((2, SH, _hi))")
            if self.strict:
                self.emit(ind, "ps[SL] = ps.get(SL, 0) + 1")
                self.emit(ind, "ps[SH] = ps.get(SH, 0) + 1")
        elif k == K_LOAD_W or k == K_LOAD:
            width = 4 if k == K_LOAD_W else u[10]
            self.cached_addr(ind, u[3], u[4], u[9], u[8], width, False)
            value = ("mem_read_u32(_a)" if k == K_LOAD_W
                     else f"mem_read(_a, {u[10]}, {u[11]}) & {_MASK}")
            if fw_local is not None:
                self.emit(ind, f"{fw_local} = {value}")
            elif u[5]:
                self.write_gpr(ind, u[5], value, eager and u[6] == 0,
                               1 + u[6])
            if self.has_read:
                self.data_stall(ind, "read_hook", u[7], "s_data")
        elif k == K_LOAD_LW or k == K_LOAD_L:
            self.emit(ind, f"_a = (regs[{u[3]}] + {u[4]}) & {_MASK}")
            value = ("spad_read_u32(_a)" if k == K_LOAD_LW
                     else f"spad_read(_a, {u[8]}, {u[9]}) & {_MASK}")
            if fw_local is not None:
                self.emit(ind, f"{fw_local} = {value}")
            elif u[5]:
                self.write_gpr(ind, u[5], value, eager and u[6] == 0,
                               1 + u[6])
            if self.has_read:
                self.data_stall(ind, "read_hook", u[7], "s_data")
        elif k == K_LOAD_M:
            self.emit(ind, "if has_pml:")
            self.emit(ind, "    " + _SPLIT_RAISE)
            self.emit(ind, f"_a = (regs[{u[3]}] + {u[4]}) & {_MASK}")
            if u[6] == 4:
                self.emit(ind, "pml_val = mem_read_u32(_a)")
            else:
                self.emit(ind, f"pml_val = mem_read(_a, {u[6]}, {u[7]}) "
                               f"& {_MASK}")
            self.emit(ind, f"pml_rd = {u[5]}")
            if self.has_split:
                self.emit(ind, "pml_ready = cycles + split_hook()")
            else:
                self.emit(ind, f"pml_ready = {self.cycles_expr}")
            self.emit(ind, "has_pml = True")
        elif k == K_STORE_W or k == K_STORE:
            width = 4 if k == K_STORE_W else u[9]
            self.cached_addr(ind, u[3], u[4], u[8], u[7], width, True)
            if k == K_STORE_W:
                self.emit(ind, f"mem_write_u32(_a, regs[{u[5]}])")
            else:
                self.emit(ind, f"mem_write(_a, regs[{u[5]}], {u[9]})")
            if self.has_write:
                self.data_stall(ind, "write_hook", u[6], "s_data")
        elif k == K_STORE_LW or k == K_STORE_L:
            self.emit(ind, f"_a = (regs[{u[3]}] + {u[4]}) & {_MASK}")
            if k == K_STORE_LW:
                self.emit(ind, f"spad_write_u32(_a, regs[{u[5]}])")
            else:
                self.emit(ind, f"spad_write(_a, regs[{u[5]}], {u[7]})")
            if self.has_write:
                self.data_stall(ind, "write_hook", u[6], "s_data")
        elif k == K_STORE_M:
            self.emit(ind, f"_a = (regs[{u[3]}] + {u[4]}) & {_MASK}")
            self.emit(ind, f"_v = regs[{u[5]}]")
            if self.has_store:
                self.emit(ind, f"st_ = store_hook(_a, _v, {u[6]})")
            if u[6] == 4:
                self.emit(ind, "mem_write_u32(_a, _v)")
            else:
                self.emit(ind, f"mem_write(_a, _v, {u[6]})")
            if self.has_store:
                self.emit(ind, "if st_:")
                self.emit(ind, "    s_store += st_")
                self.emit(ind, "    stall += st_")
        elif k == K_WMEM:
            self.emit(ind, "if has_pml:")
            sub = ind + "    "
            self.emit(sub, "has_pml = False")
            if self.has_split:
                self.emit(sub, "st_ = pml_ready - cycles")
                self.emit(sub, "if st_ < 0:")
                self.emit(sub, "    st_ = 0")
            self.emit(sub, "if pml_rd:")
            self.emit(sub, f"    {self.ring_slot(1)}.append((0, pml_rd, "
                           "pml_val))")
            if self.strict:
                self.emit(sub, "    pg[pml_rd] += 1")
            if self.has_split:
                # Without a split hook `pml_ready` never exceeds the current
                # cycle, so the wait always clamps to zero — compiled out.
                self.emit(sub, "s_split += st_")
                self.emit(sub, "stall += st_")
        elif k == K_STACK:
            op = {0: "reserve", 1: "ensure", 2: "free"}[u[4]]
            if self.has_stack:
                opc = self.const(f"_op{u[3].name}", f"Opcode.{u[3].name}")
                self.emit(ind, f"st_ = stack_hook({opc}, {u[5]})")
            self.emit(ind, f"stack_cache.{op}({u[5]})")
            self.emit(ind, f"specials[ST] = stack_cache.st & {_MASK}")
            self.emit(ind, f"specials[SS] = stack_cache.ss & {_MASK}")
            if self.has_stack:
                self.emit(ind, "s_stack += st_")
                self.emit(ind, "stall += st_")
        elif k == K_BRANCH:
            self.ctrl_guard(ind)
            self.set_ctrl(ind, u[3], u[4], u[5] + 1, "False", "None")
        elif k == K_BRCF:
            if u[6] is None:
                self.emit(ind, f"record = func_containing({u[4]})")
                self.mc_stall(ind, "record")
            else:
                self.mc_stall(ind, self.record_const(idx, pos))
            self.ctrl_guard(ind)
            self.set_ctrl(ind, u[3], u[4], u[5] + 1, "False", "None")
        elif k == K_CALL:
            if u[6] is None:
                self.emit(ind, f"record = func_at({u[4]})")
                self.mc_stall(ind, "record")
                self.emit(ind, "_nm = record.name")
                self.emit(ind, "call_counts[_nm] = cc_get(_nm, 0) + 1")
                name_expr = "_nm"
            else:
                self.mc_stall(ind, self.record_const(idx, pos))
                name = repr(u[6].name)
                self.emit(ind, f"call_counts[{name}] = cc_get({name}, 0) + 1")
                name_expr = name
            self.emit(ind, "specials[SRB] = cur_entry")
            self.ctrl_guard(ind)
            self.set_ctrl(ind, u[3], u[4], u[5] + 1, "True", name_expr)
        elif k == K_CALLR:
            self.emit(ind, f"_tgt = regs[{u[3]}]")
            self.emit(ind, "record = func_at(_tgt)")
            self.mc_stall(ind, "record")
            self.emit(ind, "_nm = record.name")
            self.emit(ind, "call_counts[_nm] = cc_get(_nm, 0) + 1")
            self.emit(ind, "specials[SRB] = cur_entry")
            self.ctrl_guard(ind)
            self.set_ctrl(ind, f"(_tgt - {self.base}) >> 2", "_tgt",
                          u[4] + 1, "True", "_nm")
        elif k == K_RET:
            self.emit(ind, "_tgt = specials[SRB]")
            self.emit(ind, "record = func_containing(_tgt)")
            self.mc_stall(ind, "record")
            self.emit(ind, f"_tgt = (_tgt + specials[SRO]) & {_MASK}")
            self.ctrl_guard(ind)
            self.set_ctrl(ind, f"(_tgt - {self.base}) >> 2", "_tgt",
                          u[3] + 1, "False", "None")
        elif k == K_MTS:
            name = u[3].name  # one of the six bound SpecialReg locals
            self.emit(ind, f"_v = regs[{u[4]}]")
            self.emit(ind, f"specials[{name}] = _v")
            if name == "ST":
                self.emit(ind, "stack_cache.st = _v")
                self.emit(ind, "if stack_cache.ss < _v:")
                self.emit(ind, "    stack_cache.ss = _v")
            elif name == "SS":
                self.emit(ind, "stack_cache.ss = _v")
        elif k == K_MFS:
            self.write_gpr(ind, u[4], f"specials[{u[3].name}]", eager)
        elif k == K_HALT:
            self.emit(ind, "state.halted = True")
            self.emit(ind, "halted = True")
        elif k == K_OUT:
            self.emit(ind, f"_v = regs[{u[3]}]")
            self.emit(ind, "output.append(_v - 4294967296 "
                           "if _v & 2147483648 else _v)")
        elif k == K_UNRESOLVED:
            msg = (f"unresolved control-flow target {u[3]!r}; "
                   "simulate a linked image")
            self.emit(ind, f"raise SimulationError({msg!r})")
        elif k == K_CHECK1 or k == K_CHECK2 or k == K_CHECK:
            self.emit_check(ind, u)
        else:  # pragma: no cover - decode emits only the kinds above
            raise ValueError(f"codegen: unknown micro-op kind {k}")

    def emit_check(self, ind, u):
        k = u[0]
        gg = u[3]
        if gg >= 0:
            self.emit(ind, f"if pp[{gg}]:")
            self.emit(ind, f"    _raise_stale(1, {gg}, issued, ring, "
                           f"{self.rm})")
        body: list = []
        if k == K_CHECK1 or k == K_CHECK2:
            indices = [u[5]] if k == K_CHECK1 else [u[5], u[6]]
            for i in indices:
                body.append(f"if pg[{i}]:")
                body.append(f"    _raise_stale(0, {i}, issued, ring, "
                            f"{self.rm})")
        else:
            for i in u[5]:
                body.append(f"if pg[{i}]:")
                body.append(f"    _raise_stale(0, {i}, issued, ring, "
                            f"{self.rm})")
            for i in u[6]:
                body.append(f"if pp[{i}]:")
                body.append(f"    _raise_stale(1, {i}, issued, ring, "
                            f"{self.rm})")
            for r in u[7]:
                body.append(f"if ps.get({r.name}):")
                body.append(f"    _raise_stale(2, {r.name}, issued, "
                            f"ring, {self.rm})")
        if not body:
            return
        if gg >= 0:
            cond = f"not preds[{gg}]" if u[4] else f"preds[{gg}]"
            self.emit(ind, f"if {cond}:")
            ind += "    "
        for line in body:
            self.emit(ind, line)

    # -- per-bundle lowering -----------------------------------------------

    def bundle_can_stall(self, uops) -> bool:
        if self.has_fetch:
            return True
        for u in uops:
            k = u[0]
            if k == K_WMEM and self.has_split:
                return True
            if self.has_read and k in (K_LOAD_W, K_LOAD, K_LOAD_LW,
                                       K_LOAD_L):
                return True
            if self.has_write and k in (K_STORE_W, K_STORE, K_STORE_LW,
                                        K_STORE_L):
                return True
            if self.has_store and k == K_STORE_M:
                return True
            if self.has_stack and k == K_STACK:
                return True
            if self.has_mc and k in (K_BRCF, K_CALL, K_CALLR, K_RET):
                return True
        return False

    def bundle_calls_hook(self, uops) -> bool:
        """Does this bundle invoke any timing hook?

        Hooks read ``sim.cycles`` (that is why the interpreter publishes it
        every bundle); the generated code publishes it only in bundles that
        actually call one.
        """
        if self.has_fetch:
            return True
        for u in uops:
            k = u[0]
            if self.has_split and k == K_LOAD_M:
                return True
            if self.has_read and k in (K_LOAD_W, K_LOAD, K_LOAD_LW,
                                       K_LOAD_L):
                return True
            if self.has_write and k in (K_STORE_W, K_STORE, K_STORE_LW,
                                        K_STORE_L):
                return True
            if self.has_store and k == K_STORE_M:
                return True
            if self.has_stack and k == K_STACK:
                return True
            if self.has_mc and k in (K_BRCF, K_CALL, K_CALLR, K_RET):
                return True
        return False

    def bundle_ring_writes(self, uops, eager, forwarded=()) -> bool:
        """May this bundle append anything to the due-issue ring?

        ``forwarded`` holds the positions of delayed loads that commit via a
        forwarding local instead of the ring (see ``_plan_forwards``); they
        only touch the ring on cold exit paths, which re-enter via code that
        always drains.
        """
        for pos, u in enumerate(uops):
            k = u[0]
            if k == K_WMEM or k == K_MUL:
                return True
            if (k in (K_LOAD_W, K_LOAD, K_LOAD_LW, K_LOAD_L)
                    and u[6] > 0 and u[5] and pos not in forwarded):
                return True
            if _delay0_write(u) is not None and not eager[pos]:
                return True
        return False

    #: Micro-op kinds whose generated code cannot raise: with none of these
    #: in a bundle, ``idx`` is only stored on the (rare) exit paths rather
    #: than unconditionally, keeping post-mortem state exact where raising
    #: *is* possible.
    _SAFE_KINDS = frozenset((K_ALU_RR, K_ALU_RI, K_LI, K_LIH, K_CMP_RR,
                             K_CMP_RI, K_PRED, K_MUL, K_MTS, K_MFS, K_HALT,
                             K_OUT, K_WMEM))

    def bundle_may_raise(self, uops) -> bool:
        return any(u[0] not in self._SAFE_KINDS for u in uops)

    def block_local(self, block_key) -> str:
        name = self.block_locals.get(block_key)
        if name is None:
            name = f"_bc{len(self.block_locals)}"
            self.block_locals[block_key] = name
        return name

    _LOAD_KINDS = (K_LOAD_W, K_LOAD, K_LOAD_LW, K_LOAD_L)

    def _plan_forwards(self, chain) -> dict:
        """Delayed loads whose ring round trip collapses to a plain local.

        A delayed load normally appends ``(0, rd, value)`` to the due-issue
        ring and pays a drain at its landing bundle.  When the landing
        bundle ``p = q + 1 + delay`` lies inside the same chain, the value
        instead lives in a generated local assigned at issue and committed
        with ``regs[rd] = local`` right after bundle ``p``'s drain — the
        exact point the reference drain would have written it.  Cold exit
        paths between issue and landing spill the local back into the ring
        (``_materialize_fw``) so resumed execution stays bit-identical.

        Sound only when (strict mode always takes the ring — it audits
        pending-write counters):

        * the load is unguarded — the commit at ``p`` is unconditional;
        * nothing after the load in its own bundle can raise, so a raise in
          bundle ``q`` always precedes the assignment (bundles ``q+1 ..
          p-1`` *may* raise: the chain's ``except ReproError`` handler
          spills the in-flight value by raise position — see
          ``_emit_chain``);
        * no later-issued ring write can land on the same register at the
          same slot — the reference resolves that race in append order, and
          the commit-after-drain would invert it.  Later writers are a
          split-load commit (dynamic register) issued at ``p - 1``, another
          delayed load of the register landing at ``p``, or a delay-0
          ring write of the register issued at ``p - 1``.

        Returns ``{(q, pos): (rd, p)}``.
        """
        forwards: dict = {}
        if self.strict:
            return forwards
        L = len(chain)
        chain_uops = [self.table[idx][R_UOPS] for idx in chain]
        for q, uops in enumerate(chain_uops):
            for pos, u in enumerate(uops):
                if u[0] not in self._LOAD_KINDS:
                    continue
                if u[1] >= 0 or not u[5] or u[6] < 1:
                    continue
                p = q + 1 + u[6]
                if p >= L:
                    continue
                r = u[5]
                if any(v[0] not in self._SAFE_KINDS
                       for v in uops[pos + 1:]):
                    continue
                ok = True
                for m in range(q, p):
                    for j, v in enumerate(chain_uops[m]):
                        if m == q and j <= pos:
                            continue
                        vk = v[0]
                        if vk == K_WMEM and m == p - 1:
                            ok = False
                        elif (vk in self._LOAD_KINDS and v[5] == r
                                and m + 1 + v[6] == p):
                            ok = False
                        elif (m == p - 1
                                and _delay0_write(v) == ("g", r)):
                            ok = False
                if ok:
                    forwards[(q, pos)] = (r, p)
        return forwards

    def _materialize_fw(self, ind, live, n, post_issue):
        """Spill live forwarded loads back into the due-issue ring.

        Emitted on every exit that leaves the planned straight-line window
        before the landing bundle — a raise, a stepping break, a halt or a
        control-transfer ``continue`` — so the pending value re-enters the
        ring at exactly the reference slot.  ``post_issue`` marks exits
        after the bundle's ``issued += 1``.
        """
        delta = -1 if post_issue else 0
        for name, reg, p in live:
            off = p - n + delta
            slot = (f"ring[issued & {self.rm}]" if off == 0
                    else f"ring[(issued + {off}) & {self.rm}]")
            self.emit(ind, f"{slot}.append((0, {reg}, {name}))")

    def emit_bundle(self, ind, idx, n, is_head, is_last, may_drain=True,
                    static_fire=None, no_fire=False, checked=True,
                    fw_starts=None, fw_commits=(), fw_live_start=(),
                    fw_live_end=(), fw_handled=False):
        rec = self.table[idx]
        uops = rec[R_UOPS]
        flagged = bool(self.sync_flags) and self.sync_flags[idx]
        has_halt = any(u[0] == K_HALT for u in uops)
        can_stall = self.bundle_can_stall(uops)
        eager = _eager_flags(uops, self.delayed_gprs)
        # Dispatch and control fires land on heads with `idx` already
        # correct; mid-chain, `idx` is stored up front only when a micro-op
        # could raise (exact post-mortem state), else only on exit paths.
        need_idx = not is_head and self.bundle_may_raise(uops)

        self.emit(ind, f"# bundle {idx} @ {rec[R_ADDR]:#x}")
        if need_idx:
            self.emit(ind, f"idx = {idx}")
        if checked:
            self.emit(ind, "if issued >= max_bundles:")
            if not need_idx and not is_head:
                self.emit(ind, f"    idx = {idx}")
            if fw_handled:
                # The chain's exception handler spills every forward whose
                # window spans this bundle; only the ones landing *here*
                # (committed after this check, so invisible to it) need an
                # explicit spill before the raise.
                for reg, name in fw_commits:
                    self.emit(ind, f"    ring[issued & {self.rm}]"
                                   f".append((0, {reg}, {name}))")
            else:
                self._materialize_fw(ind + "    ", fw_live_start, n, False)
            self.emit(ind, "    " + _MAXB_RAISE)
            self.emit(ind, "if stepping:")
            sub = ind + "    "
            self.emit(sub, "if until_cycle is not None and "
                           f"{self.cycles_expr} >= until_cycle:")
            if not need_idx and not is_head:
                self.emit(sub, f"    idx = {idx}")
            self._materialize_fw(sub + "    ", fw_live_start, n, False)
            self.emit(sub, "    break")
            self.emit(sub, "if event_source is not None and "
                           "event_source.events != events_before:")
            if not need_idx and not is_head:
                self.emit(sub, f"    idx = {idx}")
            self._materialize_fw(sub + "    ", fw_live_start, n, False)
            self.emit(sub, '    status = "memory_event"')
            self.emit(sub, "    break")
            if is_head:
                if flagged:
                    self.emit(sub, "if syncing:")
                    self.emit(sub, "    if skip_sync:")
                    self.emit(sub, "        skip_sync = False")
                    self.emit(sub, "    else:")
                    self.emit(sub, '        status = "sync"')
                    self.emit(sub, "        break")
                else:
                    self.emit(sub, "if syncing and skip_sync:")
                    self.emit(sub, "    skip_sync = False")
        if may_drain:
            self.emit(ind, f"slot = ring[issued & {self.rm}]")
            self.emit(ind, "if slot:")
            if self.strict:
                self.emit(ind, "    _drain_strict(slot, regs, preds, "
                               "specials, pg, pp, ps)")
            else:
                self.emit(ind, "    _drain(slot, regs, preds, specials)")
        # Forwarded loads land here: the reference drain would have written
        # the register at this exact point (any earlier-appended entry for
        # it just drained and correctly loses).
        for reg, name in fw_commits:
            self.emit(ind, f"regs[{reg}] = {name}")
        if self.bundle_calls_hook(uops):
            self.emit(ind, "sim.cycles = cycles")
        block_key = rec[R_BLOCK]
        if block_key is not None:
            self.emit(ind, f"{self.block_local(block_key)} += 1")
        if self.has_fetch:
            self.emit(ind, f"stall = fetch_hook({rec[R_ADDR]}, _b{idx})")
            self.const(f"_b{idx}", f"table[{idx}][5]")
            self.emit(ind, "s_icache += stall")
        elif can_stall:
            self.emit(ind, "stall = 0")

        fw_starts = fw_starts or {}
        for pos, u in enumerate(uops):
            self.emit_uop(ind, idx, pos, u, eager[pos], fw_starts.get(pos))

        if self.trace and rec[R_TRACE] is not None:
            self.emit(ind, f"trace_append(TraceEntry(cycle={self.cycles_expr}"
                           f", addr={rec[R_ADDR]}, text={rec[R_TRACE]!r}))")
        self.emit(ind, "issued += 1")
        if not self.no_timing:
            self.emit(ind, "cycles += 1 + stall" if can_stall
                           else "cycles += 1")
        if rec[R_NINSTR]:
            self.emit(ind, f"instructions += {rec[R_NINSTR]}")
        if rec[R_NNOPS]:
            self.emit(ind, f"nops += {rec[R_NNOPS]}")

        # Control-transfer epilogue: one integer truthiness test per bundle
        # when no transfer is pending, the full reference sequence when one
        # fires.  `continue` re-enters the dispatch tree at the target.
        # When chain analysis proves the only transfer that can fire here is
        # one specific static branch (`static_fire`), the fire body
        # collapses to constants: the target index, function and entry
        # address are generation-time literals, and a branch leaves
        # `ctrl_is_call`/`ctrl_name` already cleared.
        if no_fire:
            self.emit(ind, "if ctrl_cd:")
            self.emit(ind, "    ctrl_cd -= 1")
            if has_halt:
                self.emit(ind, "if halted:")
                self.emit(ind, f"    idx = {rec[R_FALL_IDX]}")
                self._materialize_fw(ind + "    ", fw_live_end, n, True)
                self.emit(ind, "    break")
            if is_last:
                self.emit(ind, f"idx = {rec[R_FALL_IDX]}")
                self.emit(ind, "continue")
            return
        if static_fire is not None and not has_halt:
            tgt_idx = static_fire[3]
            tgt_rec = self.table[tgt_idx]
            self.emit(ind, "if ctrl_cd:")
            sub = ind + "    "
            self.emit(sub, "ctrl_cd -= 1")
            self.emit(sub, "if not ctrl_cd:")
            fire = sub + "    "
            self._materialize_fw(fire, fw_live_end, n, True)
            fn = tgt_rec[R_FUNC]
            if fn is not None:
                cf = self.const(f"_cf{tgt_idx}", f"table[{tgt_idx}][6]")
                self.emit(fire, f"cur_func = {cf}")
                self.emit(fire, f"cur_entry = {fn.entry_addr}")
            else:
                self.emit(fire, f"cur_func = func_containing("
                                f"{static_fire[4]})")
                self.emit(fire, "cur_entry = cur_func.entry_addr")
            self.emit(fire, f"idx = {tgt_idx}")
            self.emit(fire, "continue")
            if is_last:
                self.emit(ind, f"idx = {rec[R_FALL_IDX]}")
                self.emit(ind, "continue")
            return
        self.emit(ind, "if ctrl_cd:")
        sub = ind + "    "
        self.emit(sub, "ctrl_cd -= 1")
        self.emit(sub, "if not ctrl_cd:")
        fire = sub + "    "
        self._materialize_fw(fire, fw_live_end, n, True)
        self.emit(fire, "if ctrl_is_call:")
        self.emit(fire, f"    specials[SRO] = ({rec[R_FALL_ADDR]} - "
                        f"cur_entry) & {_MASK}")
        body = fire
        if has_halt:
            self.emit(fire, "if not halted:")
            body = fire + "    "
        self.emit(body, f"rec2 = tbl[ctrl_tidx] if 0 <= ctrl_tidx < "
                        f"{self.tlen} else None")
        self.emit(body, "cur_func = rec2[6] if rec2 is not None and "
                        "rec2[6] is not None else "
                        "func_containing(ctrl_target)")
        self.emit(body, "cur_entry = cur_func.entry_addr")
        self.emit(fire, "ctrl_is_call = False")
        self.emit(fire, "ctrl_name = None")
        self.emit(fire, "idx = ctrl_tidx")
        if has_halt:
            self.emit(fire, "if halted:")
            self.emit(fire, "    break")
        self.emit(fire, "continue")
        if has_halt:
            self.emit(ind, "if halted:")
            self.emit(ind, f"    idx = {rec[R_FALL_IDX]}")
            self._materialize_fw(ind + "    ", fw_live_end, n, True)
            self.emit(ind, "    break")
        if is_last:
            self.emit(ind, f"idx = {rec[R_FALL_IDX]}")
            self.emit(ind, "continue")

    def _plan_chain(self, chain):
        """Whole-chain static analysis shared by both emitted copies.

        * Drain elimination: a bundle's ring slot can only be non-empty
          within ring distance of the chain head (in-flight writes from
          before entry — generated execution always enters at the head) or
          of an earlier in-chain bundle that appends to the ring; every
          ring write lands at most ``ring_mask`` bundles ahead of its
          issue.  Forwarded loads don't count — their cold-path spills land
          within ring distance of whatever code resumes, which always
          drains (chain heads within ``ring_mask``, or the interpreter
          bridge, which drains every bundle).
        * Fire specialisation: a fire epilogue specialises when chain
          position rules out any transfer pending at entry (``n >=``
          program-wide max countdown) and exactly one in-chain source — a
          static branch — can fire.
        * Load forwarding: see ``_plan_forwards``.
        """
        L = len(chain)
        starts: list = [{} for _ in range(L)]  # n -> {pos: local}
        commits: list = [[] for _ in range(L)]  # n -> [(reg, local)]
        live_start: list = [[] for _ in range(L)]
        live_end: list = [[] for _ in range(L)]
        handlers: list = [[] for _ in range(L)]
        forwards = self._plan_forwards(chain)
        for (q, pos) in sorted(forwards):
            r, p = forwards[(q, pos)]
            name = f"_fw{self.fw_counter}"
            self.fw_counter += 1
            starts[q][pos] = name
            commits[p].append((r, name))
            for m in range(q + 1, p + 1):
                live_start[m].append((name, r, p))
            for m in range(q, p):
                live_end[m].append((name, r, p))
            # Exception-handler liveness: a micro-op raise at bundle m is
            # always after bundle q's assignment (q < m — a raise at q
            # precedes the load by plan) and, at m == p, after the commit
            # (which precedes every micro-op), so exactly q < m < p.
            for m in range(q + 1, p):
                handlers[m].append((name, r, p))
        rings = []
        fire_sources: list = [[] for _ in chain]
        for n, idx in enumerate(chain):
            uops = self.table[idx][R_UOPS]
            eager = _eager_flags(uops, self.delayed_gprs)
            rings.append(self.bundle_ring_writes(uops, eager, starts[n]))
            for u in uops:
                cd = _ctrl_cd(u)
                # Armed during bundle `n`, the countdown is decremented by
                # `n`'s own epilogue, so it reaches zero — fires — at the
                # epilogue of position `n + cd - 1`.
                if cd is not None and n + cd - 1 < L:
                    fire_sources[n + cd - 1].append(u)
        may_drain = []
        static_fires = []
        no_fires = []
        for n in range(L):
            may_drain.append(n <= self.rm
                            or any(rings[max(0, n - self.rm):n]))
            # `n >= max_cd` rules out any transfer pending at chain entry
            # (those fire at positions <= max_cd - 1), so the in-chain
            # sources are exhaustive: none -> the epilogue is a bare
            # countdown decrement; exactly one static branch -> the fire
            # body collapses to constants.
            sf = None
            if n >= self.max_cd and len(fire_sources[n]) == 1:
                src = fire_sources[n][0]
                if (src[0] in (K_BRANCH, K_BRCF)
                        and 0 <= src[3] < self.tlen
                        and self.table[src[3]] is not None):
                    sf = src
            static_fires.append(sf)
            no_fires.append(n >= self.max_cd and not fire_sources[n])
        return (may_drain, static_fires, no_fires, starts, commits,
                live_start, live_end, handlers)

    def emit_superblock(self, ind, chain):
        plan = self._plan_chain(chain)
        if len(chain) == 1:
            self._emit_chain(ind, chain, plan, checked=True)
            return
        # Two copies of the chain body.  The guard proves, once per entry,
        # everything the per-bundle checks re-prove: `not stepping` implies
        # no until_cycle/event/sync pause can trigger (`syncing` implies
        # `stepping`), and `issued + len <= max_bundles` means no bundle in
        # the chain can hit the limit.  The unchecked copy drops both
        # per-bundle tests — on a chain of n bundles that is 2(n-1) fewer
        # branch tests per traversal.
        self.emit(ind, f"if stepping or issued + {len(chain)} > "
                       "max_bundles:")
        self._emit_chain(ind + "    ", chain, plan, checked=True)
        self.emit(ind, "else:")
        self._emit_chain(ind + "    ", chain, plan, checked=False)

    def _emit_chain(self, ind, chain, plan, checked):
        (may_drain, static_fires, no_fires, starts, commits, live_start,
         live_end, handlers) = plan
        last = len(chain) - 1
        # Forwarding windows that span a bundle which can raise get a
        # chain-level exception handler: it spills the in-flight values back
        # into the ring by raise position (`idx` is always current where a
        # raise is possible) and re-raises, so post-mortem pending-write
        # state stays bit-identical to the reference.  Zero cost until an
        # exception actually propagates.
        wrapped = any(handlers)
        body = ind + "    " if wrapped else ind
        if wrapped:
            self.emit(ind, "try:")
        for n, idx in enumerate(chain):
            self.emit_bundle(body, idx, n, is_head=(n == 0),
                             is_last=(n == last),
                             may_drain=may_drain[n],
                             static_fire=static_fires[n],
                             no_fire=no_fires[n],
                             checked=checked,
                             fw_starts=starts[n],
                             fw_commits=commits[n],
                             fw_live_start=live_start[n],
                             fw_live_end=live_end[n],
                             fw_handled=wrapped)
        if wrapped:
            self.emit(ind, "except ReproError:")
            sub = ind + "    "
            kw = "if"
            for n, idx in enumerate(chain):
                if not handlers[n]:
                    continue
                self.emit(sub, f"{kw} idx == {idx}:")
                self._materialize_fw(sub + "    ", handlers[n], n, False)
                kw = "elif"
            self.emit(sub, "raise")

    def emit_dispatch(self, ind, heads, blocks):
        """Binary search over sorted superblock heads (log-depth if-tree)."""
        if len(heads) == 1:
            head = heads[0]
            self.emit(ind, f"if idx == {head}:")
            self.emit_superblock(ind + "    ", blocks[head])
            self.emit(ind, "else:")
            self.emit(ind, '    status = "__bridge__"')
            self.emit(ind, "    break")
            return
        mid = len(heads) // 2
        self.emit(ind, f"if idx < {heads[mid]}:")
        self.emit_dispatch(ind + "    ", heads[:mid], blocks)
        self.emit(ind, "else:")
        self.emit_dispatch(ind + "    ", heads[mid:], blocks)

    # -- module assembly ---------------------------------------------------

    def module(self, full_key) -> str:
        blocks = _superblocks(self.table, set(self.leaders))
        heads = sorted(blocks)
        body_ind = " " * 20
        self.lines = []
        if heads:
            self.emit_dispatch(body_ind, heads, blocks)
        else:
            self.emit(body_ind, 'status = "__bridge__"')
            self.emit(body_ind, "break")

        header = [
            '"""Generated by repro.sim.codegen — do not edit or commit.',
            "",
            f"codegen_key: {self.program.codegen_key}",
            f"cache_key:   {full_key}",
            f"strict={self.strict} trace={self.trace} "
            f"base={self.base:#x} bundles={sum(1 for r in self.table if r is not None)} "
            f"superblocks={len(heads)}",
            '"""',
            "",
            "from repro.errors import (ReproError, SimulationError,",
            "                          StackCacheError)",
            "from repro.isa.opcodes import MemType, Opcode",
            "from repro.isa.registers import SpecialReg",
            "from repro.sim.codegen.runtime import _drain, _drain_strict",
            "from repro.sim.engine import (_mul_signed, _mul_unsigned,",
            "                              _raise_stale, _s32, _sra)",
            "from repro.sim.results import TraceEntry",
            "",
            f"CODEGEN_VERSION = {CODEGEN_VERSION}",
            f"GENERATED_KEY = {full_key!r}",
            f"LEADERS = {tuple(heads)!r}",
            "",
            "",
            "def make(table):",
            "    _ST = SpecialReg.ST",
            "    _SS = SpecialReg.SS",
            "    _SL = SpecialReg.SL",
            "    _SH = SpecialReg.SH",
            "    _SRB = SpecialReg.SRB",
            "    _SRO = SpecialReg.SRO",
        ]
        for name in sorted(self.consts):
            header.append(f"    {name} = {self.consts[name]}")
        header.extend([
            "",
            "    def run(ctx, max_bundles, release=False, sync=True,",
            "            until_cycle=None, event_source=None):",
        ])
        prologue = [
            "sim = ctx.sim",
            "state = ctx.state",
            "regs = ctx.regs",
            "preds = ctx.preds",
            "specials = ctx.specials",
            "output = ctx.output",
            "block_counts = ctx.block_counts",
            "bc_get = block_counts.get",
            "call_counts = ctx.call_counts",
            "cc_get = call_counts.get",
            "stack_cache = ctx.stack_cache",
            "contains = stack_cache.contains",
            "func_at = ctx.func_at",
            "func_containing = ctx.func_containing",
            "memory = ctx.memory",
            "mem_read = memory.read",
            "mem_read_u32 = memory.read_u32",
            "mem_write = memory.write",
            "mem_write_u32 = memory.write_u32",
            "spad = ctx.scratchpad",
            "spad_read = spad.read",
            "spad_read_u32 = spad.read_u32",
            "spad_write = spad.write",
            "spad_write_u32 = spad.write_u32",
            "trace_append = ctx.trace_append",
            "tbl = table",
            "ST = _ST",
            "SS = _SS",
            "SL = _SL",
            "SH = _SH",
            "SRB = _SRB",
            "SRO = _SRO",
        ]
        hook_names = (("fetch_hook", self.has_fetch),
                      ("mc_hook", self.has_mc),
                      ("read_hook", self.has_read),
                      ("write_hook", self.has_write),
                      ("stack_hook", self.has_stack),
                      ("store_hook", self.has_store),
                      ("split_hook", self.has_split))
        for name, present in hook_names:
            if present:
                prologue.append(f"{name} = ctx.{name}")
        prologue.extend([
            "ring = ctx.ring",
            "pg = ctx.pg",
            "pp = ctx.pp",
            "ps = ctx.ps",
            "issued = ctx.issued",
            ("_cdelta = ctx.cycles - issued" if self.no_timing
             else "cycles = ctx.cycles"),
            "instructions = ctx.instructions",
            "nops = ctx.nops",
            "halted = ctx.halted",
            "cur_func = ctx.cur_func",
            "cur_entry = cur_func.entry_addr",
            "idx = ctx.idx",
            "ctrl_cd = ctx.ctrl_cd",
            "ctrl_tidx = ctx.ctrl_tidx",
            "ctrl_target = ctx.ctrl_target",
            "ctrl_is_call = ctx.ctrl_is_call",
            "ctrl_name = ctx.ctrl_name",
            "has_pml = ctx.has_pml",
            "pml_rd = ctx.pml_rd",
            "pml_val = ctx.pml_val",
            "pml_ready = ctx.pml_ready",
            "s_icache = ctx.s_icache",
            "s_data = ctx.s_data",
            "s_method = ctx.s_method",
            "s_stack = ctx.s_stack",
            "s_split = ctx.s_split",
            "s_store = ctx.s_store",
            "syncing = sync and ctx.sync_flags is not None",
            "skip_sync = release",
            'status = "cycle_limit"',
            "stepping = (until_cycle is not None or "
            "event_source is not None or syncing)",
            "events_before = (event_source.events "
            "if event_source is not None else 0)",
        ])
        # Per-block execution counters accumulate in integer locals and
        # flush once on every exit (the `finally` below), replacing a
        # tuple-keyed dict update per block entry with `+= 1`.
        for key in self.block_locals:
            prologue.append(f"{self.block_locals[key]} = 0")
        epilogue = [
            "ctx.issued = issued",
            ("ctx.cycles = issued + _cdelta" if self.no_timing
             else "ctx.cycles = cycles"),
            "ctx.instructions = instructions",
            "ctx.nops = nops",
            "ctx.halted = halted",
            "ctx.cur_func = cur_func",
            "ctx.idx = idx",
            "ctx.ctrl_cd = ctrl_cd",
            "ctx.ctrl_tidx = ctrl_tidx",
            "ctx.ctrl_target = ctrl_target",
            "ctx.ctrl_is_call = ctrl_is_call",
            "ctx.ctrl_name = ctrl_name",
            "ctx.has_pml = has_pml",
            "ctx.pml_rd = pml_rd",
            "ctx.pml_val = pml_val",
            "ctx.pml_ready = pml_ready",
            "ctx.s_icache = s_icache",
            "ctx.s_data = s_data",
            "ctx.s_method = s_method",
            "ctx.s_stack = s_stack",
            "ctx.s_split = s_split",
            "ctx.s_store = s_store",
        ]
        for key, name in self.block_locals.items():
            epilogue.append(f"if {name}:")
            epilogue.append(f"    block_counts[{key!r}] = "
                            f"bc_get({key!r}, 0) + {name}")
        out = list(header)
        out.extend("        " + line for line in prologue)
        out.append("        try:")
        out.append("            if not halted:")
        out.append("                while True:")
        out.extend(self.lines)
        out.append("        finally:")
        out.extend("            " + line for line in epilogue)
        out.append('        return "halted" if halted else status')
        out.append("")
        out.append("    return run")
        out.append("")
        return "\n".join(out)


def generate_source(program, hook_sig, sync_key, sync_flags,
                    leaders=None) -> str:
    """The generated module source for one specialisation of ``program``.

    ``hook_sig`` is the 7-bool presence tuple of the timing hooks
    (fetch, method-cache, read, write, stack, store, split) — absent hooks
    are compiled out entirely.  ``sync_flags`` must be the per-bundle
    may-arbitrate flags for ``sync_key`` (all-False for ``None``).
    """
    if leaders is None:
        leaders = compute_leaders(program, sync_flags)
    emitter = _Emitter(program, hook_sig, sync_flags, leaders)
    return emitter.module(cache_key(program, hook_sig, sync_key))
