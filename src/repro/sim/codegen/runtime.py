"""Tiny runtime support called from generated superblock modules.

Generated code keeps the interpreter's due-issue ring for every write whose
commit the surrounding bundle can still observe (see the eager-commit
analysis in :mod:`repro.sim.codegen.generator`); draining a non-empty slot
is the one operation worth a shared out-of-line helper, because after the
eager-commit optimisation most slots are empty and the call never happens.

Both helpers mirror the commit loop of
:meth:`repro.sim.engine.EngineContext.advance` exactly: writes apply in
append order (so the last write to a register in one due-slot wins) and the
slot list is cleared in place so the ring reuses it.
"""

from __future__ import annotations


def _drain(slot, regs, preds, specials):
    """Commit one due-slot of (kind, index, value) writes (non-strict)."""
    for write in slot:
        kind = write[0]
        if kind == 0:
            regs[write[1]] = write[2]
        elif kind == 1:
            preds[write[1]] = write[2]
        else:
            specials[write[1]] = write[2]
    del slot[:]


def _drain_strict(slot, regs, preds, specials, pg, pp, ps):
    """Commit one due-slot, maintaining the strict staleness counters."""
    for write in slot:
        kind = write[0]
        if kind == 0:
            regs[write[1]] = write[2]
            pg[write[1]] -= 1
        elif kind == 1:
            preds[write[1]] = write[2]
            pp[write[1]] -= 1
        else:
            specials[write[1]] = write[2]
            ps[write[1]] -= 1
    del slot[:]
