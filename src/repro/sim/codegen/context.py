"""`JitContext`: an `EngineContext` that executes generated superblocks.

The context compiles (or loads from the on-disk cache) one specialised module
per ``(program, timing-hook signature, sync signature)`` and drives it
segment by segment:

* whenever the current bundle index is a superblock *leader* the generated
  ``run`` function executes — straight-line Python until it halts, reaches a
  scheduling point (``"sync"``/``"memory_event"``/``"cycle_limit"``) or
  transfers control to an index it has no superblock for (pseudo-status
  ``"__bridge__"``);
* at a non-leader index (a quantum scheduler resuming mid-superblock, a
  fault-injector-corrupted return address) the inherited micro-op
  interpreter *bridges* to the next leader.  The bridge reuses the engine's
  own sync-pause machinery with a substitute flag list that marks every
  leader, so it stops exactly at re-entry points without any new interpreter
  mode.  Real sync-flagged bundles are all leaders, so a bridge pause at a
  flagged bundle is reported to the scheduler unchanged.

Anything that prevents compilation — ``REPRO_NO_JIT=1``, an empty decode
table, an unexpected generator failure — degrades to the inherited micro-op
interpreter with a warning, never an error.  All observable state lives in
the base class, so :meth:`EngineContext.export`, resumption by other engines
and the fault injector work unchanged.
"""

from __future__ import annotations

import os
import warnings

from ..engine import EngineContext
from . import cache as _disk
from .generator import cache_key, compute_leaders, generate_source

#: ``program.__dict__`` slot memoising compiled runners per specialisation.
_MEMO_ATTR = "_jit_cache"
#: Sentinel marking a specialisation that failed to compile (don't retry).
_FAILED = False


def _exec_module(source: str, full_key: str):
    """Exec one generated module; its namespace, or ``None`` if invalid."""
    namespace: dict = {}
    try:
        code = compile(source, f"<repro-jit {full_key[:16]}>", "exec")
        exec(code, namespace)
    except Exception:
        return None
    if namespace.get("GENERATED_KEY") != full_key:
        return None
    return namespace


def _compile(program, hook_sig, sync_key, sync_flags):
    """(run, leaders) for one specialisation, or ``None`` (use interpreter).

    Memoised on the program (shared by every context of the same decode);
    the generated source is persisted in the on-disk cache, and a corrupt
    cached entry is quarantined and regenerated in memory.
    """
    memo = program.__dict__.setdefault(_MEMO_ATTR, {})
    memo_key = (hook_sig, sync_key)
    cached = memo.get(memo_key)
    if cached is not None:
        return None if cached is _FAILED else cached
    try:
        leaders = compute_leaders(program, sync_flags)
        if not program.table or not leaders:
            memo[memo_key] = _FAILED
            return None
        full_key = cache_key(program, hook_sig, sync_key)
        source = _disk.load_source(full_key)
        namespace = None
        if source is not None:
            namespace = _exec_module(source, full_key)
            if namespace is None:
                _disk.quarantine(full_key)
        if namespace is None:
            source = generate_source(program, hook_sig, sync_key, sync_flags,
                                     leaders)
            namespace = _exec_module(source, full_key)
            if namespace is None:
                raise RuntimeError("freshly generated module failed to "
                                   "compile or carries the wrong key")
            _disk.store_source(full_key, source)
        run = namespace["make"](program.table)
        compiled = (run, frozenset(namespace["LEADERS"]))
    except Exception as exc:
        warnings.warn(f"repro.sim.codegen: falling back to the micro-op "
                      f"interpreter ({type(exc).__name__}: {exc})",
                      RuntimeWarning, stacklevel=3)
        memo[memo_key] = _FAILED
        return None
    memo[memo_key] = compiled
    return compiled


class JitContext(EngineContext):
    """Drop-in `EngineContext` backed by generated superblock code."""

    def __init__(self, sim):
        super().__init__(sim)
        self._jit_run = None
        self._jit_leaders = frozenset()
        self._compiled_flags = None
        self._bridge_flags = None
        if os.environ.get("REPRO_NO_JIT"):
            return
        hook_sig = (self.fetch_hook is not None,
                    self.mc_hook is not None,
                    self.read_hook is not None,
                    self.write_hook is not None,
                    self.stack_hook is not None,
                    self.store_hook is not None,
                    self.split_hook is not None)
        sync_key = self._sync_key()
        sync_flags = self._sync_flags_for(sync_key)
        compiled = _compile(self.program, hook_sig, sync_key, sync_flags)
        if compiled is None:
            return
        self._jit_run, self._jit_leaders = compiled
        self._compiled_flags = sync_flags
        # Bridge flag list: pause the interpreter at every leader (memoised
        # per program alongside the real sync flags).
        bridge_key = ("__jit_leaders__", sync_key)
        flags = self.program.sync_flags_cache.get(bridge_key)
        if flags is None:
            flags = [False] * self.tlen
            for idx in self._jit_leaders:
                flags[idx] = True
            self.program.sync_flags_cache[bridge_key] = flags
        self._bridge_flags = flags

    def _bridge(self, max_bundles, release, until_cycle, event_source):
        """Interpret until the next leader (or a genuine stop condition)."""
        saved = self.sync_flags
        self.sync_flags = self._bridge_flags
        try:
            return super().advance(max_bundles, release=release, sync=True,
                                   until_cycle=until_cycle,
                                   event_source=event_source)
        finally:
            self.sync_flags = saved

    def advance(self, max_bundles, release=False, sync=True,
                until_cycle=None, event_source=None) -> str:
        run = self._jit_run
        if run is None or (sync and self.sync_flags is not None
                           and self.sync_flags is not self._compiled_flags):
            # No compiled code, or the context was re-synced against a flag
            # set the module was not generated for: stay on the interpreter.
            return super().advance(max_bundles, release=release, sync=sync,
                                   until_cycle=until_cycle,
                                   event_source=event_source)
        leaders = self._jit_leaders
        syncing = sync and self.sync_flags is not None
        compiled_flags = self._compiled_flags
        events_before = (event_source.events if event_source is not None
                         else 0)
        while True:
            # The per-segment stop conditions the generated code checks
            # per bundle, re-checked here so no segment boundary can hide
            # an already-pending event or an expired horizon.
            if self.halted:
                return "halted"
            if until_cycle is not None and self.cycles >= until_cycle:
                return "cycle_limit"
            if event_source is not None and \
                    event_source.events != events_before:
                return "memory_event"
            if self.idx in leaders:
                status = run(self, max_bundles, release=release, sync=sync,
                             until_cycle=until_cycle,
                             event_source=event_source)
                if status != "__bridge__":
                    return status
            else:
                status = self._bridge(max_bundles, release, until_cycle,
                                      event_source)
                if status != "sync":
                    return status  # halted / memory_event / cycle_limit
                if syncing and compiled_flags[self.idx]:
                    return "sync"  # a real pause point, not just a leader
            release = False


def run_jit(sim, max_bundles: int, until_cycle=None,
            event_source=None) -> None:
    """Run ``sim`` to completion on the jit engine (cf. ``run_predecoded``).

    Builds a throw-away :class:`JitContext`, advances it and exports the
    in-flight state back to the simulator — also on exceptions — so results
    and post-mortem state match the reference interpreter bit for bit.
    """
    context = JitContext(sim)
    try:
        context.advance(max_bundles, sync=False, until_cycle=until_cycle,
                        event_source=event_source)
    finally:
        context.export()
