"""``python -m repro.sim.codegen --dump <kernel>``: print generated source.

Builds a workload kernel, compiles and links it, decodes the image for the
requested strict/trace variant and prints the Python module the jit engine
would execute — the first stop when debugging a suspected codegen
divergence (the header records the codegen key and superblock count, and
every bundle is annotated with its address).
"""

from __future__ import annotations

import argparse
import sys

from ..engine import decode_image
from ...compiler import CompileOptions, compile_and_link
from ...config import PatmosConfig
from ...workloads import build_kernel
from ...workloads.suite import KERNEL_BUILDERS
from .generator import compute_leaders, generate_source


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.codegen",
        description="Print the generated superblock module for a kernel.")
    parser.add_argument("--dump", metavar="KERNEL", required=True,
                        choices=sorted(KERNEL_BUILDERS),
                        help="workload kernel to generate code for")
    parser.add_argument("--strict", action="store_true",
                        help="generate the strict-checking variant")
    parser.add_argument("--trace", action="store_true",
                        help="generate the tracing variant")
    parser.add_argument("--single-issue", action="store_true",
                        help="compile the kernel without dual issue")
    parser.add_argument("--timed", action="store_true",
                        help="assume all timing hooks present (the cycle "
                             "simulator's specialisation) instead of none "
                             "(the functional simulator's)")
    args = parser.parse_args(argv)

    kernel = build_kernel(args.dump)
    config = PatmosConfig()
    options = CompileOptions(dual_issue=not args.single_issue)
    image, _ = compile_and_link(kernel.program, config=config,
                                options=options)
    program = decode_image(image, config.pipeline, args.strict, args.trace)
    hook_sig = (args.timed,) * 7
    sync_flags = [False] * len(program.table)
    leaders = compute_leaders(program, sync_flags)
    source = generate_source(program, hook_sig, None, sync_flags, leaders)
    sys.stdout.write(source)
    if not source.endswith("\n"):
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
