"""Architectural state of one Patmos core."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import NUM_GPRS, NUM_PREDS
from ..errors import SimulationError
from ..isa.registers import SpecialReg

WORD_MASK = 0xFFFF_FFFF


def to_unsigned(value: int) -> int:
    """Normalise a Python int to a 32-bit unsigned register value."""
    return value & WORD_MASK


def to_signed(value: int) -> int:
    """Interpret a 32-bit register value as a signed integer."""
    value &= WORD_MASK
    if value & 0x8000_0000:
        return value - 0x1_0000_0000
    return value


@dataclass
class ArchState:
    """Register file, predicates, special registers and debug output.

    The ``read_gpr``/``write_gpr`` (and predicate) accessors bounds-check every
    index and enforce the hard-wired ``r0``/``p0`` semantics; they are the safe
    interface for external callers.  Because writes to index 0 are dropped,
    ``regs[0] == 0`` and ``preds[0] is True`` are invariants, so code that has
    *already validated its indices* — the pre-decoded execution engine
    validates them once at decode time — may index ``regs``/``preds`` directly
    (the unchecked path) without losing those semantics.
    """

    regs: list[int] = field(default_factory=lambda: [0] * NUM_GPRS)
    preds: list[bool] = field(default_factory=lambda: [True] + [False] * (NUM_PREDS - 1))
    specials: dict[SpecialReg, int] = field(
        default_factory=lambda: {reg: 0 for reg in SpecialReg})
    output: list[int] = field(default_factory=list)
    halted: bool = False

    # -- general-purpose registers ---------------------------------------------------

    def read_gpr(self, index: int) -> int:
        if not 0 <= index < NUM_GPRS:
            raise SimulationError(f"GPR index out of range: {index}")
        if index == 0:
            return 0
        return self.regs[index]

    def write_gpr(self, index: int, value: int) -> None:
        if not 0 <= index < NUM_GPRS:
            raise SimulationError(f"GPR index out of range: {index}")
        if index == 0:
            return
        self.regs[index] = to_unsigned(value)

    # -- predicate registers -----------------------------------------------------------

    def read_pred(self, index: int) -> bool:
        if not 0 <= index < NUM_PREDS:
            raise SimulationError(f"predicate index out of range: {index}")
        if index == 0:
            return True
        return self.preds[index]

    def write_pred(self, index: int, value: bool) -> None:
        if not 0 <= index < NUM_PREDS:
            raise SimulationError(f"predicate index out of range: {index}")
        if index == 0:
            return
        self.preds[index] = bool(value)

    # -- special registers ---------------------------------------------------------------

    def read_special(self, reg: SpecialReg) -> int:
        return self.specials[reg]

    def write_special(self, reg: SpecialReg, value: int) -> None:
        self.specials[reg] = to_unsigned(value)

    # -- snapshots ---------------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict snapshot of the architectural state (for tests/traces)."""
        return {
            "regs": list(self.regs),
            "preds": list(self.preds),
            "specials": {reg.value: val for reg, val in self.specials.items()},
            "output": list(self.output),
            "halted": self.halted,
        }
