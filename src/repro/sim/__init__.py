"""Patmos simulators: functional and cycle-accurate, on two engines.

Module map
----------

``base``
    :class:`BaseSimulator` — the full architectural semantics of the Patmos
    ISA (predication, exposed delay slots, typed memory, stack-cache control,
    call/return protocol) with zero-stall timing hooks, implemented as the
    readable *reference interpreter* (``_step``/``_execute``).
``cycle``
    :class:`CycleSimulator` — subclasses the base simulator and fills in the
    timing hooks with the time-predictable memory hierarchy (method cache,
    split caches, stack cache, memory controller, TDMA arbitration).
``functional``
    :class:`FunctionalSimulator` — the base engine used as-is ("ideal
    memory" baseline, one cycle per issued bundle).
``engine``
    The pre-decoded *fast engine*: a decode pass compiles every bundle of an
    image into a dense PC-indexed micro-op table once, and a dispatch-table
    interpreter executes it without per-step decoding.  Both simulator
    classes run on it by default (``engine="fast"``); pass
    ``engine="reference"`` to force the interpreter.  The two are kept
    observationally identical by the golden-equivalence suite
    (``tests/test_engine_equivalence.py``).  Both engines are resumable
    through ``run_step`` (run-until-cycle / run-until-memory-event), which
    is how the multicore co-simulation (:mod:`repro.cmp`) interleaves N
    cores on one clock without losing the fast path.  The engine's hot loop
    lives in :class:`~repro.sim.engine.EngineContext` — a persistent
    per-core execution context whose ``advance`` method re-enters the
    dispatch loop at method-call cost and can pause *before* a bundle that
    may register an arbitrated memory transfer; the event-driven co-sim
    scheduler holds one context per core and releases them in global time
    order (``tests/test_cosim_scheduler.py`` pins the equivalence).
``executor``
    Pure evaluation of ALU/compare/predicate/multiply semantics shared by
    the reference interpreter (the fast engine pre-binds its own inlined
    variants at decode time).
``state``
    :class:`ArchState` — register file, predicates, special registers, with
    checked accessors for external callers and documented unchecked paths
    for the engine.
``results``
    :class:`SimResult`, :class:`StallBreakdown`, :class:`TraceEntry`.
"""

from .base import BaseSimulator
from .cycle import CycleSimulator
from .engine import DecodedProgram, EngineContext, decode_image
from .functional import FunctionalSimulator
from .results import SimResult, StallBreakdown, TraceEntry
from .state import ArchState, to_signed, to_unsigned

__all__ = [
    "ArchState",
    "BaseSimulator",
    "CycleSimulator",
    "DecodedProgram",
    "EngineContext",
    "FunctionalSimulator",
    "SimResult",
    "StallBreakdown",
    "TraceEntry",
    "decode_image",
    "to_signed",
    "to_unsigned",
]
