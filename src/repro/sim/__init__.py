"""Patmos simulators: functional and cycle-accurate."""

from .base import BaseSimulator
from .cycle import CycleSimulator
from .functional import FunctionalSimulator
from .results import SimResult, StallBreakdown, TraceEntry
from .state import ArchState, to_signed, to_unsigned

__all__ = [
    "ArchState",
    "BaseSimulator",
    "CycleSimulator",
    "FunctionalSimulator",
    "SimResult",
    "StallBreakdown",
    "TraceEntry",
    "to_signed",
    "to_unsigned",
]
