"""Patmos simulators: functional and cycle-accurate, on three engines.

Module map
----------

``base``
    :class:`BaseSimulator` — the full architectural semantics of the Patmos
    ISA (predication, exposed delay slots, typed memory, stack-cache control,
    call/return protocol) with zero-stall timing hooks, implemented as the
    readable *reference interpreter* (``_step``/``_execute``).
``cycle``
    :class:`CycleSimulator` — subclasses the base simulator and fills in the
    timing hooks with the time-predictable memory hierarchy (method cache,
    split caches, stack cache, memory controller, TDMA arbitration).
``functional``
    :class:`FunctionalSimulator` — the base engine used as-is ("ideal
    memory" baseline, one cycle per issued bundle).
``engine``
    The pre-decoded *fast engine*: a decode pass compiles every bundle of an
    image into a dense PC-indexed micro-op table once, and a dispatch-table
    interpreter executes it without per-step decoding.  Both simulator
    classes run on it by default (``engine="fast"``); pass
    ``engine="reference"`` to force the interpreter.  The two are kept
    observationally identical by the golden-equivalence suite
    (``tests/test_engine_equivalence.py``).  Both engines are resumable
    through ``run_step`` (run-until-cycle / run-until-memory-event), which
    is how the multicore co-simulation (:mod:`repro.cmp`) interleaves N
    cores on one clock without losing the fast path.  The engine's hot loop
    lives in :class:`~repro.sim.engine.EngineContext` — a persistent
    per-core execution context whose ``advance`` method re-enters the
    dispatch loop at method-call cost and can pause *before* a bundle that
    may register an arbitrated memory transfer; the event-driven co-sim
    scheduler holds one context per core and releases them in global time
    order (``tests/test_cosim_scheduler.py`` pins the equivalence).
``codegen``
    The generated-code *jit engine* (``engine="jit"``): a compiler pass
    lowers each decoded program into straight-line Python superblocks —
    operands inlined, configuration constant-folded, branch targets
    pre-resolved — exec'd once and cached on disk keyed by image content,
    decode variant, hook/sync signature and
    :data:`~repro.sim.codegen.generator.CODEGEN_VERSION`.
    :class:`~repro.sim.codegen.JitContext` subclasses
    :class:`~repro.sim.engine.EngineContext`, so pause-before-memory-event
    stepping, arbiter interleaving and the fault injector work unchanged;
    ``REPRO_NO_JIT=1`` falls back to the micro-op engine.  Equivalence is
    pinned by the same golden suite plus ``tests/test_codegen.py`` (cache
    lifecycle) — see the README's "Execution engines" section.
``executor``
    Pure evaluation of ALU/compare/predicate/multiply semantics shared by
    the reference interpreter (the fast engine pre-binds its own inlined
    variants at decode time).
``state``
    :class:`ArchState` — register file, predicates, special registers, with
    checked accessors for external callers and documented unchecked paths
    for the engine.
``results``
    :class:`SimResult`, :class:`StallBreakdown`, :class:`TraceEntry`.
"""

from .base import BaseSimulator
from .codegen import JitContext, run_jit
from .cycle import CycleSimulator
from .engine import DecodedProgram, EngineContext, decode_image
from .functional import FunctionalSimulator
from .results import SimResult, StallBreakdown, TraceEntry
from .state import ArchState, to_signed, to_unsigned

__all__ = [
    "ArchState",
    "BaseSimulator",
    "CycleSimulator",
    "DecodedProgram",
    "EngineContext",
    "FunctionalSimulator",
    "JitContext",
    "SimResult",
    "StallBreakdown",
    "TraceEntry",
    "decode_image",
    "run_jit",
    "to_signed",
    "to_unsigned",
]
