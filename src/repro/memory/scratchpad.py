"""Compiler-managed scratchpad memory (SP in Figure 1 of the paper).

The scratchpad is a core-private on-chip memory with single-cycle,
time-predictable access; it occupies its own small address space starting at
zero and is accessed with the ``lwl``/``swl`` family of typed instructions.
"""

from __future__ import annotations

from ..config import ScratchpadConfig
from ..errors import MemoryAccessError
from .main_memory import MainMemory


class Scratchpad:
    """A small, private, single-cycle scratchpad memory."""

    def __init__(self, config: ScratchpadConfig):
        self.config = config
        self._memory = MainMemory(config.size_bytes)
        self.accesses = 0

    def read(self, addr: int, width: int, signed: bool = False) -> int:
        self.accesses += 1
        self._check(addr, width)
        return self._memory.read(addr, width, signed=signed)

    def write(self, addr: int, value: int, width: int) -> None:
        self.accesses += 1
        self._check(addr, width)
        self._memory.write(addr, value, width)

    def load_words(self, contents: dict[int, int]) -> None:
        self._memory.load_words(contents)

    def access_cycles(self) -> int:
        """Extra stall cycles per access (normally zero)."""
        return self.config.access_cycles

    def _check(self, addr: int, width: int) -> None:
        if addr + width > self.config.size_bytes:
            raise MemoryAccessError(
                f"scratchpad access at {addr:#x} exceeds scratchpad size "
                f"{self.config.size_bytes:#x}")
