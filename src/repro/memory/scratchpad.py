"""Compiler-managed scratchpad memory (SP in Figure 1 of the paper).

The scratchpad is a core-private on-chip memory with single-cycle,
time-predictable access; it occupies its own small address space starting at
zero and is accessed with the ``lwl``/``swl`` family of typed instructions.
"""

from __future__ import annotations

from ..config import ScratchpadConfig
from ..errors import MemoryAccessError
from .main_memory import MainMemory


class Scratchpad:
    """A small, private, single-cycle scratchpad memory."""

    def __init__(self, config: ScratchpadConfig):
        self.config = config
        self._memory = MainMemory(config.size_bytes)
        self.accesses = 0

    def read(self, addr: int, width: int, signed: bool = False) -> int:
        self.accesses += 1
        self._check(addr, width)
        return self._memory.read(addr, width, signed=signed)

    def write(self, addr: int, value: int, width: int) -> None:
        self.accesses += 1
        self._check(addr, width)
        self._memory.write(addr, value, width)

    # -- word fast path -----------------------------------------------------------

    def read_u32(self, addr: int) -> int:
        """Word-aligned unsigned read with a single combined bounds check."""
        self.accesses += 1
        if addr >= 0 and not addr & 3 and addr + 4 <= self.config.size_bytes:
            return int.from_bytes(self._memory._data[addr:addr + 4], "little")
        self._check(addr, 4)
        return self._memory.read(addr, 4)

    def write_u32(self, addr: int, value: int) -> None:
        """Word-aligned write counterpart of :meth:`read_u32`."""
        self.accesses += 1
        if addr >= 0 and not addr & 3 and addr + 4 <= self.config.size_bytes:
            self._memory._data[addr:addr + 4] = \
                (value & 0xFFFF_FFFF).to_bytes(4, "little")
            return
        self._check(addr, 4)
        self._memory.write(addr, value, 4)

    def load_words(self, contents: dict[int, int]) -> None:
        self._memory.load_words(contents)

    def access_cycles(self) -> int:
        """Extra stall cycles per access (normally zero)."""
        return self.config.access_cycles

    def inject_bit_flip(self, addr: int, bit: int) -> int:
        """Flip one stored bit (fault injection; the scratchpad is a raw
        SRAM without ECC, so the flip always lands)."""
        return self._memory.inject_bit_flip(addr, bit)

    def _check(self, addr: int, width: int) -> None:
        if addr + width > self.config.size_bytes:
            raise MemoryAccessError(
                f"scratchpad access at {addr:#x} exceeds scratchpad size "
                f"{self.config.size_bytes:#x}")
