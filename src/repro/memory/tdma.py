"""TDMA arbitration of the shared main memory for CMP configurations.

The paper (Sections 1–3) proposes replicating the Patmos pipeline into a chip
multiprocessor with *statically scheduled* access to the shared main memory.
A time-division multiple access (TDMA) arbiter assigns each core a fixed slot
in a repeating schedule; a core's memory transfer may only start at the
beginning of its own slot.  The worst-case extra waiting time is therefore
independent of what the other cores do — the property that makes the memory
system WCET-analysable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TdmaSchedule:
    """A TDMA schedule: ``num_cores`` slots of ``slot_cycles`` cycles each."""

    num_cores: int
    slot_cycles: int

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("TDMA schedule needs at least one core")
        if self.slot_cycles < 1:
            raise ConfigError("TDMA slot length must be at least one cycle")

    @property
    def period(self) -> int:
        """Length of one full TDMA round in cycles."""
        return self.num_cores * self.slot_cycles

    def slot_start(self, core_id: int, cycle: int) -> int:
        """First cycle >= ``cycle`` at which ``core_id``'s slot begins."""
        self._check_core(core_id)
        offset = core_id * self.slot_cycles
        period = self.period
        phase = (cycle - offset) % period
        if phase == 0:
            return cycle
        return cycle + (period - phase)

    def wait_cycles(self, core_id: int, cycle: int, transfer_cycles: int) -> int:
        """Cycles core ``core_id`` must wait at ``cycle`` before a transfer.

        The transfer must fit into the core's own slot(s); transfers longer
        than one slot occupy consecutive rounds and the core stays blocked, so
        the wait is simply the distance to the next slot start.  Transfers are
        required to fit in a slot for single-slot predictability.
        """
        if transfer_cycles > self.slot_cycles:
            raise ConfigError(
                f"transfer of {transfer_cycles} cycles does not fit into a "
                f"TDMA slot of {self.slot_cycles} cycles")
        start = self.slot_start(core_id, cycle)
        # The transfer must also finish within the slot.
        slot_end = start + self.slot_cycles
        if start + transfer_cycles > slot_end:  # pragma: no cover - defensive
            start = self.slot_start(core_id, slot_end)
        return start - cycle

    def worst_case_wait(self) -> int:
        """Upper bound on the waiting time for any request of any core."""
        return self.period - 1

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(
                f"core id {core_id} out of range for {self.num_cores} cores")


class TdmaArbiter:
    """Per-core view of a TDMA schedule, accumulating arbitration statistics."""

    def __init__(self, schedule: TdmaSchedule, core_id: int):
        schedule._check_core(core_id)
        self.schedule = schedule
        self.core_id = core_id
        self.requests = 0
        self.total_wait_cycles = 0

    def arbitration_delay(self, cycle: int, transfer_cycles: int) -> int:
        """Extra cycles before a transfer issued at ``cycle`` may start."""
        wait = self.schedule.wait_cycles(self.core_id, cycle, transfer_cycles)
        self.requests += 1
        self.total_wait_cycles += wait
        return wait

    def worst_case_delay(self) -> int:
        return self.schedule.worst_case_wait()


class RoundRobinArbiter:
    """A work-conserving round-robin arbiter used as the *unpredictable* baseline.

    Average-case waits are lower than TDMA when other cores are idle, but the
    worst case still has to assume all other cores are queued ahead — and,
    unlike TDMA, the actual wait depends on the other cores' behaviour, which
    is exactly what makes it hard for WCET analysis.
    """

    def __init__(self, num_cores: int, transfer_cycles: int, core_id: int):
        if num_cores < 1:
            raise ConfigError("round-robin arbiter needs at least one core")
        self.num_cores = num_cores
        self.transfer_cycles = transfer_cycles
        self.core_id = core_id
        self.requests = 0
        self.total_wait_cycles = 0

    def arbitration_delay(self, cycle: int, transfer_cycles: int,
                          competing_cores: int = 0) -> int:
        """Wait time given how many other cores currently contend."""
        competing = min(max(competing_cores, 0), self.num_cores - 1)
        wait = competing * transfer_cycles
        self.requests += 1
        self.total_wait_cycles += wait
        return wait

    def worst_case_delay(self) -> int:
        return (self.num_cores - 1) * self.transfer_cycles
