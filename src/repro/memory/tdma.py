"""TDMA schedules for statically arbitrated access to the shared main memory.

The paper (Sections 1–3) proposes replicating the Patmos pipeline into a chip
multiprocessor with *statically scheduled* access to the shared main memory.
A time-division multiple access (TDMA) arbiter assigns each core a fixed slot
in a repeating schedule; a core's memory transfer may only use its own slot.
The worst-case extra waiting time is therefore independent of what the other
cores do — the property that makes the memory system WCET-analysable.

This module holds the schedule itself (generalised to per-core slot weights,
so asymmetric bandwidth guarantees can be expressed) and the closed-form
per-core :class:`TdmaArbiter` used by the decoupled *analytic* CMP mode.  The
shared-state arbiters used by the interleaved co-simulation — including the
TDMA one — live in :mod:`repro.memory.arbiter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TdmaSchedule:
    """A TDMA schedule: one slot per core in a repeating round.

    With the default (empty) ``slot_weights`` every core owns one slot of
    ``slot_cycles`` cycles and the period is ``num_cores * slot_cycles``.
    Weighted schedules give core ``i`` a slot of ``slot_weights[i] *
    slot_cycles`` cycles, so a core with weight 2 gets twice the guaranteed
    bandwidth while the schedule stays fully static and analysable.
    """

    num_cores: int
    slot_cycles: int
    #: Per-core slot weights; empty means weight 1 for every core.
    slot_weights: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("TDMA schedule needs at least one core")
        if self.slot_cycles < 1:
            raise ConfigError("TDMA slot length must be at least one cycle")
        if self.slot_weights:
            # Normalise lists (e.g. parsed CLI values) to a hashable tuple.
            object.__setattr__(self, "slot_weights",
                               tuple(int(w) for w in self.slot_weights))
            if len(self.slot_weights) != self.num_cores:
                raise ConfigError(
                    f"TDMA schedule has {len(self.slot_weights)} slot weights "
                    f"for {self.num_cores} cores")
            if any(weight < 1 for weight in self.slot_weights):
                raise ConfigError("TDMA slot weights must be at least 1")
        # Pre-computed slot geometry: wait_cycles sits on the arbitration
        # fast path of every simulated memory transfer, so the per-core
        # offsets/lengths and the period must not be re-derived (allocating
        # a weights tuple and a prefix slice) on each request.  The fields
        # are frozen, so this is computed exactly once.
        weights = self.slot_weights or (1,) * self.num_cores
        offsets = []
        acc = 0
        for weight in weights:
            offsets.append(acc * self.slot_cycles)
            acc += weight
        object.__setattr__(self, "_weights", weights)
        object.__setattr__(self, "_offsets", tuple(offsets))
        object.__setattr__(self, "_lengths",
                           tuple(w * self.slot_cycles for w in weights))
        object.__setattr__(self, "_period", acc * self.slot_cycles)

    @property
    def weights(self) -> tuple[int, ...]:
        """Effective per-core weights (all 1 when unweighted)."""
        return self._weights

    @property
    def period(self) -> int:
        """Length of one full TDMA round in cycles."""
        return self._period

    def slot_length(self, core_id: int) -> int:
        """Length of ``core_id``'s slot in cycles."""
        self._check_core(core_id)
        return self._lengths[core_id]

    def slot_offset(self, core_id: int) -> int:
        """Start of ``core_id``'s slot relative to the period start."""
        self._check_core(core_id)
        return self._offsets[core_id]

    def slot_start(self, core_id: int, cycle: int) -> int:
        """First cycle >= ``cycle`` at which ``core_id``'s slot begins."""
        offset = self.slot_offset(core_id)
        period = self._period
        phase = (cycle - offset) % period
        if phase == 0:
            return cycle
        return cycle + (period - phase)

    def wait_cycles(self, core_id: int, cycle: int, transfer_cycles: int) -> int:
        """Cycles core ``core_id`` must wait at ``cycle`` before a transfer.

        A transfer may start anywhere inside the core's own slot as long as
        it still *finishes* inside the slot; otherwise it waits for the next
        slot start.  Transfers longer than the slot can never be scheduled
        and are rejected — the CMP system validates this up front.
        """
        self._check_core(core_id)
        length = self._lengths[core_id]
        if transfer_cycles > length:
            raise ConfigError(
                f"transfer of {transfer_cycles} cycles does not fit into a "
                f"TDMA slot of {length} cycles")
        period = self._period
        phase = (cycle - self._offsets[core_id]) % period
        if phase + transfer_cycles <= length:
            return 0  # inside the own slot with enough room left
        return period - phase

    def worst_case_wait(self, core_id: int | None = None,
                        transfer_cycles: int | None = None) -> int:
        """Upper bound on the waiting time before a transfer may start.

        Without arguments this is the schedule-wide bound ``period - 1``
        (a full-slot transfer arriving one cycle into its own slot).  Given a
        core and a transfer length the bound tightens to
        ``period - slot_length + transfer_cycles - 1``: the worst arrival is
        one cycle after the last in-slot start point.
        """
        if core_id is None or transfer_cycles is None:
            return self.period - 1
        length = self.slot_length(core_id)
        if transfer_cycles > length:
            raise ConfigError(
                f"transfer of {transfer_cycles} cycles does not fit into a "
                f"TDMA slot of {length} cycles")
        return self.period - length + transfer_cycles - 1

    def bottleneck_core(self) -> int:
        """The core with the smallest slot (first on ties).

        For any transfer length, :meth:`worst_case_wait` is largest for the
        core with the shortest slot, so this core's refined per-transfer
        bound dominates every other core's — the right core to analyse when
        one WCET bound must cover a whole homogeneous system (e.g. the
        makespan of an exploration design point).
        """
        weights = self.weights
        return min(range(self.num_cores), key=lambda core: weights[core])

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(
                f"core id {core_id} out of range for {self.num_cores} cores")


class TdmaArbiter:
    """Closed-form per-core view of a TDMA schedule (analytic CMP mode).

    Because TDMA grants depend only on the schedule and the requesting
    cycle, a core can be simulated in isolation with this arbiter and still
    observe exactly the delays it would see in the fully interleaved
    co-simulation — the decoupling property the golden tests check.
    """

    def __init__(self, schedule: TdmaSchedule, core_id: int):
        schedule._check_core(core_id)
        self.schedule = schedule
        self.core_id = core_id
        self.requests = 0
        self.total_wait_cycles = 0
        #: Monotonic request counter observed by the stepping engine.
        self.events = 0

    def arbitration_delay(self, cycle: int, transfer_cycles: int) -> int:
        """Extra cycles before a transfer issued at ``cycle`` may start."""
        wait = self.schedule.wait_cycles(self.core_id, cycle, transfer_cycles)
        self.requests += 1
        self.events += 1
        self.total_wait_cycles += wait
        return wait

    def worst_case_delay(self) -> int:
        return self.schedule.worst_case_wait()
