"""Main memory, memory controller, bus arbitration and scratchpad."""

from .arbiter import (
    ARBITER_KINDS,
    ArbiterPort,
    MemoryArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    TdmaBusArbiter,
    make_arbiter,
)
from .controller import ControllerStats, MemoryController, PendingLoad
from .main_memory import MainMemory
from .scratchpad import Scratchpad
from .tdma import TdmaArbiter, TdmaSchedule

__all__ = [
    "ARBITER_KINDS",
    "ArbiterPort",
    "ControllerStats",
    "MainMemory",
    "MemoryArbiter",
    "MemoryController",
    "PendingLoad",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "Scratchpad",
    "TdmaArbiter",
    "TdmaBusArbiter",
    "TdmaSchedule",
    "make_arbiter",
]
