"""Main memory, memory controller, TDMA arbitration and scratchpad."""

from .controller import ControllerStats, MemoryController, PendingLoad
from .main_memory import MainMemory
from .scratchpad import Scratchpad
from .tdma import RoundRobinArbiter, TdmaArbiter, TdmaSchedule

__all__ = [
    "ControllerStats",
    "MainMemory",
    "MemoryController",
    "PendingLoad",
    "RoundRobinArbiter",
    "Scratchpad",
    "TdmaArbiter",
    "TdmaSchedule",
]
