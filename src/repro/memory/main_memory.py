"""Byte-addressable main memory shared by code, data and the stack backing store."""

from __future__ import annotations

import hashlib

from ..config import WORD_SIZE
from ..errors import MemoryAccessError


class MainMemory:
    """A flat, byte-addressable memory with word/half/byte accesses.

    Values are stored little-endian.  Reads of uninitialised locations return
    zero, which keeps workload setup simple while still detecting out-of-range
    accesses.
    """

    def __init__(self, size_bytes: int):
        if size_bytes <= 0:
            raise MemoryAccessError("memory size must be positive")
        self.size_bytes = size_bytes
        self._data = bytearray(size_bytes)

    # -- raw access ---------------------------------------------------------------

    def _check(self, addr: int, width: int) -> None:
        if addr < 0 or addr + width > self.size_bytes:
            raise MemoryAccessError(
                f"access of {width} bytes at {addr:#x} is outside memory "
                f"of {self.size_bytes:#x} bytes")
        if addr % width != 0:
            raise MemoryAccessError(
                f"misaligned {width}-byte access at address {addr:#x}")

    def read(self, addr: int, width: int, signed: bool = False) -> int:
        """Read ``width`` bytes (1, 2 or 4) at ``addr``."""
        self._check(addr, width)
        value = int.from_bytes(self._data[addr:addr + width], "little", signed=False)
        if signed:
            bits = 8 * width
            if value & (1 << (bits - 1)):
                value -= 1 << bits
        return value

    def write(self, addr: int, value: int, width: int) -> None:
        """Write ``width`` bytes (1, 2 or 4) of ``value`` at ``addr``."""
        self._check(addr, width)
        mask = (1 << (8 * width)) - 1
        self._data[addr:addr + width] = (value & mask).to_bytes(width, "little")

    # -- word fast path -----------------------------------------------------------

    def read_u32(self, addr: int) -> int:
        """Word-aligned unsigned read without the general-access overhead.

        The hot path of the simulator engine is full-word accesses; this skips
        the per-access ``_check`` arithmetic re-derivation and the ``signed``
        fixup of :meth:`read`.  Out-of-range or misaligned accesses fall back
        to :meth:`_check` so they raise the same errors.
        """
        if addr >= 0 and not addr & 3 and addr + 4 <= self.size_bytes:
            return int.from_bytes(self._data[addr:addr + 4], "little")
        self._check(addr, 4)
        return self.read(addr, 4)  # pragma: no cover - _check raised above

    def write_u32(self, addr: int, value: int) -> None:
        """Word-aligned write counterpart of :meth:`read_u32`."""
        if addr >= 0 and not addr & 3 and addr + 4 <= self.size_bytes:
            self._data[addr:addr + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")
            return
        self._check(addr, 4)
        self.write(addr, value, 4)  # pragma: no cover - _check raised above

    # -- word convenience ----------------------------------------------------------

    def read_word(self, addr: int, signed: bool = False) -> int:
        if not signed:
            return self.read_u32(addr)
        return self.read(addr, 4, signed=True)

    def write_word(self, addr: int, value: int) -> None:
        self.write_u32(addr, value)

    def load_words(self, contents: dict[int, int]) -> None:
        """Initialise memory from a ``word address -> value`` mapping."""
        for addr, value in contents.items():
            self.write_word(addr, value)

    def read_words(self, addr: int, count: int, signed: bool = False) -> list[int]:
        """Read ``count`` consecutive words starting at ``addr``."""
        return [self.read_word(addr + 4 * i, signed=signed) for i in range(count)]

    def copy(self) -> "MainMemory":
        clone = MainMemory(self.size_bytes)
        clone._data[:] = self._data
        return clone

    def image_digest(self) -> str:
        """Content hash of the whole memory image (bit-identity checks)."""
        return hashlib.sha256(bytes(self._data)).hexdigest()[:16]

    # -- fault injection ----------------------------------------------------------

    def inject_bit_flip(self, addr: int, bit: int) -> int:
        """Flip one bit of the byte at ``addr``; returns the new byte value.

        This is the :mod:`repro.faults` single-event-upset primitive.  It
        works identically on a private memory and on a zero-copy bank view
        (``_data`` is then a ``memoryview`` of the shared storage, and the
        flip is visible through the backing memory like any write).
        """
        if not 0 <= addr < self.size_bytes:
            raise MemoryAccessError(
                f"bit flip at {addr:#x} is outside memory of "
                f"{self.size_bytes:#x} bytes")
        if not 0 <= bit < 8:
            raise MemoryAccessError(
                f"bit index {bit} outside a byte; flips are per-byte")
        self._data[addr] ^= 1 << bit
        return self._data[addr]

    @classmethod
    def view(cls, backing: "MainMemory", base: int,
             size_bytes: int) -> "MainMemory":
        """A window of ``backing`` that behaves like its own main memory.

        The multicore co-simulation gives every core a private bank of one
        shared physical memory: the view aliases ``backing``'s storage (a
        zero-copy ``memoryview``), so writes through a view are visible to
        the backing memory and to overlapping views, while bounds checks
        confine each core to its own bank.
        """
        if size_bytes <= 0 or size_bytes % WORD_SIZE:
            raise MemoryAccessError(
                f"view size must be a positive number of whole words, "
                f"got {size_bytes}")
        if base < 0 or base % WORD_SIZE or base + size_bytes > backing.size_bytes:
            raise MemoryAccessError(
                f"view of {size_bytes:#x} bytes at offset {base:#x} does not "
                f"fit word-aligned into memory of {backing.size_bytes:#x} "
                f"bytes")
        mem = cls.__new__(cls)
        mem.size_bytes = size_bytes
        mem._data = memoryview(backing._data)[base:base + size_bytes]
        return mem
