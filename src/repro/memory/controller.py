"""Memory controller: burst-based transfers, split loads and a write buffer.

All traffic between a core and the shared main memory goes through the
memory controller:

* cache fills (method cache, static/constant cache, object cache) and stack
  cache spill/fill traffic, in units of bursts;
* uncached *split* loads, where the load instruction starts the transfer and
  ``wmem`` waits for its completion;
* stores, which are absorbed by a small write buffer and drained to memory in
  the background (the core only stalls when the buffer is full).

When an arbiter is attached, every *blocking* transfer — cache fills and
spills, split loads, and stores once the buffer forces a stall — is
registered with it before it may start.  The arbiter is either the
closed-form per-core :class:`~repro.memory.tdma.TdmaArbiter` (decoupled
analytic CMP mode) or an :class:`~repro.memory.arbiter.ArbiterPort` of a
shared :class:`~repro.memory.arbiter.MemoryArbiter`, in which case the
transfer is recorded in the *shared* bus state and the delay reflects the
actual concurrent traffic of the other cores (multicore co-simulation).

Known simplification: *background* drains of a non-empty write buffer are
not modelled on the shared bus, so co-simulated contention from buffered
store traffic is understated.  The WCET side is unaffected — the analysis
charges every main-memory store a full arbitrated transfer, so bounds stay
sound (conservative) with respect to the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import MemoryConfig
from ..errors import SimulationError
from .main_memory import MainMemory


@dataclass
class PendingLoad:
    """An outstanding split (decoupled) main-memory load."""

    rd: int
    addr: int
    width: int
    signed: bool
    complete_cycle: int
    value: int


@dataclass
class ControllerStats:
    """Aggregate statistics of one memory controller."""

    reads: int = 0
    writes: int = 0
    read_cycles: int = 0
    write_stall_cycles: int = 0
    arbitration_cycles: int = 0
    words_transferred: int = 0


class MemoryController:
    """Burst-based controller connecting one core to main memory."""

    def __init__(self, memory: MainMemory, config: MemoryConfig,
                 arbiter=None, store_buffer_entries: int = 4):
        self.memory = memory
        self.config = config
        self.arbiter = arbiter
        self.store_buffer_entries = store_buffer_entries
        self.stats = ControllerStats()
        self._pending_load: Optional[PendingLoad] = None
        #: Cycles at which queued store-buffer entries finish draining.
        self._store_drain: list[int] = []

    # -- latency helpers ------------------------------------------------------------

    def transfer_cycles(self, num_words: int) -> int:
        """Raw transfer time for ``num_words`` words (without arbitration)."""
        return self.config.transfer_cycles(num_words)

    def _arbitration(self, cycle: int, transfer_cycles: int) -> int:
        if self.arbiter is None:
            return 0
        wait = self.arbiter.arbitration_delay(cycle, transfer_cycles)
        self.stats.arbitration_cycles += wait
        return wait

    # -- blocking transfers (cache fills, spills) -------------------------------------

    def read_block(self, addr: int, num_words: int, cycle: int) -> tuple[list[int], int]:
        """Read ``num_words`` words; returns ``(values, latency_cycles)``."""
        transfer = self.transfer_cycles(num_words)
        latency = self._arbitration(cycle, min(transfer, self._slot_limit())) + transfer
        values = self.memory.read_words(addr, num_words)
        self.stats.reads += 1
        self.stats.read_cycles += latency
        self.stats.words_transferred += num_words
        return values, latency

    def fill_latency(self, num_words: int, cycle: int) -> int:
        """Latency of a cache fill of ``num_words`` words (data already in memory)."""
        transfer = self.transfer_cycles(num_words)
        return self._arbitration(cycle, min(transfer, self._slot_limit())) + transfer

    def write_block(self, addr: int, values: list[int], cycle: int) -> int:
        """Write a block of words; returns the latency in cycles."""
        transfer = self.transfer_cycles(len(values))
        latency = self._arbitration(cycle, min(transfer, self._slot_limit())) + transfer
        for index, value in enumerate(values):
            self.memory.write_word(addr + 4 * index, value)
        self.stats.writes += 1
        self.stats.words_transferred += len(values)
        return latency

    def _slot_limit(self) -> int:
        """Largest transfer allowed per arbitration round (one burst for TDMA)."""
        return self.config.burst_cycles()

    # -- split (decoupled) loads --------------------------------------------------------

    def start_load(self, rd: int, addr: int, width: int, signed: bool,
                   cycle: int) -> None:
        """Start a split main-memory load (the ``lwm`` half of the pair)."""
        if self._pending_load is not None:
            raise SimulationError(
                "a split load is already outstanding; issue wmem before the "
                "next main-memory load")
        transfer = self.transfer_cycles(1)
        wait = self._arbitration(cycle, min(transfer, self._slot_limit()))
        value = self.memory.read(addr, width, signed=signed)
        self._pending_load = PendingLoad(
            rd=rd, addr=addr, width=width, signed=signed,
            complete_cycle=cycle + wait + transfer, value=value)
        self.stats.reads += 1
        self.stats.read_cycles += wait + transfer
        self.stats.words_transferred += 1

    def wait_for_load(self, cycle: int) -> tuple[Optional[PendingLoad], int]:
        """Complete an outstanding split load (the ``wmem`` half of the pair).

        Returns the completed load (or ``None`` if none was outstanding) and
        the number of stall cycles.
        """
        pending = self._pending_load
        if pending is None:
            return None, 0
        self._pending_load = None
        stall = max(0, pending.complete_cycle - cycle)
        return pending, stall

    @property
    def has_pending_load(self) -> bool:
        return self._pending_load is not None

    # -- write buffer -------------------------------------------------------------------

    def store(self, addr: int, value: int, width: int, cycle: int) -> int:
        """Issue a store through the write buffer; returns stall cycles."""
        self.memory.write(addr, value, width)
        return self.buffer_store(cycle)

    def buffer_store(self, cycle: int) -> int:
        """Account for one store in the write buffer without touching memory.

        Used when the caller has already updated memory (the simulators keep
        data values in main memory directly) and only the write-buffer timing
        is needed.  Returns the stall cycles seen by the core.
        """
        self.stats.writes += 1
        # Retire store-buffer entries that have drained by now.
        self._store_drain = [t for t in self._store_drain if t > cycle]
        write_cycles = self.transfer_cycles(1)
        stall = 0
        if self.store_buffer_entries == 0:
            stall = self._arbitration(cycle, write_cycles) + write_cycles
        elif len(self._store_drain) >= self.store_buffer_entries:
            # Buffer full: wait until the oldest entry drains.
            stall = max(0, min(self._store_drain) - cycle)
            self._store_drain = [t for t in self._store_drain if t > cycle + stall]
        start = max([cycle + stall] + self._store_drain)
        self._store_drain.append(start + write_cycles)
        self.stats.write_stall_cycles += stall
        self.stats.words_transferred += 1
        return stall

    def drain_cycles(self, cycle: int) -> int:
        """Cycles until the write buffer is fully drained (for loads that must wait)."""
        if not self._store_drain:
            return 0
        return max(0, max(self._store_drain) - cycle)
