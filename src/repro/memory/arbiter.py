"""Pluggable arbitration of the shared memory bus for multicore co-simulation.

A :class:`MemoryArbiter` owns the *shared* state of the memory bus — who was
granted the bus until when — and hands out one :class:`ArbiterPort` per core.
The port speaks the same protocol as the closed-form
:class:`~repro.memory.tdma.TdmaArbiter` (``arbitration_delay`` /
``worst_case_delay``), so a :class:`~repro.memory.controller.MemoryController`
or :class:`~repro.sim.cycle.CycleSimulator` plugs into either without knowing
whether it is being simulated alone or interleaved with other cores.

Three policies are provided:

* :class:`TdmaBusArbiter` — grants follow the static
  :class:`~repro.memory.tdma.TdmaSchedule` alone; by construction a grant
  never depends on the other cores' actual traffic, which is the paper's
  decoupling property (the golden tests compare this against independent
  per-core simulation).
* :class:`RoundRobinArbiter` — work-conserving: a request on an idle bus is
  granted immediately, otherwise it waits for the in-flight transfer.  The
  average case beats TDMA when co-runners are idle, but the observed delay
  depends on the co-runners' behaviour — exactly what breaks per-core WCET
  analysis.  The worst case is bounded by ``(N - 1)`` maximal transfers.
* :class:`PriorityArbiter` — fixed priority; only the top-priority core has
  a bounded worst case (one blocking, non-preemptible transfer), every other
  core can starve.

The interleaved scheduler in :mod:`repro.cmp.system` steps cores in global
time order, so requests arrive here with non-decreasing cycle stamps (at
bundle granularity) and the busy-window bookkeeping below sees the actual
concurrent request stream rather than an analytical approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import MemoryConfig
from ..errors import ConfigError
from .tdma import TdmaSchedule

#: Arbitration policies accepted wherever an arbiter is named by string.
ARBITER_KINDS = ("tdma", "round_robin", "priority")


@dataclass
class ArbiterCoreStats:
    """Per-core arbitration statistics of one shared arbiter."""

    requests: int = 0
    wait_cycles: int = 0
    busy_cycles: int = 0  # transfer cycles granted to this core


class ArbiterPort:
    """One core's handle on a shared :class:`MemoryArbiter`.

    Implements the per-core arbiter protocol the memory controller and the
    cycle simulator already speak, translating it into registrations of the
    actual transfer with the shared arbiter state.
    """

    __slots__ = ("arbiter", "core_id", "events")

    def __init__(self, arbiter: "MemoryArbiter", core_id: int):
        self.arbiter = arbiter
        self.core_id = core_id
        #: Monotonic request counter observed by the stepping engine
        #: (run-until-memory-event yields control after each transfer).
        self.events = 0

    def arbitration_delay(self, cycle: int, transfer_cycles: int) -> int:
        """Extra cycles before a transfer issued at ``cycle`` may start."""
        start = self.arbiter.request(self.core_id, cycle, transfer_cycles)
        self.events += 1
        return start - cycle

    def worst_case_delay(self) -> Optional[int]:
        return self.arbiter.worst_case_delay(self.core_id)

    @property
    def requests(self) -> int:
        return self.arbiter.stats[self.core_id].requests

    @property
    def total_wait_cycles(self) -> int:
        return self.arbiter.stats[self.core_id].wait_cycles


class MemoryArbiter:
    """Shared arbitration state of the memory bus, one port per core."""

    #: Policy name used by configuration strings and result records.
    kind = "abstract"

    #: True iff :meth:`grant_cycle` is a pure function of its arguments —
    #: grants never depend on the other cores' traffic or on arbitration
    #: history.  This is the paper's temporal-decoupling property, and the
    #: event-driven co-simulation exploits it directly: under an
    #: order-independent arbiter every core can run to completion without
    #: synchronising with anyone and still observe exactly the delays of the
    #: fully interleaved simulation.
    order_independent = False

    def __init__(self, num_cores: int):
        if num_cores < 1:
            raise ConfigError("a memory arbiter needs at least one core")
        self.num_cores = num_cores
        self.stats: list[ArbiterCoreStats] = [
            ArbiterCoreStats() for _ in range(num_cores)]
        #: First cycle at which the bus is free again.
        self.busy_until = 0
        #: Core that received the most recent grant (round-robin pointer).
        self.last_granted = num_cores - 1

    # -- policy interface -----------------------------------------------------------

    def grant_cycle(self, core_id: int, cycle: int,
                    transfer_cycles: int) -> int:
        """First cycle >= ``cycle`` at which the transfer may start."""
        raise NotImplementedError

    def worst_case_delay(self, core_id: int) -> Optional[int]:
        """Static per-request delay bound, or ``None`` if unbounded."""
        raise NotImplementedError

    def preference_order(self, core_ids: Sequence[int]) -> list[int]:
        """Order in which simultaneous requesters should be served.

        The interleaved scheduler uses this to break ties between cores whose
        local clocks are equal, so simultaneous requests reach
        :meth:`request` in the order the hardware would serve them.
        """
        return sorted(core_ids)

    def preferred_core(self, core_ids: Sequence[int]) -> int:
        """First core of :meth:`preference_order`, without building the list.

        The co-simulation schedulers only ever need the *next* core to
        serve; computing just the minimum keeps tie-breaking allocation-free
        on the hot path.  Must always equal ``preference_order(core_ids)[0]``.
        """
        return min(core_ids)

    def tie_ranks(self) -> Optional[Sequence[int]]:
        """Static per-core tie-break ranks, or ``None`` if state-dependent.

        When the service order of simultaneous requests does not depend on
        arbitration history, the event-driven scheduler can key its ready
        queue on ``(cycle, rank, core_id)`` and never consult the arbiter
        for ties.  Round-robin returns ``None`` (its rotation follows the
        last grant) and is tie-resolved via :meth:`preferred_core` instead.
        """
        return range(self.num_cores)

    # -- shared bookkeeping -----------------------------------------------------------

    def request(self, core_id: int, cycle: int, transfer_cycles: int) -> int:
        """Register a transfer; returns the granted start cycle."""
        self._check_core(core_id)
        if transfer_cycles < 0:
            raise ConfigError("transfer length must be non-negative")
        start = self.grant_cycle(core_id, cycle, transfer_cycles)
        stats = self.stats[core_id]
        stats.requests += 1
        stats.wait_cycles += start - cycle
        stats.busy_cycles += transfer_cycles
        if start + transfer_cycles > self.busy_until:
            self.busy_until = start + transfer_cycles
        self.last_granted = core_id
        self._after_grant(core_id, cycle, start, transfer_cycles)
        return start

    def _after_grant(self, core_id: int, cycle: int, start: int,
                     transfer_cycles: int) -> None:
        """Policy hook for extra bookkeeping after a grant (default: none)."""

    def port(self, core_id: int) -> ArbiterPort:
        self._check_core(core_id)
        return ArbiterPort(self, core_id)

    def reset(self) -> None:
        """Forget all grants and statistics (fresh co-simulation run)."""
        self.stats = [ArbiterCoreStats() for _ in range(self.num_cores)]
        self.busy_until = 0
        self.last_granted = self.num_cores - 1

    def describe(self) -> str:
        return f"{self.kind}({self.num_cores} cores)"

    def stats_summary(self) -> dict:
        """JSON-serializable aggregate view of the arbitration activity."""
        return {
            "kind": self.kind,
            "requests": [s.requests for s in self.stats],
            "wait_cycles": [s.wait_cycles for s in self.stats],
            "busy_cycles": [s.busy_cycles for s in self.stats],
        }

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(
                f"core id {core_id} out of range for {self.num_cores} cores")


class TdmaBusArbiter(MemoryArbiter):
    """Shared-bus TDMA arbiter: grants follow the static schedule alone.

    ``grant_cycle`` deliberately ignores the busy window: a transfer is
    confined to the requesting core's own slot, so grants can never overlap
    and — crucially — never depend on what the other cores do.
    """

    kind = "tdma"

    #: The decoupling property itself: a TDMA grant depends only on the
    #: schedule and the requesting cycle, never on concurrent traffic.
    order_independent = True

    def __init__(self, schedule: TdmaSchedule):
        super().__init__(schedule.num_cores)
        self.schedule = schedule
        # Closed-form grant arithmetic: the schedule geometry is frozen, so
        # the per-core offsets/lengths and the period are read exactly once
        # and every grant is three integer operations plus the fit check —
        # no method dispatch into the schedule on the hot path.
        self._period = schedule.period
        self._offsets = tuple(schedule.slot_offset(core)
                              for core in range(schedule.num_cores))
        self._lengths = tuple(schedule.slot_length(core)
                              for core in range(schedule.num_cores))

    def grant_cycle(self, core_id: int, cycle: int,
                    transfer_cycles: int) -> int:
        length = self._lengths[core_id]
        if transfer_cycles > length:
            raise ConfigError(
                f"transfer of {transfer_cycles} cycles does not fit into a "
                f"TDMA slot of {length} cycles")
        period = self._period
        phase = (cycle - self._offsets[core_id]) % period
        if phase + transfer_cycles <= length:
            return cycle  # inside the own slot with enough room left
        return cycle + period - phase

    def worst_case_delay(self, core_id: int) -> int:
        return self.schedule.worst_case_wait()

    def describe(self) -> str:
        weights = self.schedule.weights
        detail = (f", weights {':'.join(map(str, weights))}"
                  if self.schedule.slot_weights else "")
        return (f"tdma({self.num_cores} cores, slot "
                f"{self.schedule.slot_cycles}{detail}, "
                f"period {self.schedule.period})")


class RoundRobinArbiter(MemoryArbiter):
    """Work-conserving round-robin arbitration of the shared bus.

    Requests are served in arrival order: an idle bus is granted
    immediately, a busy bus delays the request until the in-flight transfer
    completes.  Simultaneous requests are ordered round-robin starting after
    the last granted core (see :meth:`preference_order`).
    """

    kind = "round_robin"

    def __init__(self, num_cores: int,
                 max_transfer_cycles: Optional[int] = None):
        super().__init__(num_cores)
        #: Longest possible transfer, used only for the worst-case bound.
        self.max_transfer_cycles = max_transfer_cycles

    def grant_cycle(self, core_id: int, cycle: int,
                    transfer_cycles: int) -> int:
        return max(cycle, self.busy_until)

    def preference_order(self, core_ids: Sequence[int]) -> list[int]:
        start = (self.last_granted + 1) % self.num_cores
        return sorted(core_ids,
                      key=lambda cid: (cid - start) % self.num_cores)

    def preferred_core(self, core_ids: Sequence[int]) -> int:
        start = (self.last_granted + 1) % self.num_cores
        return min(core_ids, key=lambda cid: (cid - start) % self.num_cores)

    def tie_ranks(self) -> Optional[Sequence[int]]:
        return None  # service order rotates with every grant

    def worst_case_delay(self, core_id: int) -> Optional[int]:
        if self.max_transfer_cycles is None:
            return None
        return (self.num_cores - 1) * self.max_transfer_cycles

    def describe(self) -> str:
        return f"round_robin({self.num_cores} cores)"


class PriorityArbiter(MemoryArbiter):
    """Fixed-priority arbitration: lower priority value wins.

    Transfers are non-preemptible, so even the top-priority core can be
    blocked by one in-flight transfer — but never by the *queue* behind it:
    a top-priority request jumps ahead of waiting lower-priority requests
    and starts as soon as the transfer physically occupying the bus at its
    request cycle completes.  That is what makes its worst case exactly one
    maximal transfer.  Every lower-priority core is served first-come
    first-served behind the busy window and has no static bound at all
    (``worst_case_delay`` returns ``None``); their modelled delays are a
    lower bound, since a real bus would additionally push them back behind
    every top-priority transfer that overtakes them.
    """

    kind = "priority"

    def __init__(self, num_cores: int,
                 priorities: Optional[Sequence[int]] = None,
                 max_transfer_cycles: Optional[int] = None):
        super().__init__(num_cores)
        if priorities is None:
            priorities = range(num_cores)
        self.priorities = tuple(priorities)
        if len(self.priorities) != num_cores:
            raise ConfigError(
                f"priority arbiter has {len(self.priorities)} priorities "
                f"for {num_cores} cores")
        self.max_transfer_cycles = max_transfer_cycles
        #: Recently granted bus intervals ``(start, end)``, pruned as time
        #: advances; used to find the transfer in flight at a given cycle.
        self._grants: list[tuple[int, int]] = []

    def grant_cycle(self, core_id: int, cycle: int,
                    transfer_cycles: int) -> int:
        if core_id == self.top_core():
            # Wait only for the transfer occupying the bus right now, not
            # for the whole FCFS queue of lower-priority grants.
            for start, end in self._grants:
                if start <= cycle < end:
                    return end
            return cycle
        return max(cycle, self.busy_until)

    def _after_grant(self, core_id: int, cycle: int, start: int,
                     transfer_cycles: int) -> None:
        # Prune intervals that ended before this *request* cycle: requests
        # arrive in (bundle-granular) global time order, so they can no
        # longer contain any future request cycle.
        self._grants = [(s, e) for s, e in self._grants if e > cycle]
        self._grants.append((start, start + transfer_cycles))

    def reset(self) -> None:
        super().reset()
        self._grants = []

    def preference_order(self, core_ids: Sequence[int]) -> list[int]:
        return sorted(core_ids, key=lambda cid: (self.priorities[cid], cid))

    def preferred_core(self, core_ids: Sequence[int]) -> int:
        return min(core_ids, key=lambda cid: (self.priorities[cid], cid))

    def tie_ranks(self) -> Optional[Sequence[int]]:
        # (rank, core_id) ordering equals the (priority, core_id) key of
        # preference_order, so the priorities themselves are the ranks.
        return self.priorities

    def top_core(self) -> int:
        """The core with the highest priority (the only bounded one)."""
        return min(range(self.num_cores),
                   key=lambda cid: (self.priorities[cid], cid))

    def worst_case_delay(self, core_id: int) -> Optional[int]:
        if core_id != self.top_core() or self.max_transfer_cycles is None:
            return None
        return self.max_transfer_cycles

    def describe(self) -> str:
        return (f"priority({self.num_cores} cores, priorities "
                f"{list(self.priorities)})")


def make_arbiter(kind: str, num_cores: int, memory: MemoryConfig,
                 schedule: Optional[TdmaSchedule] = None,
                 priorities: Optional[Sequence[int]] = None) -> MemoryArbiter:
    """Build a shared arbiter by policy name.

    ``memory`` supplies the burst timing: the maximal transfer on the bus is
    one burst, which parameterises the round-robin and priority worst-case
    bounds and the default TDMA slot length.
    """
    burst = memory.burst_cycles()
    if kind == "tdma":
        if schedule is None:
            schedule = TdmaSchedule(num_cores=num_cores, slot_cycles=burst)
        if schedule.num_cores < num_cores:
            raise ConfigError(
                f"TDMA schedule has {schedule.num_cores} slots for "
                f"{num_cores} cores")
        return TdmaBusArbiter(schedule)
    if kind == "round_robin":
        return RoundRobinArbiter(num_cores, max_transfer_cycles=burst)
    if kind == "priority":
        return PriorityArbiter(num_cores, priorities=priorities,
                               max_transfer_cycles=burst)
    raise ConfigError(
        f"unknown arbiter kind {kind!r}; choose from {ARBITER_KINDS}")
