"""Generic set-associative cache used for the split data caches and baselines.

The same mechanism backs several components of the reproduction:

* the *static/constant cache* (C$): a conventional set-associative cache for
  static data and constants, whose addresses are statically known and hence
  analysable;
* the *object/heap cache* (D$): a highly associative cache for heap-allocated
  data (modelled here with a large associativity, as proposed in the paper);
* the *unified data cache* baseline used in experiment E5;
* the *conventional instruction cache* baseline used in experiment E4.

Only tags are modelled — data always lives in main memory, which is
functionally equivalent for timing studies on a single core (write-through,
no-allocate-on-write policy by default, as is common for small real-time
cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MemoryConfig, SetAssocCacheConfig
from ..errors import CacheError
from .stats import CacheStats


@dataclass
class CacheAccessResult:
    """Outcome of a cache access."""

    hit: bool
    stall_cycles: int
    fill_words: int = 0
    write_through_stall: int = 0


class SetAssociativeCache:
    """A set-associative cache with LRU or FIFO replacement."""

    def __init__(self, config: SetAssocCacheConfig, memory_config: MemoryConfig,
                 name: str = "cache"):
        self.config = config
        self.memory_config = memory_config
        self.name = name
        self.stats = CacheStats()
        num_lines = config.size_bytes // config.line_bytes
        self.num_sets = num_lines // config.associativity
        if self.num_sets < 1:
            raise CacheError(
                f"{name}: size {config.size_bytes} too small for associativity "
                f"{config.associativity} with {config.line_bytes}-byte lines")
        #: Per-set list of resident tags in replacement order (front = victim).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        # Hot-path constants: the line-fill cost never changes and the LRU
        # test is per-access, so resolve both once.
        self._lru = config.replacement == "lru"
        self._miss_cycles = memory_config.transfer_cycles(self.line_words)
        self._last_hit = True

    # -- address mapping -----------------------------------------------------------

    def line_address(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def set_index(self, addr: int) -> int:
        return self.line_address(addr) % self.num_sets

    def tag(self, addr: int) -> int:
        return self.line_address(addr) // self.num_sets

    @property
    def line_words(self) -> int:
        return self.config.line_bytes // 4

    def contains(self, addr: int) -> bool:
        return self.tag(addr) in self._sets[self.set_index(addr)]

    def miss_cycles(self) -> int:
        """Stall cycles to fill one line from main memory."""
        return self._miss_cycles

    # -- access ---------------------------------------------------------------------

    def _insert(self, set_lines: list[int], tag: int) -> bool:
        evicted = False
        if len(set_lines) >= self.config.associativity:
            set_lines.pop(0)
            evicted = True
            self.stats.evictions += 1
        set_lines.append(tag)
        return evicted

    def read(self, addr: int) -> CacheAccessResult:
        """Simulate a read access; returns hit/miss and stall cycles."""
        stall = self.read_stall(addr)
        if self._last_hit:
            return CacheAccessResult(hit=True, stall_cycles=0)
        return CacheAccessResult(hit=False, stall_cycles=stall,
                                 fill_words=self.line_words)

    def read_stall(self, addr: int) -> int:
        """Stall cycles of a read — the allocation-free simulator hot path."""
        line = addr // self.config.line_bytes
        set_lines = self._sets[line % self.num_sets]
        tag = line // self.num_sets
        stats = self.stats
        if tag in set_lines:
            if self._lru:
                set_lines.remove(tag)
                set_lines.append(tag)
            stats.accesses += 1
            stats.hits += 1
            self._last_hit = True
            return 0
        stall = self._miss_cycles
        self._insert(set_lines, tag)
        stats.record(hit=False, fill_words=self.line_words,
                     stall_cycles=stall)
        self._last_hit = False
        return stall

    def write(self, addr: int) -> CacheAccessResult:
        """Simulate a write access under the configured write policy."""
        self.write_stall(addr)
        return CacheAccessResult(hit=self._last_hit, stall_cycles=0)

    def write_stall(self, addr: int) -> int:
        """Write counterpart of :meth:`read_stall` (always zero stalls).

        Write-through traffic is handled by the memory controller's write
        buffer; the cache itself does not stall the pipeline on writes.
        """
        line = addr // self.config.line_bytes
        set_lines = self._sets[line % self.num_sets]
        tag = line // self.num_sets
        stats = self.stats
        stats.accesses += 1
        if tag in set_lines:
            if self._lru:
                set_lines.remove(tag)
                set_lines.append(tag)
            stats.hits += 1
            self._last_hit = True
        else:
            stats.misses += 1
            if self.config.write_allocate:
                self._insert(set_lines, tag)
            self._last_hit = False
        return 0

    def flush(self) -> None:
        for set_lines in self._sets:
            set_lines.clear()


class IdealCache:
    """A cache that always hits — used for 'perfect memory' baselines."""

    def __init__(self, name: str = "ideal"):
        self.name = name
        self.stats = CacheStats()

    def read(self, addr: int) -> CacheAccessResult:
        self.stats.record(hit=True)
        return CacheAccessResult(hit=True, stall_cycles=0)

    def write(self, addr: int) -> CacheAccessResult:
        self.stats.record(hit=True)
        return CacheAccessResult(hit=True, stall_cycles=0)

    def read_stall(self, addr: int) -> int:
        self.stats.record(hit=True)
        return 0

    def write_stall(self, addr: int) -> int:
        self.stats.record(hit=True)
        return 0

    def contains(self, addr: int) -> bool:  # pragma: no cover - trivial
        return True

    def flush(self) -> None:
        return None
