"""Shared cache statistics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Aggregate statistics of one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fill_words: int = 0
    stall_cycles: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (1.0 for an unused cache)."""
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate

    def record(self, hit: bool, fill_words: int = 0, stall_cycles: int = 0) -> None:
        """Record one access."""
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self.fill_words += fill_words
        self.stall_cycles += stall_cycles
