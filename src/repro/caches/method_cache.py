"""Method cache: the time-predictable instruction cache of Patmos.

The method cache (Schoeberl 2004, adopted in Section 3.3 of the paper) loads
*whole functions* at call and return.  Because instruction-cache misses can
then only occur at call, return and ``brcf`` instructions, the WCET analysis
does not have to model cache state at every instruction fetch — which is the
central analysability argument for this organisation.

The cache is organised in fixed-size blocks.  A function occupies a
contiguous group of ``ceil(size / block_bytes)`` blocks; on a miss, enough
victim functions are evicted (FIFO or LRU order) to make room, and the fill
stalls the pipeline for the burst-transfer time of the whole function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MemoryConfig, MethodCacheConfig
from .stats import CacheStats


@dataclass
class _Entry:
    name: str
    size_bytes: int
    blocks: int
    last_use: int


@dataclass
class MethodCacheResult:
    """Outcome of a method-cache access."""

    hit: bool
    stall_cycles: int
    fill_words: int = 0
    evicted: tuple[str, ...] = ()
    oversized: bool = False


class MethodCache:
    """A method cache with FIFO or LRU replacement at function granularity."""

    def __init__(self, config: MethodCacheConfig, memory_config: MemoryConfig):
        self.config = config
        self.memory_config = memory_config
        self.stats = CacheStats()
        #: Resident functions in replacement order (front = next victim).
        self._entries: list[_Entry] = []
        self._access_counter = 0

    # -- queries -------------------------------------------------------------------

    def blocks_for(self, size_bytes: int) -> int:
        """Number of cache blocks a function of ``size_bytes`` occupies."""
        if size_bytes <= 0:
            return 1
        return -(-size_bytes // self.config.block_bytes)

    def fits(self, size_bytes: int) -> bool:
        """True if a function of this size can reside in the cache at all."""
        return self.blocks_for(size_bytes) <= self.config.num_blocks

    def contains(self, name: str) -> bool:
        return any(entry.name == name for entry in self._entries)

    def resident_functions(self) -> list[str]:
        return [entry.name for entry in self._entries]

    def used_blocks(self) -> int:
        return sum(entry.blocks for entry in self._entries)

    def fill_cycles(self, size_bytes: int) -> int:
        """Stall cycles to load a function of ``size_bytes`` from main memory."""
        words = -(-size_bytes // 4)
        return self.memory_config.transfer_cycles(words)

    # -- access --------------------------------------------------------------------

    def access(self, name: str, size_bytes: int) -> MethodCacheResult:
        """Access (call/return/brcf into) function ``name`` of ``size_bytes``.

        Returns whether the access hit and how long the pipeline stalls.
        """
        self._access_counter += 1
        if self.contains(name):
            if self.config.replacement == "lru":
                for entry in self._entries:
                    if entry.name == name:
                        entry.last_use = self._access_counter
                        self._entries.remove(entry)
                        self._entries.append(entry)
                        break
            self.stats.record(hit=True)
            return MethodCacheResult(hit=True, stall_cycles=0)

        fill_words = -(-size_bytes // 4)
        stall = self.fill_cycles(size_bytes)
        if not self.fits(size_bytes):
            # Oversized functions stream through the cache without being kept;
            # the compiler's function splitter is expected to avoid this case.
            self.stats.record(hit=False, fill_words=fill_words, stall_cycles=stall)
            return MethodCacheResult(hit=False, stall_cycles=stall,
                                     fill_words=fill_words, oversized=True)

        needed = self.blocks_for(size_bytes)
        evicted: list[str] = []
        while self.config.num_blocks - self.used_blocks() < needed:
            victim = self._entries.pop(0)
            evicted.append(victim.name)
            self.stats.evictions += 1
        self._entries.append(_Entry(
            name=name, size_bytes=size_bytes, blocks=needed,
            last_use=self._access_counter))
        self.stats.record(hit=False, fill_words=fill_words, stall_cycles=stall)
        return MethodCacheResult(hit=False, stall_cycles=stall,
                                 fill_words=fill_words, evicted=tuple(evicted))

    def flush(self) -> None:
        """Invalidate all cached functions."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MethodCache(blocks={self.config.num_blocks}, "
                f"resident={self.resident_functions()})")


@dataclass
class AlwaysMissMethodCache:
    """Degenerate method cache that misses on every access (analysis baseline)."""

    memory_config: MemoryConfig
    stats: CacheStats = field(default_factory=CacheStats)

    def access(self, name: str, size_bytes: int) -> MethodCacheResult:
        words = -(-size_bytes // 4)
        stall = self.memory_config.transfer_cycles(words)
        self.stats.record(hit=False, fill_words=words, stall_cycles=stall)
        return MethodCacheResult(hit=False, stall_cycles=stall, fill_words=words)

    def contains(self, name: str) -> bool:
        return False

    def flush(self) -> None:
        return None
