"""Time-predictable caches of Patmos and the conventional baselines."""

from .hierarchy import CacheHierarchy, HierarchyOptions
from .method_cache import AlwaysMissMethodCache, MethodCache, MethodCacheResult
from .set_assoc import CacheAccessResult, IdealCache, SetAssociativeCache
from .stack_cache import StackCache, StackCacheResult
from .stats import CacheStats

__all__ = [
    "AlwaysMissMethodCache",
    "CacheAccessResult",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyOptions",
    "IdealCache",
    "MethodCache",
    "MethodCacheResult",
    "SetAssociativeCache",
    "StackCache",
    "StackCacheResult",
]
