"""Cache hierarchy wiring for one Patmos core.

:class:`CacheHierarchy` bundles the typed caches of one core (method cache,
stack cache, static/constant cache, object cache, scratchpad) and offers the
dispatch used by the cycle-accurate simulator: given a typed memory access it
selects the right cache and returns the stall cycles.

Two baseline organisations are provided for the experiments:

* ``unified_data_cache=True`` routes *all* typed data accesses (static,
  object and stack) through a single conventional cache — the baseline for
  experiment E5;
* ``conventional_icache=True`` replaces the method cache by a conventional
  set-associative instruction cache accessed on every fetch — the baseline
  for experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import PatmosConfig, SetAssocCacheConfig
from ..errors import CacheError
from ..isa.opcodes import MemType
from .method_cache import MethodCache, MethodCacheResult
from .set_assoc import CacheAccessResult, IdealCache, SetAssociativeCache
from .stack_cache import StackCache


@dataclass
class HierarchyOptions:
    """Cache-organisation variants used by the experiments."""

    unified_data_cache: bool = False
    conventional_icache: bool = False
    ideal_data_caches: bool = False
    icache_config: Optional[SetAssocCacheConfig] = None


class CacheHierarchy:
    """All caches of one Patmos core."""

    def __init__(self, config: PatmosConfig,
                 options: Optional[HierarchyOptions] = None):
        self.config = config
        self.options = options or HierarchyOptions()

        self.method_cache: Optional[MethodCache] = None
        self.icache: Optional[SetAssociativeCache] = None
        if self.options.conventional_icache:
            icache_config = self.options.icache_config or SetAssocCacheConfig(
                size_bytes=config.method_cache.size_bytes,
                line_bytes=16,
                associativity=2,
            )
            self.icache = SetAssociativeCache(
                icache_config, config.memory, name="icache")
        else:
            self.method_cache = MethodCache(config.method_cache, config.memory)

        self.stack_cache = StackCache(
            config.stack_cache, config.memory, config.memory_map.stack_top)

        if self.options.ideal_data_caches:
            self.static_cache = IdealCache("static")
            self.object_cache = IdealCache("object")
        elif self.options.unified_data_cache:
            unified = SetAssociativeCache(
                config.static_cache, config.memory, name="unified")
            self.static_cache = unified
            self.object_cache = unified
        else:
            self.static_cache = SetAssociativeCache(
                config.static_cache, config.memory, name="static")
            self.object_cache = SetAssociativeCache(
                config.data_cache, config.memory, name="object")

    # -- instruction side ---------------------------------------------------------

    def instruction_access(self, name: str, size_bytes: int) -> MethodCacheResult:
        """Method-cache access at a call/return/brcf."""
        if self.method_cache is None:
            raise CacheError("core is configured with a conventional I-cache")
        return self.method_cache.access(name, size_bytes)

    def fetch_access(self, addr: int) -> CacheAccessResult:
        """Per-fetch access for the conventional instruction-cache baseline."""
        if self.icache is None:
            return CacheAccessResult(hit=True, stall_cycles=0)
        return self.icache.read(addr)

    def fetch_stall(self, addr: int) -> int:
        """Allocation-free per-fetch stall (hot path of :meth:`fetch_access`)."""
        if self.icache is None:
            return 0
        return self.icache.read_stall(addr)

    @property
    def uses_method_cache(self) -> bool:
        return self.method_cache is not None

    # -- data side ------------------------------------------------------------------

    def data_cache_for(self, mem_type: MemType):
        """Return the cache object serving a typed access (or None for main/SP)."""
        if mem_type is MemType.STATIC:
            return self.static_cache
        if mem_type is MemType.OBJECT:
            return self.object_cache
        if mem_type is MemType.STACK:
            return self.stack_cache
        return None

    def data_read(self, mem_type: MemType, addr: int) -> int:
        """Stall cycles of a typed data read (cache side only)."""
        if mem_type is MemType.STACK:
            if self.options.unified_data_cache:
                # Baseline: stack data competes with everything else in the
                # single unified cache.
                return self.static_cache.read_stall(addr)
            # Stack-cache hits are guaranteed by construction; the check that
            # the access falls into the cached window happens in the simulator.
            return 0
        if mem_type is MemType.STATIC:
            return self.static_cache.read_stall(addr)
        if mem_type is MemType.OBJECT:
            return self.object_cache.read_stall(addr)
        return 0

    def data_write(self, mem_type: MemType, addr: int) -> int:
        """Stall cycles of a typed data write (cache side only)."""
        if mem_type is MemType.STACK:
            if self.options.unified_data_cache:
                return self.static_cache.write_stall(addr)
            return 0
        if mem_type is MemType.STATIC:
            return self.static_cache.write_stall(addr)
        if mem_type is MemType.OBJECT:
            return self.object_cache.write_stall(addr)
        return 0

    # -- statistics -------------------------------------------------------------------

    def stats_summary(self) -> dict[str, dict]:
        """Per-cache statistics as plain dictionaries (for reports)."""
        summary: dict[str, dict] = {}
        if self.method_cache is not None:
            summary["method_cache"] = vars(self.method_cache.stats).copy()
        if self.icache is not None:
            summary["icache"] = vars(self.icache.stats).copy()
        summary["stack_cache"] = vars(self.stack_cache.stats).copy()
        summary["static_cache"] = vars(self.static_cache.stats).copy()
        if self.object_cache is not self.static_cache:
            summary["object_cache"] = vars(self.object_cache.stats).copy()
        return summary
