"""Stack cache: a direct-mapped on-chip buffer for stack-allocated data.

Patmos serves stack-allocated data from a dedicated *stack cache* (Section
3.3).  The cache is explicitly managed by three instructions that the
compiler inserts around function frames:

* ``sres n`` — reserve ``n`` words on function entry (may *spill* older frames
  to main memory when the cache overflows);
* ``sens n`` — ensure ``n`` words are present after returning from a call
  (may *fill* from main memory if the callee spilled the caller's frame);
* ``sfree n`` — free ``n`` words on function exit.

Two special registers track the cached window of the downward-growing stack:
``st`` (stack top) and ``ss`` (spill pointer, the high end of the cached
region).  The invariant is ``st <= ss`` and ``ss - st <= cache size``.

Only the *occupancy* needs to be modelled for timing: loads and stores whose
address falls inside ``[st, ss)`` hit by construction, and spill/fill traffic
is a deterministic function of the reserve/ensure amounts — which is exactly
why the stack cache is easy to analyse for WCET.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MemoryConfig, StackCacheConfig
from ..errors import StackCacheError
from .stats import CacheStats


@dataclass
class StackCacheResult:
    """Outcome of one stack-control operation."""

    spilled_words: int = 0
    filled_words: int = 0
    stall_cycles: int = 0


class StackCache:
    """Occupancy and timing model of the Patmos stack cache."""

    def __init__(self, config: StackCacheConfig, memory_config: MemoryConfig,
                 stack_top: int):
        self.config = config
        self.memory_config = memory_config
        self.stats = CacheStats()
        #: Stack top pointer (lowest cached address).
        self.st = stack_top
        #: Spill pointer (one past the highest cached address).
        self.ss = stack_top
        self.max_occupancy = 0
        self.total_spilled_words = 0
        self.total_filled_words = 0

    # -- invariants -----------------------------------------------------------------

    @property
    def occupancy_bytes(self) -> int:
        return self.ss - self.st

    @property
    def size_bytes(self) -> int:
        return self.config.size_bytes

    def contains(self, addr: int, width: int = 4) -> bool:
        """True if the access falls inside the cached stack window."""
        return self.st <= addr and addr + width <= self.ss

    def _transfer_cycles(self, words: int) -> int:
        if words <= 0:
            return 0
        return self.memory_config.transfer_cycles(words)

    def _check(self) -> None:
        if self.st > self.ss:
            raise StackCacheError(
                f"stack cache pointers inverted: st={self.st:#x} > ss={self.ss:#x}")
        if self.occupancy_bytes > self.size_bytes:  # pragma: no cover - defensive
            raise StackCacheError("stack cache occupancy exceeds its size")

    # -- stack-control instructions ----------------------------------------------------

    def reserve(self, words: int) -> StackCacheResult:
        """``sres words``: reserve space, spilling old frames if necessary."""
        if words < 0:
            raise StackCacheError("sres amount must be non-negative")
        bytes_needed = 4 * words
        if bytes_needed > self.size_bytes:
            raise StackCacheError(
                f"cannot reserve {words} words: frame exceeds the stack cache "
                f"of {self.size_bytes} bytes (shadow stack must be used)")
        self.st -= bytes_needed
        spilled_words = 0
        if self.occupancy_bytes > self.size_bytes:
            spill_bytes = self.occupancy_bytes - self.size_bytes
            spilled_words = spill_bytes // 4
            self.ss -= spill_bytes
        stall = self._transfer_cycles(spilled_words)
        self._account(spilled_words=spilled_words, stall=stall)
        self._check()
        return StackCacheResult(spilled_words=spilled_words, stall_cycles=stall)

    def ensure(self, words: int) -> StackCacheResult:
        """``sens words``: make sure ``words`` words above ``st`` are cached."""
        if words < 0:
            raise StackCacheError("sens amount must be non-negative")
        bytes_needed = 4 * words
        if bytes_needed > self.size_bytes:
            raise StackCacheError(
                f"cannot ensure {words} words: exceeds the stack cache size")
        filled_words = 0
        if self.occupancy_bytes < bytes_needed:
            fill_bytes = bytes_needed - self.occupancy_bytes
            filled_words = fill_bytes // 4
            self.ss += fill_bytes
        stall = self._transfer_cycles(filled_words)
        self._account(filled_words=filled_words, stall=stall)
        self._check()
        return StackCacheResult(filled_words=filled_words, stall_cycles=stall)

    def free(self, words: int) -> StackCacheResult:
        """``sfree words``: release the current frame (never accesses memory)."""
        if words < 0:
            raise StackCacheError("sfree amount must be non-negative")
        self.st += 4 * words
        if self.st > self.ss:
            # Freed more than was cached; the spill pointer follows.
            self.ss = self.st
        self._account()
        self._check()
        return StackCacheResult()

    def _account(self, spilled_words: int = 0, filled_words: int = 0,
                 stall: int = 0) -> None:
        self.total_spilled_words += spilled_words
        self.total_filled_words += filled_words
        self.stats.record(hit=(spilled_words == 0 and filled_words == 0),
                          fill_words=spilled_words + filled_words,
                          stall_cycles=stall)
        self.max_occupancy = max(self.max_occupancy, self.occupancy_bytes)

    # -- data accesses ------------------------------------------------------------------

    def access_ok(self, addr: int, width: int) -> bool:
        """Check a typed stack access; accesses must hit the cached window."""
        return self.contains(addr, width)
