"""Chip-multiprocessor (CMP) model: replicated Patmos cores with TDMA memory.

The paper proposes building a CMP from replicated Patmos pipelines with
*statically scheduled* access to the shared main memory (Sections 1–3): each
core owns a fixed TDMA slot, so the worst-case waiting time of a memory
transfer is independent of the other cores' behaviour.  This module wires
several :class:`~repro.sim.cycle.CycleSimulator` cores to one TDMA schedule
and provides both simulation and the corresponding WCET view.

Because TDMA decouples the cores completely, each core can be simulated
independently with its own arbiter — the interference is a function of the
schedule alone, never of the other cores' actual memory traffic.  That is the
property the experiments demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import ConfigError
from ..memory.tdma import TdmaArbiter, TdmaSchedule
from ..program.linker import Image
from ..sim.cycle import CycleSimulator
from ..sim.results import SimResult
from ..wcet.analyzer import WcetOptions, WcetResult, analyze_wcet


def default_tdma_schedule(num_cores: int, config: PatmosConfig = DEFAULT_CONFIG
                          ) -> TdmaSchedule:
    """A TDMA schedule with one burst-sized slot per core."""
    return TdmaSchedule(num_cores=num_cores,
                        slot_cycles=config.memory.burst_cycles())


@dataclass
class CoreResult:
    """Simulation and analysis results of one core in the CMP."""

    core_id: int
    sim: SimResult
    wcet: Optional[WcetResult] = None

    @property
    def observed_cycles(self) -> int:
        return self.sim.cycles

    @property
    def wcet_cycles(self) -> Optional[int]:
        return self.wcet.wcet_cycles if self.wcet is not None else None


@dataclass
class CmpResult:
    """Results of running a program mix on the chip multiprocessor."""

    num_cores: int
    schedule: TdmaSchedule
    cores: list[CoreResult] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        """Cycles until the last core finishes."""
        return max(core.observed_cycles for core in self.cores)

    def observed_by_core(self) -> list[int]:
        return [core.observed_cycles for core in self.cores]

    def wcet_by_core(self) -> list[Optional[int]]:
        return [core.wcet_cycles for core in self.cores]


class CmpSystem:
    """A chip multiprocessor of Patmos cores sharing memory via TDMA."""

    def __init__(self, images: list[Image], config: PatmosConfig = DEFAULT_CONFIG,
                 schedule: Optional[TdmaSchedule] = None):
        if not images:
            raise ConfigError("a CMP system needs at least one core image")
        self.images = images
        self.config = config
        self.schedule = schedule or default_tdma_schedule(len(images), config)
        if self.schedule.num_cores < len(images):
            raise ConfigError(
                f"TDMA schedule has {self.schedule.num_cores} slots for "
                f"{len(images)} cores")

    @classmethod
    def homogeneous(cls, image: Image, num_cores: int,
                    config: PatmosConfig = DEFAULT_CONFIG,
                    slot_cycles: Optional[int] = None) -> "CmpSystem":
        """A CMP running the same image on every core.

        This is the configuration the design-space exploration sweeps: the
        TDMA slot defaults to one burst transfer per core, or can be widened
        or narrowed via ``slot_cycles``.
        """
        if num_cores < 1:
            raise ConfigError("a CMP system needs at least one core")
        if slot_cycles is None:
            schedule = default_tdma_schedule(num_cores, config)
        else:
            schedule = TdmaSchedule(num_cores=num_cores,
                                    slot_cycles=slot_cycles)
        return cls([image] * num_cores, config=config, schedule=schedule)

    @property
    def num_cores(self) -> int:
        return len(self.images)

    def run(self, analyse: bool = True, strict: bool = False,
            max_bundles: int = 2_000_000) -> CmpResult:
        """Simulate every core (and optionally analyse its WCET)."""
        result = CmpResult(num_cores=self.num_cores, schedule=self.schedule)
        for core_id, image in enumerate(self.images):
            arbiter = TdmaArbiter(self.schedule, core_id)
            simulator = CycleSimulator(image, config=self.config, strict=strict,
                                       arbiter=arbiter, core_id=core_id)
            sim_result = simulator.run(max_bundles=max_bundles)
            wcet = None
            if analyse:
                wcet = analyze_wcet(
                    image, config=self.config,
                    options=WcetOptions(tdma=self.schedule))
            result.cores.append(CoreResult(core_id=core_id, sim=sim_result,
                                           wcet=wcet))
        return result


def single_core_reference(image: Image, config: PatmosConfig = DEFAULT_CONFIG,
                          strict: bool = False) -> CoreResult:
    """Run the same image on an unshared (single-core) memory for comparison."""
    simulator = CycleSimulator(image, config=config, strict=strict)
    sim_result = simulator.run()
    wcet = analyze_wcet(image, config=config)
    return CoreResult(core_id=0, sim=sim_result, wcet=wcet)
