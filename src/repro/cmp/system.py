"""Chip-multiprocessor model: shared-memory multicore co-simulation.

The paper proposes building a CMP from replicated Patmos pipelines with
*statically scheduled* access to the shared main memory (Sections 1–3): each
core owns a fixed TDMA slot, so the worst-case waiting time of a memory
transfer is independent of the other cores' behaviour.

:class:`MulticoreSystem` makes that claim *empirical* instead of assumed.  In
the default ``mode="cosim"`` it interleaves N (possibly heterogeneous)
cores on one global clock against one shared physical
:class:`~repro.memory.main_memory.MainMemory` (each core owns a private,
zero-copy bank view) and one shared
:class:`~repro.memory.arbiter.MemoryArbiter`, so every arbitration decision
observes the cores' actual concurrent memory traffic.

Two interleaving schedulers produce bit-identical timing:

* ``scheduler="event"`` (the default) exploits the very decoupling the
  paper is about: cores interact *only* through the shared arbiter, so each
  core runs completely undisturbed inside a persistent
  :class:`~repro.sim.engine.EngineContext` until it is about to register an
  arbitrated transfer, pausing *before* the requesting bundle and reporting
  the exact global cycle its request would carry.  A heap-based ready queue
  keyed on ``(next_event_cycle, arbiter_preference, core_id)`` releases
  paused cores in global time order, so the shared arbiter observes the
  same request stream as under quantum polling while the scheduler
  synchronises only at actual memory events.
* ``scheduler="reference"`` is the original quantum-polling loop: always
  advance the core with the smallest local clock up to one ``quantum`` past
  the next core's clock, yielding early on every arbitrated transfer (the
  engine's run-until-memory-event stepping).  It re-enters the engine every
  few cycles and exists as the differential baseline for the golden
  equivalence suite (mirroring the ``engine="fast"|"reference"`` pattern).

Both deliver requests to the arbiter in global time order at bundle
granularity with simultaneous requests served in the arbiter's preference
order, which is why their per-core cycle counts, arbitration statistics and
memory images match exactly (``tests/test_cosim_scheduler.py``).

Under TDMA arbitration the interleaved co-simulation must reproduce, cycle
for cycle, what each core observes when simulated completely alone with the
closed-form per-core arbiter — that equality is the paper's decoupling
property and is checked by the golden tests.  Under round-robin or priority
arbitration the same system exhibits genuine, co-runner-dependent
interference, which is exactly what makes those arbiters hard to analyse.

``mode="analytic"`` keeps the historical decoupled behaviour: every core is
simulated independently with its own :class:`~repro.memory.tdma.TdmaArbiter`
(TDMA only — no other policy has a per-core closed form).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..caches.hierarchy import HierarchyOptions
from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import ConfigError, SimulationTimeout
from ..faults.injector import FaultInjector
from ..faults.plan import FaultLog, FaultPlan
from ..memory.arbiter import MemoryArbiter, PriorityArbiter, make_arbiter
from ..memory.main_memory import MainMemory
from ..memory.tdma import TdmaArbiter, TdmaSchedule
from ..program.linker import Image
from ..sim.base import _uses_reference_semantics
from ..sim.cycle import CycleSimulator
from ..sim.engine import EngineContext
from ..sim.results import SimResult
from ..wcet.analyzer import WcetOptions, WcetResult, analyze_wcet


#: Sentinel cycle for draining post-halt memory flips onto the final image.
_END_OF_TIME = 1 << 62


def default_tdma_schedule(num_cores: int, config: PatmosConfig = DEFAULT_CONFIG,
                          slot_cycles: Optional[int] = None,
                          slot_weights: Optional[Sequence[int]] = None
                          ) -> TdmaSchedule:
    """A TDMA schedule with one burst-sized (or explicit) slot per core."""
    return TdmaSchedule(
        num_cores=num_cores,
        slot_cycles=(slot_cycles if slot_cycles is not None
                     else config.memory.burst_cycles()),
        slot_weights=tuple(slot_weights) if slot_weights else ())


@dataclass
class CoreResult:
    """Simulation and analysis results of one core in the CMP."""

    core_id: int
    sim: SimResult
    wcet: Optional[WcetResult] = None

    @property
    def observed_cycles(self) -> int:
        return self.sim.cycles

    @property
    def wcet_cycles(self) -> Optional[int]:
        return self.wcet.wcet_cycles if self.wcet is not None else None


@dataclass
class CmpResult:
    """Results of running a program mix on the chip multiprocessor."""

    num_cores: int
    schedule: Optional[TdmaSchedule] = None
    cores: list[CoreResult] = field(default_factory=list)
    mode: str = "analytic"
    arbiter: str = "tdma"
    #: Shared-arbiter activity (co-simulation mode only).
    arbiter_stats: Optional[dict] = None
    #: Interleaving scheduler that produced this result and its activity
    #: counters (slices / releases); co-simulation mode only.
    scheduler: Optional[str] = None
    scheduler_stats: Optional[dict] = None
    #: Executed fault events of this run (``None`` when no plan was given).
    fault_log: Optional[FaultLog] = None

    @property
    def makespan(self) -> int:
        """Cycles until the last core finishes."""
        return max(core.observed_cycles for core in self.cores)

    def observed_by_core(self) -> list[int]:
        return [core.observed_cycles for core in self.cores]

    def wcet_by_core(self) -> list[Optional[int]]:
        return [core.wcet_cycles for core in self.cores]

    def system_stats(self) -> dict:
        """Aggregated per-core and system-level interference statistics."""
        per_core = []
        totals = {"arbitration_cycles": 0, "words_transferred": 0,
                  "write_stall_cycles": 0, "idle_cycles": 0}
        makespan = self.makespan
        for core in self.cores:
            metrics = core.sim.metrics()
            row = {
                "core": core.core_id,
                "cycles": metrics["cycles"],
                "arbitration_cycles": metrics["arbitration_cycles"],
                "words_transferred": metrics["words_transferred"],
                "write_stall_cycles": metrics["write_stall_cycles"],
                # Idle = gaps the core itself reports (task-scheduler waits)
                # plus the tail it sits out after halting while the rest of
                # the system runs on.  Neither shows up in slot_utilisation,
                # which divides by the core's *own* issued bundles.
                "idle_cycles": (metrics["idle_cycles"]
                                + (makespan - metrics["cycles"])),
            }
            per_core.append(row)
            for key in totals:
                totals[key] += row[key]
        return {
            "mode": self.mode,
            "arbiter": self.arbiter,
            "scheduler": self.scheduler,
            "makespan": self.makespan,
            "per_core": per_core,
            "totals": totals,
            "arbiter_stats": self.arbiter_stats,
        }


class MulticoreSystem:
    """N Patmos cores sharing one main memory behind a pluggable arbiter.

    ``images`` may be heterogeneous (one program per core) and ``configs``
    may give every core its own cache/pipeline configuration; all cores must
    agree on the :class:`~repro.config.MemoryConfig`, because they share one
    physical memory and bus.  ``arbiter`` is a policy name (``"tdma"``,
    ``"round_robin"``, ``"priority"``) or a ready-made
    :class:`~repro.memory.arbiter.MemoryArbiter` instance.

    ``scheduler`` picks the co-simulation interleaving: the event-driven
    default synchronises only at actual arbitrated transfers, while
    ``"reference"`` is the quantum-polling baseline — both produce
    bit-identical timing (see the module docstring).  ``quantum`` only
    affects the reference scheduler; values above 1 trade request-ordering
    fidelity for fewer engine re-entries.

    ``faults`` threads a :class:`~repro.faults.FaultPlan` through the run
    (co-simulation mode only).  An empty plan is indistinguishable from no
    plan: the unmodified scheduler code paths run and no injector objects
    exist.  A plan with memory flips forces the quantum scheduler — a flip
    can change data-dependent control flow and hence the request stream, so
    slices are clipped to the next flip cycle; bus-only plans keep the
    configured scheduler because retries happen inside a single arbitration
    call (identical under both interleavings).
    """

    #: Fault kinds this system class can execute; ``FaultPlan`` events of
    #: other kinds are a configuration error (the RTOS layer overrides).
    _fault_kinds = ("memory", "bus")

    def __init__(self, images: list[Image],
                 config: PatmosConfig = DEFAULT_CONFIG,
                 configs: Optional[Sequence[PatmosConfig]] = None,
                 arbiter: Union[str, MemoryArbiter] = "tdma",
                 schedule: Optional[TdmaSchedule] = None,
                 slot_weights: Optional[Sequence[int]] = None,
                 priorities: Optional[Sequence[int]] = None,
                 mode: str = "cosim", engine: str = "fast",
                 scheduler: str = "event", quantum: int = 1,
                 hierarchy_options: Optional[HierarchyOptions] = None,
                 faults: Optional[FaultPlan] = None):
        if not images:
            raise ConfigError("a multicore system needs at least one core image")
        if mode not in ("cosim", "analytic"):
            raise ConfigError(
                f"unknown mode {mode!r}; use 'cosim' or 'analytic'")
        if scheduler not in ("event", "reference"):
            raise ConfigError(
                f"unknown scheduler {scheduler!r}; use 'event' or 'reference'")
        if quantum < 1:
            raise ConfigError("scheduler quantum must be at least one cycle")
        self.images = list(images)
        if configs is not None:
            if len(configs) != len(images):
                raise ConfigError(
                    f"{len(configs)} core configs for {len(images)} images")
            self.configs = list(configs)
        else:
            self.configs = [config] * len(images)
        self.config = self.configs[0]
        for core_id, core_config in enumerate(self.configs):
            if core_config.memory != self.config.memory:
                raise ConfigError(
                    f"core {core_id} has a different MemoryConfig; all cores "
                    "share one physical memory and bus")
        self.mode = mode
        self.engine = engine
        self.scheduler = scheduler
        self.quantum = quantum
        #: Shared physical memory of the most recent co-simulation run
        #: (all banks); exposed for memory-image inspection and tests.
        self.shared_memory: Optional[MainMemory] = None
        #: Cache-organisation baseline applied to every core (conventional
        #: I-cache / unified data cache experiments on the CMP).
        self.hierarchy_options = hierarchy_options

        if isinstance(arbiter, MemoryArbiter):
            if arbiter.num_cores < len(images):
                raise ConfigError(
                    f"arbiter serves {arbiter.num_cores} cores but the "
                    f"system has {len(images)} images")
            if schedule is not None or slot_weights or priorities:
                raise ConfigError(
                    "schedule/slot_weights/priorities are ignored when a "
                    "ready-made arbiter is passed; configure the arbiter "
                    "instance instead")
            self._arbiter_template = arbiter
            self.arbiter_kind = arbiter.kind
            self.schedule = getattr(arbiter, "schedule", None)
        else:
            if arbiter != "tdma" and (schedule is not None or slot_weights):
                raise ConfigError(
                    f"a TDMA schedule makes no sense with the {arbiter!r} "
                    f"arbiter; drop the schedule/slot_weights or use "
                    f"arbiter='tdma'")
            if arbiter != "priority" and priorities:
                raise ConfigError(
                    f"priorities make no sense with the {arbiter!r} "
                    f"arbiter; drop them or use arbiter='priority'")
            if arbiter == "tdma" and schedule is None:
                schedule = default_tdma_schedule(
                    len(images), self.config, slot_weights=slot_weights)
            elif arbiter == "tdma" and schedule is not None and slot_weights:
                raise ConfigError(
                    "give the slot weights inside the schedule or as "
                    "slot_weights, not both")
            self._arbiter_template = make_arbiter(
                arbiter, len(images), self.config.memory,
                schedule=schedule, priorities=priorities)
            self.arbiter_kind = arbiter
            self.schedule = schedule if arbiter == "tdma" else None
        if mode == "analytic" and self.arbiter_kind != "tdma":
            raise ConfigError(
                f"analytic mode needs the closed-form TDMA arbiter, not "
                f"{self.arbiter_kind!r}; use mode='cosim'")
        self._validate_schedule()

        #: Fault plan of this system (``None`` or empty = fault-free), the
        #: injector of the most recent run and its log.
        self.faults = faults
        self._injector: Optional[FaultInjector] = None
        self.fault_log: Optional[FaultLog] = None
        if faults is not None and not faults.empty:
            if mode == "analytic":
                raise ConfigError(
                    "fault injection needs the interleaved co-simulation; "
                    "use mode='cosim'")
            self._validate_fault_plan(faults)

    def _validate_fault_plan(self, plan: FaultPlan) -> None:
        """Reject plans with events this system class cannot execute."""
        present = {
            "memory": plan.has_memory_faults,
            "bus": plan.has_bus_faults,
            "storm": bool(plan.storm_faults),
            "overrun": bool(plan.overrun_faults),
        }
        for kind, scheduled in present.items():
            if scheduled and kind not in self._fault_kinds:
                raise ConfigError(
                    f"{kind} faults are not supported by "
                    f"{type(self).__name__}; supported kinds: "
                    f"{', '.join(self._fault_kinds)}")
        plan.validate(
            self.num_cores, self.config.memory.size_bytes,
            scratchpad_bytes=self.config.scratchpad.size_bytes)

    @classmethod
    def homogeneous(cls, image: Image, num_cores: int,
                    config: PatmosConfig = DEFAULT_CONFIG,
                    slot_cycles: Optional[int] = None,
                    **kwargs) -> "MulticoreSystem":
        """A system running the same image on every core.

        This is the configuration the design-space exploration sweeps: the
        TDMA slot defaults to one burst transfer per core, or can be widened
        or narrowed via ``slot_cycles``; every keyword of the constructor
        (``arbiter``, ``slot_weights``, ``mode``, ...) passes through.
        """
        if num_cores < 1:
            raise ConfigError("a multicore system needs at least one core")
        if slot_cycles is not None:
            if "schedule" in kwargs:
                raise ConfigError(
                    "give the slot length inside the schedule or as "
                    "slot_cycles, not both")
            kwargs["schedule"] = default_tdma_schedule(
                num_cores, config, slot_cycles=slot_cycles,
                slot_weights=kwargs.pop("slot_weights", None))
        return cls([image] * num_cores, config=config, **kwargs)

    @property
    def num_cores(self) -> int:
        return len(self.images)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate_schedule(self) -> None:
        """Reject TDMA schedules that cannot fit one burst transfer.

        The memory controller issues transfers of up to one burst; a slot
        shorter than that would make every cache fill raise mid-simulation.
        Failing at construction turns a silent under-provisioning (e.g. a
        user-supplied ``slot_cycles`` below the burst length) into an
        immediate configuration error.
        """
        if self.schedule is None:
            return
        if self.schedule.num_cores < self.num_cores:
            raise ConfigError(
                f"TDMA schedule has {self.schedule.num_cores} slots for "
                f"{self.num_cores} cores")
        burst = self.config.memory.burst_cycles()
        for core_id in range(self.num_cores):
            slot = self.schedule.slot_length(core_id)
            if slot < burst:
                raise ConfigError(
                    f"TDMA slot of core {core_id} is {slot} cycles, shorter "
                    f"than one burst transfer of {burst} cycles; widen "
                    f"slot_cycles or the core's slot weight")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, analyse: bool = True, strict: bool = False,
            max_bundles: int = 2_000_000, max_cycles: Optional[int] = None,
            max_wall_s: Optional[float] = None) -> CmpResult:
        """Simulate the system (and optionally analyse per-core WCETs).

        ``max_cycles`` and ``max_wall_s`` arm the co-simulation watchdog: a
        run whose slowest core passes ``max_cycles`` without halting, or
        that exceeds the wall-clock budget, raises a structured
        :class:`~repro.errors.SimulationTimeout` instead of spinning — the
        resilience guard the sweep runners rely on to contain hung cells.
        """
        scheduler_stats = None
        if self.mode == "analytic":
            if max_cycles is not None or max_wall_s is not None:
                raise ConfigError(
                    "the watchdog applies to co-simulation; analytic mode "
                    "runs each core alone (use max_bundles)")
            sims = self._run_analytic(strict, max_bundles)
            arbiter_stats = None
        else:
            sims, arbiter, scheduler_stats = self._run_cosim(
                strict, max_bundles, max_cycles=max_cycles,
                max_wall_s=max_wall_s)
            arbiter_stats = arbiter.stats_summary()
        result = CmpResult(num_cores=self.num_cores, schedule=self.schedule,
                           mode=self.mode, arbiter=self.arbiter_kind,
                           arbiter_stats=arbiter_stats,
                           scheduler=(scheduler_stats or {}).get("scheduler"),
                           scheduler_stats=scheduler_stats,
                           fault_log=self.fault_log)
        for core_id, sim in enumerate(sims):
            wcet = self._analyse_core(core_id) if analyse else None
            result.cores.append(CoreResult(core_id=core_id,
                                           sim=sim.result(), wcet=wcet))
        return result

    def _run_analytic(self, strict: bool,
                      max_bundles: int) -> list[CycleSimulator]:
        """Decoupled mode: every core alone with its closed-form arbiter."""
        sims = []
        for core_id, (image, config) in enumerate(
                zip(self.images, self.configs)):
            arbiter = TdmaArbiter(self.schedule, core_id)
            simulator = CycleSimulator(image, config=config, strict=strict,
                                       arbiter=arbiter, core_id=core_id,
                                       engine=self.engine,
                                       hierarchy_options=self.hierarchy_options)
            simulator.run(max_bundles=max_bundles)
            sims.append(simulator)
        return sims

    def _run_cosim(self, strict: bool, max_bundles: int,
                   max_cycles: Optional[int] = None,
                   max_wall_s: Optional[float] = None
                   ) -> tuple[list, MemoryArbiter, dict]:
        """Interleave all cores on one clock against the shared arbiter."""
        arbiter = self._arbiter_template
        arbiter.reset()
        plan = self.faults
        injector = (FaultInjector(plan, self.num_cores)
                    if plan is not None and not plan.empty else None)
        self._injector = injector
        self.fault_log = injector.log if injector is not None else None
        cores = self._build_cores(arbiter, strict)
        deadline = (time.monotonic() + max_wall_s
                    if max_wall_s is not None else None)

        # The event-driven scheduler needs the pre-decoded engine contexts;
        # cores forced onto the reference interpreter (engine="reference" or
        # a subclass overriding execution internals) fall back to the
        # quantum scheduler, mirroring the engine's own auto-fallback.
        # Memory flips force the quantum scheduler too: a flip can change
        # data-dependent control flow and with it the request stream, so the
        # schedule must be able to clip every slice to the next flip cycle.
        if injector is not None and plan.has_memory_faults:
            stats = self._schedule_quantum(
                cores, arbiter, max_bundles, injector=injector,
                max_cycles=max_cycles, deadline=deadline,
                max_wall_s=max_wall_s)
        elif self.scheduler == "event" and self.engine in ("fast", "jit") \
                and all(self._core_event_capable(core) for core in cores):
            stats = self._schedule_event(
                cores, arbiter, max_bundles, max_cycles=max_cycles,
                deadline=deadline, max_wall_s=max_wall_s)
        else:
            stats = self._schedule_quantum(
                cores, arbiter, max_bundles, max_cycles=max_cycles,
                deadline=deadline, max_wall_s=max_wall_s)
        return cores, arbiter, stats

    def _core_port(self, arbiter: MemoryArbiter, core_id: int):
        """One core's port on the shared arbiter, fault-wrapped if planned."""
        port = arbiter.port(core_id)
        if self._injector is not None:
            port = self._injector.port(port, core_id)
        return port

    def _check_watchdog(self, cycle: int, core_id: int,
                        max_cycles: Optional[int],
                        deadline: Optional[float],
                        max_wall_s: Optional[float]) -> None:
        """Raise a structured timeout when a watchdog budget is exhausted."""
        if max_cycles is not None and cycle >= max_cycles:
            raise SimulationTimeout(
                f"core {core_id} reached the watchdog limit of "
                f"{max_cycles} cycles without halting", kind="cycles",
                limit=max_cycles, cycle=cycle, core_id=core_id,
                max_cycles=max_cycles, max_wall_s=max_wall_s)
        if deadline is not None and time.monotonic() >= deadline:
            raise SimulationTimeout(
                f"co-simulation exceeded its wall-clock budget of "
                f"{max_wall_s:g} s", kind="wall_clock", limit=max_wall_s,
                cycle=cycle, core_id=core_id,
                max_cycles=max_cycles, max_wall_s=max_wall_s)

    def _build_cores(self, arbiter: MemoryArbiter, strict: bool) -> list:
        """Create the shared memory and one execution agent per core.

        The default builds one :class:`CycleSimulator` per image over one
        shared physical memory, with each core owning a private zero-copy
        bank view sized by its own MemoryConfig (all equal, validated at
        construction).  Subclasses swap in different per-core agents — the
        RTOS layer (:mod:`repro.rtos`) returns preemptive task runtimes that
        multiplex several programs on each core — as long as every agent
        speaks the scheduler protocols: ``cycles``/``run_step``/``result``
        for the quantum scheduler, plus the :class:`EngineContext`
        ``advance``/``export`` protocol for the event-driven one.
        """
        bank_bytes = self.config.memory.size_bytes
        shared_memory = MainMemory(bank_bytes * self.num_cores)
        self.shared_memory = shared_memory
        cores = []
        for core_id, (image, config) in enumerate(
                zip(self.images, self.configs)):
            bank = MainMemory.view(shared_memory, core_id * bank_bytes,
                                   bank_bytes)
            cores.append(CycleSimulator(
                image, config=config, strict=strict,
                arbiter=self._core_port(arbiter, core_id), core_id=core_id,
                memory=bank, engine=self.engine,
                hierarchy_options=self.hierarchy_options))
        return cores

    def _core_event_capable(self, core) -> bool:
        """Can this core agent drive the event-driven scheduler?

        Agents that implement the event protocol themselves advertise it
        with an ``event_capable`` attribute; plain simulators qualify when
        they use the unmodified reference execution semantics (the engine's
        own auto-fallback rule).
        """
        flag = getattr(core, "event_capable", None)
        if flag is not None:
            return bool(flag)
        return _uses_reference_semantics(type(core))

    def _event_agent(self, core):
        """First-release hook of the event scheduler: the persistent agent.

        Called once per core when the heap first releases it.  The default
        performs the core's entry method-cache fill (its requests carry the
        core's current clock) and wraps the simulator in a synchronising
        :class:`~repro.sim.engine.EngineContext` — the generated-code
        :class:`~repro.sim.codegen.JitContext` under ``engine="jit"``, which
        honours the same sync-pause protocol from compiled superblocks.
        Agents that already speak the event protocol (``event_capable`` RTOS
        task runtimes) are returned as-is.
        """
        if getattr(core, "event_capable", False):
            return core
        core._ensure_started()  # entry fill requests at cycle 0
        if self.engine == "jit":
            from ..sim.codegen import JitContext
            context = JitContext(core)
        else:
            context = EngineContext(core)
        context.enable_sync()
        return context

    #: Cycles a core may run between wall-clock watchdog probes.
    _WATCHDOG_CHUNK = 65_536

    def _schedule_event(self, cores: list,
                        arbiter: MemoryArbiter, max_bundles: int,
                        max_cycles: Optional[int] = None,
                        deadline: Optional[float] = None,
                        max_wall_s: Optional[float] = None) -> dict:
        """Event-driven interleaving: synchronise only at memory events.

        Every core owns a persistent :class:`~repro.sim.engine.EngineContext`
        and runs undisturbed until it is *about to* register a transfer with
        the shared arbiter; the context pauses before that bundle and
        reports the core's clock — the exact cycle the request would carry.
        A heap keyed on ``(next_event_cycle, tie_rank, core_id)`` releases
        the paused core with the earliest request; simultaneous requests are
        served in the arbiter's preference order (re-evaluated at release
        time for round-robin, whose rotation follows the last grant).
        Requests therefore reach the shared arbiter exactly as under the
        quantum scheduler — sorted by global cycle, ties in hardware service
        order — which is what makes the two schedulers bit-identical.

        Entry-point method-cache fills are ordered too: every core starts
        paused at cycle 0 and performs its ``_on_start`` transfer when first
        released.  Once a single core remains, its requests can no longer
        interleave with anyone and it runs to completion without pausing.

        Under an *order-independent* arbiter (TDMA — the decoupling property
        itself) every grant is a pure function of the requesting core and
        cycle, so the request stream needs no global ordering at all: each
        core simply runs start to finish at full single-core engine speed.
        """
        if arbiter.order_independent:
            if max_cycles is None and deadline is None:
                for core in cores:
                    core.run_step(max_bundles=max_bundles)
            else:
                # Watchdog-armed variant: bounce back into the scheduler at
                # the cycle limit (and periodically for wall-clock probes).
                for core_id, core in enumerate(cores):
                    while True:
                        horizon = max_cycles
                        if deadline is not None:
                            chunk = core.cycles + self._WATCHDOG_CHUNK
                            horizon = (chunk if horizon is None
                                       else min(horizon, chunk))
                        reason = core.run_step(until_cycle=horizon,
                                               max_bundles=max_bundles)
                        if reason == "halted":
                            break
                        self._check_watchdog(core.cycles, core_id,
                                             max_cycles, deadline,
                                             max_wall_s)
            return {"scheduler": "event", "slices": len(cores), "releases": 0}
        ranks = arbiter.tie_ranks()
        dynamic_ties = ranks is None
        if dynamic_ties:
            ranks = range(len(cores))
        heap: list[tuple[int, int, int]] = [
            (0, ranks[core_id], core_id) for core_id in range(len(cores))]
        heapq.heapify(heap)
        agents: list = [None] * len(cores)
        slices = 0
        releases = 0
        try:
            while heap:
                stamp, rank, core_id = heapq.heappop(heap)
                if dynamic_ties and heap and heap[0][0] == stamp:
                    # Simultaneous next events: ask the arbiter which core
                    # the hardware would serve first and re-queue the rest.
                    entries = [(stamp, rank, core_id)]
                    while heap and heap[0][0] == stamp:
                        entries.append(heapq.heappop(heap))
                    core_id = arbiter.preferred_core(
                        [entry[2] for entry in entries])
                    for entry in entries:
                        if entry[2] != core_id:
                            heapq.heappush(heap, entry)
                slices += 1
                if max_cycles is not None or deadline is not None:
                    # Memory-event granularity: an agent pauses at every
                    # arbitrated transfer, so the watchdog fires at the
                    # first event past the budget (max_bundles bounds
                    # transfer-free runaways).
                    self._check_watchdog(stamp, core_id, max_cycles,
                                         deadline, max_wall_s)
                agent = agents[core_id]
                if agent is None:
                    agent = agents[core_id] = self._event_agent(cores[core_id])
                    status = agent.advance(max_bundles, release=False,
                                           sync=bool(heap))
                else:
                    releases += 1
                    status = agent.advance(max_bundles, release=True,
                                           sync=bool(heap))
                if status == "sync":
                    heapq.heappush(heap,
                                   (agent.cycles, ranks[core_id], core_id))
        finally:
            # Export the in-flight state back to the simulators so results
            # and post-mortem inspection (also after a mid-run exception)
            # are indistinguishable from the reference path.
            for agent in agents:
                if agent is not None:
                    agent.export()
        return {"scheduler": "event", "slices": slices, "releases": releases}

    def _schedule_quantum(self, cores: list,
                          arbiter: MemoryArbiter, max_bundles: int,
                          injector: Optional[FaultInjector] = None,
                          max_cycles: Optional[int] = None,
                          deadline: Optional[float] = None,
                          max_wall_s: Optional[float] = None) -> dict:
        """Reference scheduler: quantum-bounded polling of the slowest core.

        Always advance the core with the smallest local clock (ties broken
        in the arbiter's service order), up to one quantum past the next
        core's clock, yielding early on every arbitrated transfer.  Requests
        therefore reach the shared arbiter in global time order at bundle
        granularity.  The loop itself is allocation-free — one min/second-min
        scan per slice and a reused tie buffer — so scheduler overhead
        measured against the event-driven path reflects the engine
        re-entries, not per-slice garbage.

        With an ``injector``, every slice is additionally clipped to the
        chosen core's next scheduled memory flip: the core pauses at the
        first bundle boundary at or after the flip cycle, the flip (or its
        ECC correction, whose latency is charged eagerly onto the core's
        clock, like the RTOS overhead charges) is applied, and the scan
        restarts.  Flips scheduled past a core's halt land on its final
        memory image without extending execution.
        """
        quantum = self.quantum
        alive = [True] * len(cores)
        n_active = len(cores)
        tied: list[int] = []  # reused tie buffer
        slices = 0
        watchdog = max_cycles is not None or deadline is not None
        while n_active:
            min1 = min2 = -1  # smallest / second-smallest live clock
            core_id = -1
            tie = False
            for cid, core in enumerate(cores):
                if not alive[cid]:
                    continue
                cycles = core.cycles
                if core_id < 0 or cycles < min1:
                    min2 = min1 if core_id >= 0 else -1
                    min1 = cycles
                    core_id = cid
                    tie = False
                elif cycles == min1:
                    tie = True
                    min2 = min1
                elif min2 < 0 or cycles < min2:
                    min2 = cycles
            if tie:
                del tied[:]
                for cid, core in enumerate(cores):
                    if alive[cid] and core.cycles == min1:
                        tied.append(cid)
                core_id = arbiter.preferred_core(tied)
            sim = cores[core_id]
            slices += 1
            if watchdog:
                self._check_watchdog(sim.cycles, core_id, max_cycles,
                                     deadline, max_wall_s)
            if injector is not None:
                charged = injector.apply_due_memory_faults(
                    core_id, sim.cycles, sim)
                if charged:
                    # ECC correction latency moved the clock; re-scan so the
                    # next slice again goes to the slowest core.
                    sim.cycles += charged
                    continue
            if n_active > 1:
                # min(other cores' clocks) is min1 on a tie (another core
                # still sits at min1) and min2 otherwise.  The horizon lets
                # the chosen core run up to that clock but never *through*
                # it: a core catching up from behind yields exactly at clock
                # equality, so every simultaneous request is tie-broken by
                # the arbiter's preference order rather than by scheduling
                # history.  (own + quantum keeps a tied core progressing by
                # at least one bundle per slice.)
                others_min = min1 if tie else min2
                horizon = max(others_min + quantum - 1,
                              sim.cycles + quantum)
            else:
                horizon = None
            if injector is not None:
                flip = injector.next_memory_fault_cycle(core_id)
                if flip is not None:
                    clip = max(flip, sim.cycles + 1)
                    horizon = clip if horizon is None else min(horizon, clip)
            if max_cycles is not None:
                horizon = (max_cycles if horizon is None
                           else min(horizon, max_cycles))
            elif deadline is not None and horizon is None:
                horizon = sim.cycles + self._WATCHDOG_CHUNK
            if horizon is None:
                reason = sim.run_step(max_bundles=max_bundles)
            else:
                reason = sim.run_step(until_cycle=horizon,
                                      stop_on_memory_event=n_active > 1,
                                      max_bundles=max_bundles)
            if reason == "halted":
                if injector is not None:
                    # Drain flips scheduled past the halt onto the final
                    # image; post-halt ECC corrections charge nothing (the
                    # core no longer executes).
                    injector.apply_due_memory_faults(core_id, _END_OF_TIME,
                                                     sim)
                alive[core_id] = False
                n_active -= 1
        stats = {"scheduler": "reference", "quantum": quantum,
                 "slices": slices}
        if injector is not None:
            stats["faults_executed"] = len(injector.log)
        return stats

    # ------------------------------------------------------------------
    # WCET
    # ------------------------------------------------------------------

    def wcet_options_for_core(self, core_id: int,
                              **overrides) -> Optional[WcetOptions]:
        """Arbiter-aware analysis options for one core.

        TDMA has an exact per-transfer interference bound from the schedule
        (refined to this core's own slot and each transfer's length);
        round-robin is bounded by ``(N - 1)`` maximal transfers; priority is
        bounded only for the top-priority core (``None`` for all others).
        ``overrides`` pass extra :class:`WcetOptions` fields through (e.g.
        cache analysis modes for the conformance harness).  The system's
        ``hierarchy_options`` contribute the matching cache-model fields
        automatically, so the bound always models the organisation the
        cores actually simulate (explicit overrides still win).
        """
        rank = 0
        if self.arbiter_kind == "priority":
            template = self._arbiter_template
            top = (template.top_core()
                   if isinstance(template, PriorityArbiter) else 0)
            rank = 0 if core_id == top else 1
        for key, value in self._hierarchy_wcet_overrides().items():
            overrides.setdefault(key, value)
        return WcetOptions.for_arbiter(
            self.arbiter_kind, self.num_cores, schedule=self.schedule,
            priority_rank=rank, core_id=core_id, **overrides)

    def _hierarchy_wcet_overrides(self) -> dict:
        """WcetOptions fields implied by the simulated cache organisation."""
        options = self.hierarchy_options
        if options is None:
            return {}
        mapped: dict = {}
        if options.conventional_icache:
            mapped["conventional_icache"] = True
        if options.unified_data_cache:
            mapped["unified_data_cache"] = True
        if options.ideal_data_caches:
            mapped["static_cache"] = "ideal"
            mapped["object_cache"] = "ideal"
        return mapped

    def _analyse_core(self, core_id: int) -> Optional[WcetResult]:
        options = self.wcet_options_for_core(core_id)
        if options is None:
            return None
        return analyze_wcet(self.images[core_id],
                            config=self.configs[core_id], options=options)


class CmpSystem(MulticoreSystem):
    """Backwards-compatible TDMA CMP defaulting to the decoupled analytic mode.

    Existing experiments (E9) and examples construct this with a TDMA
    schedule and rely on per-core independence; new code should use
    :class:`MulticoreSystem` directly and pick a mode and arbiter.
    """

    def __init__(self, images: list[Image],
                 config: PatmosConfig = DEFAULT_CONFIG,
                 schedule: Optional[TdmaSchedule] = None,
                 mode: str = "analytic", **kwargs):
        super().__init__(images, config=config, schedule=schedule,
                         arbiter="tdma", mode=mode, **kwargs)


def single_core_reference(image: Image, config: PatmosConfig = DEFAULT_CONFIG,
                          strict: bool = False) -> CoreResult:
    """Run the same image on an unshared (single-core) memory for comparison."""
    simulator = CycleSimulator(image, config=config, strict=strict)
    sim_result = simulator.run()
    wcet = analyze_wcet(image, config=config)
    return CoreResult(core_id=0, sim=sim_result, wcet=wcet)
