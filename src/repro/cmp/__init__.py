"""Chip-multiprocessor model: shared-memory multicore co-simulation.

:class:`MulticoreSystem` interleaves N cores on one clock against one shared
memory and a pluggable arbiter (TDMA, round-robin, priority);
:class:`CmpSystem` keeps the historical decoupled TDMA view as
``mode="analytic"``.

Module map
----------

``system``
    :class:`MulticoreSystem` and its two co-simulation schedulers:
    ``scheduler="event"`` (default) — next-event lookahead over persistent
    :class:`~repro.sim.engine.EngineContext` objects with a heap-based
    ready queue keyed on ``(next_event_cycle, arbiter_preference,
    core_id)``, synchronising only at actual arbitrated transfers (and not
    at all under order-independent TDMA); ``scheduler="reference"`` — the
    quantum-polling baseline retained for differential testing.  Both
    produce bit-identical timing (``tests/test_cosim_scheduler.py``);
    ``CmpResult.scheduler_stats`` records slices/releases per run.
"""

from .system import (
    CmpResult,
    CmpSystem,
    CoreResult,
    MulticoreSystem,
    default_tdma_schedule,
    single_core_reference,
)

__all__ = [
    "CmpResult",
    "CmpSystem",
    "CoreResult",
    "MulticoreSystem",
    "default_tdma_schedule",
    "single_core_reference",
]
