"""Chip-multiprocessor model: shared-memory multicore co-simulation.

:class:`MulticoreSystem` interleaves N cores on one clock against one shared
memory and a pluggable arbiter (TDMA, round-robin, priority);
:class:`CmpSystem` keeps the historical decoupled TDMA view as
``mode="analytic"``.
"""

from .system import (
    CmpResult,
    CmpSystem,
    CoreResult,
    MulticoreSystem,
    default_tdma_schedule,
    single_core_reference,
)

__all__ = [
    "CmpResult",
    "CmpSystem",
    "CoreResult",
    "MulticoreSystem",
    "default_tdma_schedule",
    "single_core_reference",
]
