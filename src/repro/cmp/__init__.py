"""Chip-multiprocessor configuration of Patmos cores with TDMA memory access."""

from .system import (
    CmpResult,
    CmpSystem,
    CoreResult,
    default_tdma_schedule,
    single_core_reference,
)

__all__ = [
    "CmpResult",
    "CmpSystem",
    "CoreResult",
    "default_tdma_schedule",
    "single_core_reference",
]
