"""Instruction and bundle representation.

An :class:`Instruction` is a single, fully predicated Patmos operation.  A
:class:`Bundle` is the unit of fetch and issue: one or two instructions, where
the first instruction carries the bundle-length bit (Section 3.1).  Long
immediate ALU operations occupy both slots of a bundle.

Branch and call targets may be *symbolic* (a label or function name) until the
linker resolves them to numeric offsets; the simulator and encoder require
resolved targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Union

from ..errors import IsaError
from .opcodes import Format, Opcode, OpInfo
from .registers import SpecialReg, gpr_name, pred_name


@dataclass(frozen=True)
class Guard:
    """Predicate guard of an instruction: ``(pN)`` or ``(!pN)``."""

    pred: int = 0
    negate: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.pred < 8:
            raise IsaError(f"predicate register out of range: p{self.pred}")

    @property
    def is_always(self) -> bool:
        """True if the guard is the constant-true guard ``(p0)``."""
        return self.pred == 0 and not self.negate

    def __str__(self) -> str:
        bang = "!" if self.negate else ""
        return f"({bang}{pred_name(self.pred)})"


#: The default guard: always execute.
ALWAYS = Guard(0, False)

#: Type of a branch/call target: numeric (resolved) or symbolic label.
Target = Union[int, str]


@dataclass(frozen=True)
class Instruction:
    """A single Patmos instruction.

    Operand fields that do not apply to the opcode's format must be ``None``;
    the constructor validates the combination against :class:`OpInfo`.
    """

    opcode: Opcode
    guard: Guard = ALWAYS
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    pd: Optional[int] = None
    ps1: Optional[int] = None
    ps2: Optional[int] = None
    special: Optional[SpecialReg] = None
    #: Symbolic or resolved control-flow / data target.
    target: Optional[Target] = None
    #: Free-form annotations (e.g. loop bounds, source hints) carried through
    #: compilation; ignored by equality-sensitive consumers.
    notes: tuple = field(default_factory=tuple, compare=False)

    def __post_init__(self) -> None:
        _validate(self)

    # -- convenience accessors -------------------------------------------------

    @property
    def info(self) -> OpInfo:
        return self.opcode.info

    @property
    def is_nop(self) -> bool:
        return self.opcode is Opcode.NOP

    def with_guard(self, guard: Guard) -> "Instruction":
        """Return a copy of this instruction with a different guard."""
        return replace(self, guard=guard)

    def with_target(self, target: Target) -> "Instruction":
        """Return a copy of this instruction with a resolved/changed target."""
        return replace(self, target=target)

    def with_imm(self, imm: int) -> "Instruction":
        """Return a copy of this instruction with a different immediate."""
        return replace(self, imm=imm)

    # -- def/use information for dependence analysis ---------------------------

    def gpr_defs(self) -> frozenset[int]:
        """Indices of general-purpose registers written by this instruction."""
        if self.info.writes_gpr and self.rd is not None and self.rd != 0:
            return frozenset((self.rd,))
        return frozenset()

    def gpr_uses(self) -> frozenset[int]:
        """Indices of general-purpose registers read by this instruction."""
        uses = set()
        fmt = self.info.fmt
        if self.rs1 is not None:
            uses.add(self.rs1)
        if self.rs2 is not None:
            uses.add(self.rs2)
        if fmt is Format.LI and self.opcode is Opcode.LIH:
            # lih merges into the existing low half of rd.
            uses.add(self.rd)
        return frozenset(u for u in uses if u is not None)

    def pred_defs(self) -> frozenset[int]:
        """Indices of predicate registers written by this instruction."""
        if self.info.writes_pred and self.pd is not None and self.pd != 0:
            return frozenset((self.pd,))
        return frozenset()

    def pred_uses(self) -> frozenset[int]:
        """Indices of predicate registers read by this instruction."""
        uses = set()
        if not self.guard.is_always:
            uses.add(self.guard.pred)
        if self.info.fmt is Format.PRED:
            if self.ps1 is not None:
                uses.add(self.ps1)
            if self.ps2 is not None:
                uses.add(self.ps2)
        return frozenset(uses)

    def special_defs(self) -> frozenset[SpecialReg]:
        """Special registers written by this instruction."""
        fmt = self.info.fmt
        if fmt is Format.MUL:
            return frozenset((SpecialReg.SL, SpecialReg.SH))
        if fmt is Format.MTS:
            return frozenset((self.special,))
        if fmt is Format.STACK:
            return frozenset((SpecialReg.ST, SpecialReg.SS))
        if fmt in (Format.CALL, Format.CALLR):
            return frozenset((SpecialReg.SRB, SpecialReg.SRO))
        return frozenset()

    def special_uses(self) -> frozenset[SpecialReg]:
        """Special registers read by this instruction."""
        fmt = self.info.fmt
        if fmt is Format.MFS:
            return frozenset((self.special,))
        if fmt is Format.RET:
            return frozenset((SpecialReg.SRB, SpecialReg.SRO))
        if fmt is Format.STACK:
            return frozenset((SpecialReg.ST, SpecialReg.SS))
        if self.info.is_mem_access and self.info.mem_type is not None and \
                self.info.mem_type.value == "s":
            return frozenset((SpecialReg.ST,))
        return frozenset()

    # -- rendering --------------------------------------------------------------

    def __str__(self) -> str:
        return render_instruction(self)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise IsaError(message)


def _check_gpr(value: Optional[int], name: str, mnemonic: str, required: bool) -> None:
    if required:
        _require(value is not None, f"{mnemonic}: operand {name} is required")
        _require(0 <= value < 32, f"{mnemonic}: register index out of range for {name}")
    else:
        _require(value is None, f"{mnemonic}: operand {name} is not allowed")


def _check_pred(value: Optional[int], name: str, mnemonic: str, required: bool) -> None:
    if required:
        _require(value is not None, f"{mnemonic}: operand {name} is required")
        _require(0 <= value < 8, f"{mnemonic}: predicate index out of range for {name}")
    else:
        _require(value is None, f"{mnemonic}: operand {name} is not allowed")


def _validate(instr: Instruction) -> None:
    info = instr.info
    fmt = info.fmt
    m = info.mnemonic

    needs_rd = fmt in (Format.ALU_R, Format.ALU_I, Format.ALU_L, Format.LI,
                       Format.LOAD, Format.MFS)
    needs_rs1 = fmt in (Format.ALU_R, Format.ALU_I, Format.ALU_L, Format.MUL,
                        Format.CMP_R, Format.CMP_I, Format.LOAD, Format.STORE,
                        Format.CALLR, Format.MTS, Format.OUT)
    needs_rs2 = fmt in (Format.ALU_R, Format.MUL, Format.CMP_R, Format.STORE)
    needs_pd = fmt in (Format.CMP_R, Format.CMP_I, Format.PRED)
    needs_ps1 = fmt is Format.PRED
    needs_ps2 = fmt is Format.PRED and instr.opcode is not Opcode.PNOT
    needs_imm = fmt in (Format.ALU_I, Format.ALU_L, Format.LI, Format.CMP_I,
                        Format.LOAD, Format.STORE, Format.STACK)
    needs_special = fmt in (Format.MTS, Format.MFS)
    allows_target = fmt in (Format.BRANCH, Format.CALL) or (
        fmt in (Format.ALU_L, Format.LI) and isinstance(instr.target, str)
    )

    _check_gpr(instr.rd, "rd", m, needs_rd)
    _check_gpr(instr.rs1, "rs1", m, needs_rs1)
    _check_gpr(instr.rs2, "rs2", m, needs_rs2)
    _check_pred(instr.pd, "pd", m, needs_pd)
    _check_pred(instr.ps1, "ps1", m, needs_ps1)
    _check_pred(instr.ps2, "ps2", m, needs_ps2)

    if needs_imm:
        # Long immediates and li may carry a symbolic target that the linker
        # later resolves into the immediate field.
        _require(
            instr.imm is not None or instr.target is not None,
            f"{m}: immediate operand is required",
        )
    else:
        _require(instr.imm is None, f"{m}: immediate operand is not allowed")

    if needs_special:
        _require(isinstance(instr.special, SpecialReg),
                 f"{m}: special register operand is required")
    else:
        _require(instr.special is None, f"{m}: special register not allowed")

    if fmt in (Format.BRANCH, Format.CALL):
        _require(instr.target is not None, f"{m}: branch/call target is required")
    elif not allows_target:
        _require(instr.target is None, f"{m}: target operand is not allowed")


def render_instruction(instr: Instruction) -> str:
    """Render an instruction in the textual assembly syntax."""
    info = instr.info
    fmt = info.fmt
    parts: list[str] = []
    if not instr.guard.is_always:
        parts.append(str(instr.guard))
    m = info.mnemonic

    def reg(i: Optional[int]) -> str:
        return gpr_name(i) if i is not None else "?"

    if fmt is Format.ALU_R:
        body = f"{m} {reg(instr.rd)} = {reg(instr.rs1)}, {reg(instr.rs2)}"
    elif fmt in (Format.ALU_I, Format.ALU_L):
        imm = instr.target if instr.imm is None else instr.imm
        body = f"{m} {reg(instr.rd)} = {reg(instr.rs1)}, {imm}"
    elif fmt is Format.LI:
        imm = instr.target if instr.imm is None else instr.imm
        body = f"{m} {reg(instr.rd)} = {imm}"
    elif fmt is Format.MUL:
        body = f"{m} {reg(instr.rs1)}, {reg(instr.rs2)}"
    elif fmt is Format.CMP_R:
        body = f"{m} {pred_name(instr.pd)} = {reg(instr.rs1)}, {reg(instr.rs2)}"
    elif fmt is Format.CMP_I:
        body = f"{m} {pred_name(instr.pd)} = {reg(instr.rs1)}, {instr.imm}"
    elif fmt is Format.PRED:
        if instr.opcode is Opcode.PNOT:
            body = f"{m} {pred_name(instr.pd)} = {pred_name(instr.ps1)}"
        else:
            body = (f"{m} {pred_name(instr.pd)} = "
                    f"{pred_name(instr.ps1)}, {pred_name(instr.ps2)}")
    elif fmt is Format.LOAD:
        body = f"{m} {reg(instr.rd)} = [{reg(instr.rs1)} + {instr.imm}]"
    elif fmt is Format.STORE:
        body = f"{m} [{reg(instr.rs1)} + {instr.imm}] = {reg(instr.rs2)}"
    elif fmt is Format.STACK:
        body = f"{m} {instr.imm}"
    elif fmt in (Format.BRANCH, Format.CALL):
        body = f"{m} {instr.target}"
    elif fmt is Format.CALLR:
        body = f"{m} {reg(instr.rs1)}"
    elif fmt is Format.MTS:
        body = f"{m} {instr.special} = {reg(instr.rs1)}"
    elif fmt is Format.MFS:
        body = f"{m} {reg(instr.rd)} = {instr.special}"
    elif fmt is Format.OUT:
        body = f"{m} {reg(instr.rs1)}"
    else:
        body = m
    parts.append(body)
    return " ".join(parts)


#: Convenience constant: a canonical NOP instruction.
NOP = Instruction(Opcode.NOP)


@dataclass(frozen=True)
class Bundle:
    """A fetch/issue bundle of one or two instructions.

    The first slot may hold any instruction; the second slot is restricted to
    instructions that are not ``slot0_only`` (Section 3.1: branches and main
    memory accesses only in the first pipeline).  A long-immediate ALU
    instruction occupies both slots on its own.
    """

    slots: tuple[Instruction, ...]

    def __init__(self, *instrs: Instruction | Iterable[Instruction]):
        if len(instrs) == 1 and not isinstance(instrs[0], Instruction):
            instrs = tuple(instrs[0])
        object.__setattr__(self, "slots", tuple(instrs))
        _validate_bundle(self)

    @property
    def first(self) -> Instruction:
        return self.slots[0]

    @property
    def second(self) -> Optional[Instruction]:
        return self.slots[1] if len(self.slots) > 1 else None

    @property
    def size_bytes(self) -> int:
        """Fetch width of the bundle: 4 bytes or 8 bytes."""
        if len(self.slots) == 2 or self.first.info.long_imm:
            return 8
        return 4

    @property
    def is_long(self) -> bool:
        return self.size_bytes == 8

    def instructions(self) -> tuple[Instruction, ...]:
        return self.slots

    def __iter__(self):
        return iter(self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __str__(self) -> str:
        return " || ".join(str(i) for i in self.slots)


def _validate_bundle(bundle: Bundle) -> None:
    slots = bundle.slots
    _require(1 <= len(slots) <= 2, "a bundle holds one or two instructions")
    for instr in slots:
        _require(isinstance(instr, Instruction), "bundle slots must be instructions")
    if len(slots) == 2:
        first, second = slots
        _require(not first.info.long_imm,
                 "a long-immediate instruction occupies the whole bundle")
        _require(not second.info.long_imm,
                 "long-immediate instructions must be in the first slot")
        _require(not second.info.slot0_only,
                 f"{second.info.mnemonic} may only be issued in the first slot")


def bundle_nop() -> Bundle:
    """Return a single-slot NOP bundle."""
    return Bundle(NOP)
