"""Instruction-set architecture of the Patmos processor."""

from .instruction import ALWAYS, Bundle, Guard, Instruction, NOP, bundle_nop
from .opcodes import (
    ControlKind,
    Format,
    MemType,
    OPCODE_TABLE,
    OpInfo,
    Opcode,
    control_delay_slots,
    opcode_from_mnemonic,
    result_delay_slots,
)
from .registers import SpecialReg, parse_gpr, parse_pred, parse_special

__all__ = [
    "ALWAYS",
    "Bundle",
    "ControlKind",
    "Format",
    "Guard",
    "Instruction",
    "MemType",
    "NOP",
    "OPCODE_TABLE",
    "OpInfo",
    "Opcode",
    "SpecialReg",
    "bundle_nop",
    "control_delay_slots",
    "opcode_from_mnemonic",
    "parse_gpr",
    "parse_pred",
    "parse_special",
    "result_delay_slots",
]
