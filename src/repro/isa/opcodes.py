"""Opcode definitions and static metadata for the Patmos ISA.

The instruction set follows Section 3.1 of the paper:

* RISC-style, fully predicated instructions with at most three register
  operands.
* ALU operations with register operands, a sign-extended 12-bit immediate, or
  a 32-bit long immediate that occupies the second instruction slot.
* ``lil``/``lih`` load 16 bits into the lower or upper half of a register.
* A complete set of compare instructions writing predicate registers and
  predicate-combine operations.
* *Typed* loads and stores that explicitly name the accessed data area
  (static/constant cache, object/heap cache, stack cache, scratchpad, or
  uncached main memory) so that WCET analysis can attribute every access to
  the right cache.
* Split (decoupled) main-memory accesses: a main-memory load starts the
  transfer and :data:`Opcode.WMEM` explicitly waits for its completion.
* Stack-cache control instructions ``sres``/``sens``/``sfree``.
* Relative branches, branch-with-cache-fill, calls and returns with exposed
  delay slots.

Every opcode has an :class:`OpInfo` record describing its format, operand
usage, timing class and issue-slot restriction.  The table is the single
source of truth used by the builder, assembler, encoder, simulators, compiler
passes and the WCET analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import IsaError


class Format(Enum):
    """Operand format of an instruction."""

    ALU_R = "alu_r"      # rd = rs1 op rs2
    ALU_I = "alu_i"      # rd = rs1 op imm12
    ALU_L = "alu_l"      # rd = rs1 op imm32 (long immediate, uses both slots)
    LI = "li"            # rd = imm16 (low or high half)
    MUL = "mul"          # (sl, sh) = rs1 * rs2
    CMP_R = "cmp_r"      # pd = rs1 cmp rs2
    CMP_I = "cmp_i"      # pd = rs1 cmp imm12
    PRED = "pred"        # pd = ps1 op ps2
    LOAD = "load"        # rd = mem[rs1 + imm]
    STORE = "store"      # mem[rs1 + imm] = rs2
    STACK = "stack"      # sres/sens/sfree imm
    BRANCH = "branch"    # br/brcf target
    CALL = "call"        # call target
    CALLR = "callr"      # call rs1
    RET = "ret"          # return via srb/sro
    MTS = "mts"          # special = rs1
    MFS = "mfs"          # rd = special
    WAIT = "wait"        # wait for outstanding main-memory access
    NOP = "nop"
    HALT = "halt"
    OUT = "out"          # debug output of rs1 (simulator hook)


class MemType(Enum):
    """Data area named by a typed load or store (Section 3.3)."""

    #: Static data and constants — set-associative static/constant cache (C$).
    STATIC = "c"
    #: Heap-allocated objects — highly associative data cache (D$).
    OBJECT = "o"
    #: Stack frame data — direct-mapped stack cache (S$).
    STACK = "s"
    #: Compiler-managed scratchpad memory (SP).
    LOCAL = "l"
    #: Uncached main memory, accessed with split (decoupled) loads.
    MAIN = "m"


class ControlKind(Enum):
    """Kind of control transfer, which determines the exposed delay slots."""

    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    mnemonic: str
    fmt: Format
    #: Data area for loads/stores, ``None`` otherwise.
    mem_type: MemType | None = None
    #: Access width in bytes for loads/stores.
    width: int = 4
    #: Whether a sub-word load sign-extends its result.
    signed: bool = True
    #: Timing class of the result: ``None`` (ALU, next-cycle via forwarding),
    #: ``"load"`` (one exposed delay slot) or ``"mul"`` (two delay slots).
    delay_kind: str | None = None
    #: Control-transfer kind (``None`` for non-control-flow instructions).
    control: ControlKind | None = None
    #: True for instructions restricted to the first issue slot (branches,
    #: memory accesses, stack control, multiplies, special moves).
    slot0_only: bool = False
    #: True for long-immediate ALU operations, which occupy both slots.
    long_imm: bool = False

    @property
    def is_load(self) -> bool:
        return self.fmt is Format.LOAD

    @property
    def is_store(self) -> bool:
        return self.fmt is Format.STORE

    @property
    def is_mem_access(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_control_flow(self) -> bool:
        return self.control is not None

    @property
    def is_stack_control(self) -> bool:
        return self.fmt is Format.STACK

    @property
    def writes_gpr(self) -> bool:
        return self.fmt in (
            Format.ALU_R,
            Format.ALU_I,
            Format.ALU_L,
            Format.LI,
            Format.LOAD,
            Format.MFS,
        )

    @property
    def writes_pred(self) -> bool:
        return self.fmt in (Format.CMP_R, Format.CMP_I, Format.PRED)

    @property
    def uses_method_cache(self) -> bool:
        """True if the instruction may trigger a method-cache fill."""
        return self.control in (ControlKind.CALL, ControlKind.RETURN) or (
            self.control is ControlKind.BRANCH and self.mnemonic == "brcf"
        )

    @property
    def is_decoupled_load(self) -> bool:
        """True for split main-memory loads (completed by ``wmem``)."""
        return self.is_load and self.mem_type is MemType.MAIN


class Opcode(Enum):
    """All Patmos opcodes.  The enum value is the assembly mnemonic."""

    # ALU register-register
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SHL = "shl"
    SHR = "shr"
    SRA = "sra"
    SHADD = "shadd"     # rd = (rs1 << 1) + rs2
    SHADD2 = "shadd2"   # rd = (rs1 << 2) + rs2
    # ALU register-immediate (12-bit signed immediate)
    ADDI = "addi"
    SUBI = "subi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    SRAI = "srai"
    # ALU long immediate (32-bit immediate in the second slot)
    ADDL = "addl"
    SUBL = "subl"
    ANDL = "andl"
    ORL = "orl"
    XORL = "xorl"
    # Load 16-bit immediate into low/high half
    LIL = "lil"
    LIH = "lih"
    # Multiplication (results in sl/sh)
    MUL = "mul"
    MULU = "mulu"
    # Compares (register and immediate forms)
    CMPEQ = "cmpeq"
    CMPNEQ = "cmpneq"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPULT = "cmpult"
    CMPULE = "cmpule"
    BTEST = "btest"
    CMPIEQ = "cmpieq"
    CMPINEQ = "cmpineq"
    CMPILT = "cmpilt"
    CMPILE = "cmpile"
    CMPIULT = "cmpiult"
    CMPIULE = "cmpiule"
    # Predicate combine
    PAND = "pand"
    POR = "por"
    PXOR = "pxor"
    PNOT = "pnot"
    # Typed loads: static/constant cache (C$)
    LWC = "lwc"
    LHC = "lhc"
    LBC = "lbc"
    LHUC = "lhuc"
    LBUC = "lbuc"
    # Typed loads: object/heap cache (D$)
    LWO = "lwo"
    LHO = "lho"
    LBO = "lbo"
    LHUO = "lhuo"
    LBUO = "lbuo"
    # Typed loads: stack cache (S$)
    LWS = "lws"
    LHS = "lhs"
    LBS = "lbs"
    LHUS = "lhus"
    LBUS = "lbus"
    # Typed loads: scratchpad (SP)
    LWL = "lwl"
    LHL = "lhl"
    LBL = "lbl"
    LHUL = "lhul"
    LBUL = "lbul"
    # Typed loads: uncached main memory (split loads)
    LWM = "lwm"
    LHM = "lhm"
    LBM = "lbm"
    LHUM = "lhum"
    LBUM = "lbum"
    # Typed stores
    SWC = "swc"
    SHC = "shc"
    SBC = "sbc"
    SWO = "swo"
    SHO = "sho"
    SBO = "sbo"
    SWS = "sws"
    SHS = "shs"
    SBS = "sbs"
    SWL = "swl"
    SHL_ST = "shl.st"
    SBL = "sbl"
    SWM = "swm"
    SHM = "shm"
    SBM = "sbm"
    # Wait for outstanding main-memory access (split-load completion)
    WMEM = "wmem"
    # Stack-cache control
    SRES = "sres"
    SENS = "sens"
    SFREE = "sfree"
    # Control flow
    BR = "br"
    BRCF = "brcf"
    CALL = "call"
    CALLR = "callr"
    RET = "ret"
    # Special register moves
    MTS = "mts"
    MFS = "mfs"
    # Misc
    NOP = "nop"
    HALT = "halt"
    OUT = "out"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def info(self) -> OpInfo:
        # ``_info`` is stamped onto every member once OPCODE_TABLE is built,
        # turning the hot ``instr.info`` path into one attribute load instead
        # of a dict probe.
        return self._info


def _build_table() -> dict[Opcode, OpInfo]:
    table: dict[Opcode, OpInfo] = {}

    def put(op: Opcode, **kwargs) -> None:
        table[op] = OpInfo(mnemonic=op.value, **kwargs)

    for op in (
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOR,
        Opcode.SHL, Opcode.SHR, Opcode.SRA, Opcode.SHADD, Opcode.SHADD2,
    ):
        put(op, fmt=Format.ALU_R)
    for op in (
        Opcode.ADDI, Opcode.SUBI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
        Opcode.SHLI, Opcode.SHRI, Opcode.SRAI,
    ):
        put(op, fmt=Format.ALU_I)
    for op in (Opcode.ADDL, Opcode.SUBL, Opcode.ANDL, Opcode.ORL, Opcode.XORL):
        put(op, fmt=Format.ALU_L, long_imm=True, slot0_only=True)
    put(Opcode.LIL, fmt=Format.LI)
    put(Opcode.LIH, fmt=Format.LI)
    put(Opcode.MUL, fmt=Format.MUL, delay_kind="mul", slot0_only=True)
    put(Opcode.MULU, fmt=Format.MUL, delay_kind="mul", slot0_only=True)
    for op in (
        Opcode.CMPEQ, Opcode.CMPNEQ, Opcode.CMPLT, Opcode.CMPLE,
        Opcode.CMPULT, Opcode.CMPULE, Opcode.BTEST,
    ):
        put(op, fmt=Format.CMP_R)
    for op in (
        Opcode.CMPIEQ, Opcode.CMPINEQ, Opcode.CMPILT, Opcode.CMPILE,
        Opcode.CMPIULT, Opcode.CMPIULE,
    ):
        put(op, fmt=Format.CMP_I)
    for op in (Opcode.PAND, Opcode.POR, Opcode.PXOR, Opcode.PNOT):
        put(op, fmt=Format.PRED)

    load_groups = {
        MemType.STATIC: (Opcode.LWC, Opcode.LHC, Opcode.LBC, Opcode.LHUC, Opcode.LBUC),
        MemType.OBJECT: (Opcode.LWO, Opcode.LHO, Opcode.LBO, Opcode.LHUO, Opcode.LBUO),
        MemType.STACK: (Opcode.LWS, Opcode.LHS, Opcode.LBS, Opcode.LHUS, Opcode.LBUS),
        MemType.LOCAL: (Opcode.LWL, Opcode.LHL, Opcode.LBL, Opcode.LHUL, Opcode.LBUL),
        MemType.MAIN: (Opcode.LWM, Opcode.LHM, Opcode.LBM, Opcode.LHUM, Opcode.LBUM),
    }
    load_shapes = ((4, True), (2, True), (1, True), (2, False), (1, False))
    for mem_type, ops in load_groups.items():
        for op, (width, signed) in zip(ops, load_shapes):
            put(
                op,
                fmt=Format.LOAD,
                mem_type=mem_type,
                width=width,
                signed=signed,
                delay_kind=None if mem_type is MemType.MAIN else "load",
                slot0_only=True,
            )

    store_groups = {
        MemType.STATIC: (Opcode.SWC, Opcode.SHC, Opcode.SBC),
        MemType.OBJECT: (Opcode.SWO, Opcode.SHO, Opcode.SBO),
        MemType.STACK: (Opcode.SWS, Opcode.SHS, Opcode.SBS),
        MemType.LOCAL: (Opcode.SWL, Opcode.SHL_ST, Opcode.SBL),
        MemType.MAIN: (Opcode.SWM, Opcode.SHM, Opcode.SBM),
    }
    for mem_type, ops in store_groups.items():
        for op, width in zip(ops, (4, 2, 1)):
            put(op, fmt=Format.STORE, mem_type=mem_type, width=width,
                slot0_only=True)

    put(Opcode.WMEM, fmt=Format.WAIT, slot0_only=True)
    for op in (Opcode.SRES, Opcode.SENS, Opcode.SFREE):
        put(op, fmt=Format.STACK, slot0_only=True)

    put(Opcode.BR, fmt=Format.BRANCH, control=ControlKind.BRANCH, slot0_only=True)
    put(Opcode.BRCF, fmt=Format.BRANCH, control=ControlKind.BRANCH, slot0_only=True)
    put(Opcode.CALL, fmt=Format.CALL, control=ControlKind.CALL, slot0_only=True)
    put(Opcode.CALLR, fmt=Format.CALLR, control=ControlKind.CALL, slot0_only=True)
    put(Opcode.RET, fmt=Format.RET, control=ControlKind.RETURN, slot0_only=True)
    put(Opcode.MTS, fmt=Format.MTS, slot0_only=True)
    put(Opcode.MFS, fmt=Format.MFS, slot0_only=True)
    put(Opcode.NOP, fmt=Format.NOP)
    put(Opcode.HALT, fmt=Format.HALT, slot0_only=True)
    put(Opcode.OUT, fmt=Format.OUT, slot0_only=True)
    return table


#: Mapping from every opcode to its static metadata.
OPCODE_TABLE: dict[Opcode, OpInfo] = _build_table()

for _op, _info in OPCODE_TABLE.items():
    _op._info = _info
del _op, _info

#: Mapping from assembly mnemonic to opcode.
MNEMONIC_TABLE: dict[str, Opcode] = {op.value: op for op in Opcode}


def opcode_from_mnemonic(mnemonic: str) -> Opcode:
    """Look up an opcode by its assembly mnemonic."""
    try:
        return MNEMONIC_TABLE[mnemonic.strip().lower()]
    except KeyError as exc:
        raise IsaError(f"unknown mnemonic: {mnemonic!r}") from exc


def result_delay_slots(info: OpInfo, pipeline) -> int:
    """Exposed delay slots before an instruction's result may be used.

    ``pipeline`` is a :class:`repro.config.PipelineConfig`.  ALU results are
    forwarded to the next bundle (zero delay slots); loads and multiplies have
    architecturally visible delays.
    """
    if info.delay_kind == "load":
        return pipeline.load_delay_slots
    if info.delay_kind == "mul":
        return pipeline.mul_delay_slots
    return 0


def control_delay_slots(info: OpInfo, pipeline) -> int:
    """Exposed delay slots of a control-transfer instruction."""
    if info.control is ControlKind.BRANCH:
        if info.uses_method_cache:
            return pipeline.call_delay_slots
        return pipeline.branch_delay_slots
    if info.control in (ControlKind.CALL, ControlKind.RETURN):
        return pipeline.call_delay_slots
    return 0
