"""Register definitions and name parsing for the Patmos ISA.

Patmos has 32 general-purpose registers (``r0`` .. ``r31``), eight predicate
registers (``p0`` .. ``p7``) and a small set of special registers used by the
stack cache, the multiplier and the call/return mechanism.

* ``r0`` always reads as zero; writes to it are ignored.
* ``p0`` always reads as true; writes to it are ignored.
"""

from __future__ import annotations

from enum import Enum

from ..config import NUM_GPRS, NUM_PREDS
from ..errors import IsaError


class SpecialReg(Enum):
    """Special registers of the Patmos core."""

    #: Stack top pointer of the stack cache (grows downwards).
    ST = "st"
    #: Spill pointer of the stack cache (top of the cached region in memory).
    SS = "ss"
    #: Low word of the most recent multiplication result.
    SL = "sl"
    #: High word of the most recent multiplication result.
    SH = "sh"
    #: Return function base (method-cache entry of the caller).
    SRB = "srb"
    #: Return offset within the caller function.
    SRO = "sro"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_SPECIAL_BY_NAME = {reg.value: reg for reg in SpecialReg}


def parse_gpr(name: str | int) -> int:
    """Parse a general-purpose register name (``"r5"`` or ``5``) to its index."""
    if isinstance(name, int):
        index = name
    else:
        text = name.strip().lower()
        if not text.startswith("r"):
            raise IsaError(f"not a general-purpose register: {name!r}")
        try:
            index = int(text[1:])
        except ValueError as exc:
            raise IsaError(f"not a general-purpose register: {name!r}") from exc
    if not 0 <= index < NUM_GPRS:
        raise IsaError(f"general-purpose register index out of range: {name!r}")
    return index


def parse_pred(name: str | int) -> int:
    """Parse a predicate register name (``"p3"`` or ``3``) to its index."""
    if isinstance(name, int):
        index = name
    else:
        text = name.strip().lower()
        if not text.startswith("p"):
            raise IsaError(f"not a predicate register: {name!r}")
        try:
            index = int(text[1:])
        except ValueError as exc:
            raise IsaError(f"not a predicate register: {name!r}") from exc
    if not 0 <= index < NUM_PREDS:
        raise IsaError(f"predicate register index out of range: {name!r}")
    return index


def parse_special(name: str | SpecialReg) -> SpecialReg:
    """Parse a special register name (``"st"``) to a :class:`SpecialReg`."""
    if isinstance(name, SpecialReg):
        return name
    text = name.strip().lower()
    if text not in _SPECIAL_BY_NAME:
        raise IsaError(f"not a special register: {name!r}")
    return _SPECIAL_BY_NAME[text]


def gpr_name(index: int) -> str:
    """Return the assembly name of a general-purpose register."""
    return f"r{index}"


def pred_name(index: int) -> str:
    """Return the assembly name of a predicate register."""
    return f"p{index}"


#: Order of special registers used by the binary encoding.
SPECIAL_ENCODING_ORDER = tuple(SpecialReg)


def special_code(reg: SpecialReg) -> int:
    """Return the numeric code of a special register for encoding."""
    return SPECIAL_ENCODING_ORDER.index(reg)


def special_from_code(code: int) -> SpecialReg:
    """Return the special register for a numeric encoding code."""
    try:
        return SPECIAL_ENCODING_ORDER[code]
    except IndexError as exc:
        raise IsaError(f"invalid special register code: {code}") from exc
