"""Binary encoding and decoding of Patmos instructions and bundles.

The encoding follows the constraints stated in Section 3.1 of the paper:

* 32-bit instruction words; the **first instruction of a bundle carries the
  bundle-length bit** (bit 31).
* Every instruction is predicated: a 4-bit guard field (negate bit + predicate
  register) sits in bits 30..27.
* ALU immediates are **sign-extended 12-bit** constants; ``lil``/``lih`` load
  16-bit halves; a full 32-bit constant uses the second instruction slot
  (long-immediate ALU operations).
* Branches are relative with a **22-bit offset** (in words); calls carry a
  22-bit absolute word address.
* Register fields are at fixed positions within each format so the register
  file can be read in parallel with decoding.

Layout of one instruction word::

    31       30      29..27  26..22  21..0
    bundle   neg     pred    opclass format-specific fields

Branch/call targets are encoded relative to (or as) word addresses, therefore
encoding and decoding take the instruction's own byte address.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EncodingError
from .instruction import ALWAYS, Bundle, Guard, Instruction
from .opcodes import Format, Opcode
from .registers import special_code, special_from_code

WORD_BITS = 32
WORD_MASK = 0xFFFF_FFFF


# ---------------------------------------------------------------------------
# Opclass assignment
# ---------------------------------------------------------------------------

# Opclasses 0..13 directly encode the immediate-format instructions so that a
# full 12-bit immediate fits together with two register fields.
_IMM_OPS = (
    Opcode.ADDI, Opcode.SUBI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SHLI, Opcode.SHRI, Opcode.SRAI,
    Opcode.CMPIEQ, Opcode.CMPINEQ, Opcode.CMPILT, Opcode.CMPILE,
    Opcode.CMPIULT, Opcode.CMPIULE,
)

OPC_LI = 14
OPC_BR = 15
OPC_BRCF = 16
OPC_CALL = 17
OPC_LOAD = 18
OPC_STORE = 19
OPC_ALU_R = 20
OPC_ALU_L = 21
OPC_MUL = 22
OPC_CMP_R = 23
OPC_PRED = 24
OPC_STACK = 25
OPC_SPECIAL = 26
OPC_MISC = 27

_ALU_R_OPS = (
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOR,
    Opcode.SHL, Opcode.SHR, Opcode.SRA, Opcode.SHADD, Opcode.SHADD2,
)
_ALU_L_OPS = (Opcode.ADDL, Opcode.SUBL, Opcode.ANDL, Opcode.ORL, Opcode.XORL)
_LI_OPS = (Opcode.LIL, Opcode.LIH)
_MUL_OPS = (Opcode.MUL, Opcode.MULU)
_CMP_R_OPS = (
    Opcode.CMPEQ, Opcode.CMPNEQ, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.CMPULT, Opcode.CMPULE, Opcode.BTEST,
)
_PRED_OPS = (Opcode.PAND, Opcode.POR, Opcode.PXOR, Opcode.PNOT)
_LOAD_OPS = tuple(op for op in Opcode if op.info.is_load)
_STORE_OPS = tuple(op for op in Opcode if op.info.is_store)
_STACK_OPS = (Opcode.SRES, Opcode.SENS, Opcode.SFREE)
_SPECIAL_OPS = (Opcode.MTS, Opcode.MFS)
_MISC_OPS = (Opcode.CALLR, Opcode.RET, Opcode.WMEM, Opcode.NOP, Opcode.HALT,
             Opcode.OUT)


def _subcode_table(ops: tuple[Opcode, ...]) -> tuple[dict, dict]:
    by_op = {op: i for i, op in enumerate(ops)}
    by_code = {i: op for i, op in enumerate(ops)}
    return by_op, by_code


_LOAD_SUB, _LOAD_BY_CODE = _subcode_table(_LOAD_OPS)
_STORE_SUB, _STORE_BY_CODE = _subcode_table(_STORE_OPS)
_ALU_R_SUB, _ALU_R_BY_CODE = _subcode_table(_ALU_R_OPS)
_ALU_L_SUB, _ALU_L_BY_CODE = _subcode_table(_ALU_L_OPS)
_LI_SUB, _LI_BY_CODE = _subcode_table(_LI_OPS)
_MUL_SUB, _MUL_BY_CODE = _subcode_table(_MUL_OPS)
_CMP_R_SUB, _CMP_R_BY_CODE = _subcode_table(_CMP_R_OPS)
_PRED_SUB, _PRED_BY_CODE = _subcode_table(_PRED_OPS)
_STACK_SUB, _STACK_BY_CODE = _subcode_table(_STACK_OPS)
_SPECIAL_SUB, _SPECIAL_BY_CODE = _subcode_table(_SPECIAL_OPS)
_MISC_SUB, _MISC_BY_CODE = _subcode_table(_MISC_OPS)

_IMM_OPC = {op: i for i, op in enumerate(_IMM_OPS)}
_IMM_BY_OPC = {i: op for i, op in enumerate(_IMM_OPS)}


# ---------------------------------------------------------------------------
# Bit-field helpers
# ---------------------------------------------------------------------------


def _field(value: int, width: int, name: str) -> int:
    """Check an unsigned field value and return it."""
    if value is None:
        raise EncodingError(f"missing field {name}")
    if not 0 <= value < (1 << width):
        raise EncodingError(f"field {name}={value} does not fit in {width} bits")
    return value


def _signed_field(value: int, width: int, name: str) -> int:
    """Check a signed field value and return its two's-complement encoding."""
    if value is None:
        raise EncodingError(f"missing field {name}")
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"field {name}={value} does not fit in signed {width} bits")
    return value & ((1 << width) - 1)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend a ``width``-bit value to a Python int."""
    mask = (1 << width) - 1
    value &= mask
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EncodedInstruction:
    """Result of encoding a single instruction: one or two 32-bit words."""

    words: tuple[int, ...]


def _resolved_imm(instr: Instruction, what: str) -> int:
    if instr.imm is not None:
        return instr.imm
    if isinstance(instr.target, int):
        return instr.target
    raise EncodingError(
        f"{instr.info.mnemonic}: unresolved symbolic {what} "
        f"({instr.target!r}); link the program before encoding"
    )


def _resolved_target(instr: Instruction) -> int:
    if isinstance(instr.target, int):
        return instr.target
    raise EncodingError(
        f"{instr.info.mnemonic}: unresolved symbolic target {instr.target!r}; "
        "link the program before encoding"
    )


def encode_instruction(instr: Instruction, addr: int = 0,
                       bundle_bit: bool = False) -> EncodedInstruction:
    """Encode one instruction into one (or, for long immediates, two) words.

    ``addr`` is the byte address of the instruction's bundle, needed for
    relative branch offsets.  ``bundle_bit`` is set by the caller on the first
    instruction of a 64-bit bundle.
    """
    op = instr.opcode
    info = instr.info
    fmt = info.fmt
    guard = instr.guard

    word = 0
    if bundle_bit:
        word |= 1 << 31
    word |= (1 if guard.negate else 0) << 30
    word |= _field(guard.pred, 3, "guard") << 27

    extra_word: int | None = None

    if op in _IMM_OPC:
        opc = _IMM_OPC[op]
        word |= opc << 22
        dest = instr.pd if fmt is Format.CMP_I else instr.rd
        word |= _field(dest, 5, "rd/pd") << 17
        word |= _field(instr.rs1, 5, "rs1") << 12
        word |= _signed_field(_resolved_imm(instr, "immediate"), 12, "imm12")
    elif fmt is Format.LI:
        word |= OPC_LI << 22
        word |= _LI_SUB[op] << 21
        word |= _field(instr.rd, 5, "rd") << 16
        imm = _resolved_imm(instr, "immediate")
        if op is Opcode.LIH:
            word |= _field(imm & 0xFFFF, 16, "imm16")
        else:
            word |= _signed_field(imm, 16, "imm16")
    elif op in (Opcode.BR, Opcode.BRCF):
        word |= (OPC_BR if op is Opcode.BR else OPC_BRCF) << 22
        target = _resolved_target(instr)
        offset_words = (target - addr) // 4
        word |= _signed_field(offset_words, 22, "branch offset")
    elif op is Opcode.CALL:
        word |= OPC_CALL << 22
        target = _resolved_target(instr)
        if target % 4 != 0:
            raise EncodingError("call target must be word aligned")
        word |= _field(target // 4, 22, "call target")
    elif fmt is Format.LOAD:
        word |= OPC_LOAD << 22
        word |= _LOAD_SUB[op] << 17
        word |= _field(instr.rd, 5, "rd") << 12
        word |= _field(instr.rs1, 5, "rs1") << 7
        offset = _resolved_imm(instr, "offset")
        if offset % info.width != 0:
            raise EncodingError(
                f"{info.mnemonic}: offset {offset} not aligned to access width")
        word |= _signed_field(offset // info.width, 7, "offset")
    elif fmt is Format.STORE:
        word |= OPC_STORE << 22
        word |= _STORE_SUB[op] << 17
        word |= _field(instr.rs1, 5, "rs1") << 12
        word |= _field(instr.rs2, 5, "rs2") << 7
        offset = _resolved_imm(instr, "offset")
        if offset % info.width != 0:
            raise EncodingError(
                f"{info.mnemonic}: offset {offset} not aligned to access width")
        word |= _signed_field(offset // info.width, 7, "offset")
    elif fmt is Format.ALU_R:
        word |= OPC_ALU_R << 22
        word |= _ALU_R_SUB[op] << 18
        word |= _field(instr.rd, 5, "rd") << 13
        word |= _field(instr.rs1, 5, "rs1") << 8
        word |= _field(instr.rs2, 5, "rs2") << 3
    elif fmt is Format.ALU_L:
        word |= OPC_ALU_L << 22
        word |= _ALU_L_SUB[op] << 19
        word |= _field(instr.rd, 5, "rd") << 14
        word |= _field(instr.rs1, 5, "rs1") << 9
        extra_word = _resolved_imm(instr, "long immediate") & WORD_MASK
    elif fmt is Format.MUL:
        word |= OPC_MUL << 22
        word |= _MUL_SUB[op] << 21
        word |= _field(instr.rs1, 5, "rs1") << 16
        word |= _field(instr.rs2, 5, "rs2") << 11
    elif fmt is Format.CMP_R:
        word |= OPC_CMP_R << 22
        word |= _CMP_R_SUB[op] << 19
        word |= _field(instr.pd, 3, "pd") << 16
        word |= _field(instr.rs1, 5, "rs1") << 11
        word |= _field(instr.rs2, 5, "rs2") << 6
    elif fmt is Format.PRED:
        word |= OPC_PRED << 22
        word |= _PRED_SUB[op] << 20
        word |= _field(instr.pd, 3, "pd") << 17
        word |= _field(instr.ps1, 3, "ps1") << 14
        word |= _field(instr.ps2 if instr.ps2 is not None else 0, 3, "ps2") << 11
    elif fmt is Format.STACK:
        word |= OPC_STACK << 22
        word |= _STACK_SUB[op] << 20
        word |= _field(_resolved_imm(instr, "word count"), 18, "imm18")
    elif fmt in (Format.MTS, Format.MFS):
        word |= OPC_SPECIAL << 22
        word |= _SPECIAL_SUB[op] << 21
        reg = instr.rs1 if fmt is Format.MTS else instr.rd
        word |= _field(reg, 5, "register") << 16
        word |= _field(special_code(instr.special), 3, "special") << 13
    elif fmt in (Format.CALLR, Format.RET, Format.WAIT, Format.NOP,
                 Format.HALT, Format.OUT):
        word |= OPC_MISC << 22
        word |= _MISC_SUB[op] << 19
        reg = instr.rs1 if instr.rs1 is not None else 0
        word |= _field(reg, 5, "rs1") << 14
    else:  # pragma: no cover - defensive
        raise EncodingError(f"cannot encode opcode {op}")

    words = (word,) if extra_word is None else (word, extra_word)
    return EncodedInstruction(words=words)


def encode_bundle(bundle: Bundle, addr: int = 0) -> list[int]:
    """Encode a bundle into its 32-bit words (one or two)."""
    first = encode_instruction(bundle.first, addr=addr, bundle_bit=bundle.is_long)
    words = list(first.words)
    if bundle.second is not None:
        second = encode_instruction(bundle.second, addr=addr, bundle_bit=False)
        if len(second.words) != 1:  # pragma: no cover - bundle validation forbids
            raise EncodingError("second slot must encode to a single word")
        words.extend(second.words)
    if len(words) != bundle.size_bytes // 4:
        raise EncodingError("encoded bundle size mismatch")
    return words


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_guard(word: int) -> Guard:
    negate = bool((word >> 30) & 1)
    pred = (word >> 27) & 0x7
    if pred == 0 and not negate:
        return ALWAYS
    return Guard(pred, negate)


def decode_instruction(word: int, addr: int = 0,
                       next_word: int | None = None) -> tuple[Instruction, int]:
    """Decode a single instruction word.

    Returns the instruction and the number of words consumed (2 for long
    immediates, else 1).  ``addr`` is the byte address of the word, used to
    reconstruct absolute branch targets.
    """
    guard = _decode_guard(word)
    opc = (word >> 22) & 0x1F
    consumed = 1

    def make(op: Opcode, **kwargs) -> Instruction:
        return Instruction(op, guard=guard, **kwargs)

    if opc in _IMM_BY_OPC:
        op = _IMM_BY_OPC[opc]
        dest = (word >> 17) & 0x1F
        rs1 = (word >> 12) & 0x1F
        imm = sign_extend(word, 12)
        if op.info.fmt is Format.CMP_I:
            instr = make(op, pd=dest & 0x7, rs1=rs1, imm=imm)
        else:
            instr = make(op, rd=dest, rs1=rs1, imm=imm)
    elif opc == OPC_LI:
        op = _LI_BY_CODE[(word >> 21) & 0x1]
        rd = (word >> 16) & 0x1F
        imm = (word & 0xFFFF) if op is Opcode.LIH else sign_extend(word, 16)
        instr = make(op, rd=rd, imm=imm)
    elif opc in (OPC_BR, OPC_BRCF):
        op = Opcode.BR if opc == OPC_BR else Opcode.BRCF
        offset_words = sign_extend(word, 22)
        instr = make(op, target=addr + 4 * offset_words)
    elif opc == OPC_CALL:
        target = (word & 0x3FFFFF) * 4
        instr = make(Opcode.CALL, target=target)
    elif opc == OPC_LOAD:
        op = _LOAD_BY_CODE[(word >> 17) & 0x1F]
        rd = (word >> 12) & 0x1F
        rs1 = (word >> 7) & 0x1F
        offset = sign_extend(word, 7) * op.info.width
        instr = make(op, rd=rd, rs1=rs1, imm=offset)
    elif opc == OPC_STORE:
        op = _STORE_BY_CODE[(word >> 17) & 0x1F]
        rs1 = (word >> 12) & 0x1F
        rs2 = (word >> 7) & 0x1F
        offset = sign_extend(word, 7) * op.info.width
        instr = make(op, rs1=rs1, rs2=rs2, imm=offset)
    elif opc == OPC_ALU_R:
        op = _ALU_R_BY_CODE[(word >> 18) & 0xF]
        instr = make(op, rd=(word >> 13) & 0x1F, rs1=(word >> 8) & 0x1F,
                     rs2=(word >> 3) & 0x1F)
    elif opc == OPC_ALU_L:
        op = _ALU_L_BY_CODE[(word >> 19) & 0x7]
        if next_word is None:
            raise EncodingError("long-immediate instruction needs a second word")
        imm = sign_extend(next_word, 32)
        instr = make(op, rd=(word >> 14) & 0x1F, rs1=(word >> 9) & 0x1F, imm=imm)
        consumed = 2
    elif opc == OPC_MUL:
        op = _MUL_BY_CODE[(word >> 21) & 0x1]
        instr = make(op, rs1=(word >> 16) & 0x1F, rs2=(word >> 11) & 0x1F)
    elif opc == OPC_CMP_R:
        op = _CMP_R_BY_CODE[(word >> 19) & 0x7]
        instr = make(op, pd=(word >> 16) & 0x7, rs1=(word >> 11) & 0x1F,
                     rs2=(word >> 6) & 0x1F)
    elif opc == OPC_PRED:
        op = _PRED_BY_CODE[(word >> 20) & 0x3]
        pd = (word >> 17) & 0x7
        ps1 = (word >> 14) & 0x7
        ps2 = (word >> 11) & 0x7
        if op is Opcode.PNOT:
            instr = make(op, pd=pd, ps1=ps1)
        else:
            instr = make(op, pd=pd, ps1=ps1, ps2=ps2)
    elif opc == OPC_STACK:
        op = _STACK_BY_CODE[(word >> 20) & 0x3]
        instr = make(op, imm=word & 0x3FFFF)
    elif opc == OPC_SPECIAL:
        op = _SPECIAL_BY_CODE[(word >> 21) & 0x1]
        reg = (word >> 16) & 0x1F
        special = special_from_code((word >> 13) & 0x7)
        if op is Opcode.MTS:
            instr = make(op, rs1=reg, special=special)
        else:
            instr = make(op, rd=reg, special=special)
    elif opc == OPC_MISC:
        op = _MISC_BY_CODE[(word >> 19) & 0x7]
        rs1 = (word >> 14) & 0x1F
        if op in (Opcode.CALLR, Opcode.OUT):
            instr = make(op, rs1=rs1)
        else:
            instr = make(op)
    else:
        raise EncodingError(f"invalid opclass {opc} in word {word:#010x}")

    return instr, consumed


def decode_bundle(words: list[int], addr: int = 0) -> tuple[Bundle, int]:
    """Decode a bundle starting at ``words[0]``.

    Returns the bundle and the number of 32-bit words consumed.
    """
    if not words:
        raise EncodingError("no words to decode")
    first_word = words[0]
    is_long = bool(first_word >> 31)
    first, consumed = decode_instruction(
        first_word, addr=addr, next_word=words[1] if len(words) > 1 else None)
    if consumed == 2:
        if not is_long:
            raise EncodingError("long-immediate instruction without bundle bit")
        return Bundle(first), 2
    if not is_long:
        return Bundle(first), 1
    if len(words) < 2:
        raise EncodingError("bundle bit set but second word missing")
    second, second_consumed = decode_instruction(words[1], addr=addr + 4)
    if second_consumed != 1:
        raise EncodingError("second slot may not hold a long immediate")
    return Bundle(first, second), 2


def encode_bundles(bundles: list[Bundle], base_addr: int = 0) -> list[int]:
    """Encode a sequence of bundles laid out contiguously from ``base_addr``."""
    words: list[int] = []
    addr = base_addr
    for bundle in bundles:
        bundle_words = encode_bundle(bundle, addr=addr)
        words.extend(bundle_words)
        addr += 4 * len(bundle_words)
    return words


def decode_bundles(words: list[int], base_addr: int = 0) -> list[tuple[int, Bundle]]:
    """Decode a contiguous word stream into ``(address, bundle)`` pairs."""
    result: list[tuple[int, Bundle]] = []
    index = 0
    addr = base_addr
    while index < len(words):
        bundle, consumed = decode_bundle(words[index:index + 2], addr=addr)
        result.append((addr, bundle))
        index += consumed
        addr += 4 * consumed
    return result
