"""Exception hierarchy for the Patmos reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library errors with a single ``except`` clause.

The resilience errors (:class:`SimulationTimeout`, :class:`WorkerCrashed`,
:class:`CacheCorruption`, :class:`FaultInjectionError`) carry machine-readable
context — which cell, which cycle, which core — so runner stacks can turn
them into structured :class:`FailedCell` records instead of swallowing a bare
string.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid processor or memory configuration was supplied."""


class IsaError(ReproError):
    """An instruction violates the instruction-set architecture rules."""


class EncodingError(ReproError):
    """An instruction or bundle cannot be encoded or decoded."""


class AssemblerError(ReproError):
    """The textual assembler rejected its input."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class LinkError(ReproError):
    """Symbol resolution or image layout failed."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""


class ScheduleViolation(SimulationError):
    """Code read a result before its exposed delay had elapsed.

    Patmos never stalls to hide latencies; instead all delays are visible at
    the ISA level.  Reading a register before the producing instruction's
    delay has elapsed returns the *old* value in hardware.  The cycle-accurate
    simulator reproduces that behaviour by default and raises this error when
    run in ``strict`` mode, which is useful for validating compiler output.
    """


class MemoryAccessError(SimulationError):
    """An access touched an unmapped or misaligned memory location."""


class SimulationTimeout(SimulationError):
    """A watchdog stopped a simulation that exceeded its cycle or time budget.

    ``kind`` says which budget fired (``"cycles"`` or ``"wall_clock"``),
    ``limit`` the configured budget, ``cycle`` the global cycle reached and
    ``core_id`` the core being advanced when the watchdog fired (``None``
    when the whole system tripped the budget together).

    Both armed budgets are carried structurally — ``max_cycles`` and
    ``max_wall_s`` regardless of which one fired — and ``cycles_completed``
    is how far the simulation got, so :class:`FailedCell` records and sweep
    journal entries can report progress without parsing the message.
    """

    def __init__(self, message: str, kind: str = "cycles",
                 limit: float | int | None = None,
                 cycle: int | None = None, core_id: int | None = None,
                 max_cycles: int | None = None,
                 max_wall_s: float | None = None):
        super().__init__(message)
        self.kind = kind
        self.limit = limit
        self.cycle = cycle
        self.core_id = core_id
        self.max_cycles = (max_cycles if max_cycles is not None
                           else (limit if kind == "cycles" else None))
        self.max_wall_s = (max_wall_s if max_wall_s is not None
                           else (limit if kind == "wall_clock" else None))

    @property
    def cycles_completed(self) -> int | None:
        """Global cycle the simulation reached when the watchdog fired."""
        return self.cycle

    def context(self) -> dict:
        return {"kind": self.kind, "limit": self.limit,
                "cycle": self.cycle, "core": self.core_id,
                "max_cycles": self.max_cycles, "max_wall_s": self.max_wall_s,
                "cycles_completed": self.cycles_completed}


class FaultInjectionError(SimulationError):
    """A fault plan was invalid or an injected fault was unrecoverable.

    Raised for malformed plans (events outside the system's cores or memory
    banks) and for bus transfers that still fail after the bounded retries —
    the unrecovered outcome a campaign must report rather than hide.
    """

    def __init__(self, message: str, cycle: int | None = None,
                 core_id: int | None = None, fault: object = None):
        super().__init__(message)
        self.cycle = cycle
        self.core_id = core_id
        self.fault = fault

    def context(self) -> dict:
        return {"cycle": self.cycle, "core": self.core_id,
                "fault": repr(self.fault) if self.fault is not None else None}


class CacheError(ReproError):
    """A cache was configured or used inconsistently."""


class StackCacheError(CacheError):
    """The stack-cache control instructions were used inconsistently."""


class CompilerError(ReproError):
    """A compilation pass could not be applied."""


class LoopBoundError(CompilerError):
    """A loop-bound annotation is inconsistent with the function's blocks.

    Carries the offending label and function so callers (and tests) can
    react to the structured fields instead of parsing the message.
    """

    def __init__(self, message: str, *, function: str, label: str):
        super().__init__(message)
        self.function = function
        self.label = label


class WcetError(ReproError):
    """WCET analysis failed (e.g. missing loop bounds or unbounded flow)."""


class ExplorationError(ReproError):
    """A design-space exploration sweep was invalid or produced bad results.

    Raised for malformed parameter axes, corrupt result-cache files and
    functional mismatches discovered while sweeping (a configuration whose
    simulated output differs from the kernel's reference output).
    """


class WorkerCrashed(ExplorationError):
    """A pool worker died (killed, OOM, segfault) while executing a cell.

    Unlike an exception *raised by* a cell, a crashed worker produces no
    Python traceback of its own; this error reconstructs the context — the
    cell key and how often the runner retried — so sweeps can record a
    structured failure instead of aborting.
    """

    def __init__(self, message: str, cell_key: str | None = None,
                 attempts: int = 1):
        super().__init__(message)
        self.cell_key = cell_key
        self.attempts = attempts

    def context(self) -> dict:
        return {"cell_key": self.cell_key, "attempts": self.attempts}


class JobError(ReproError):
    """The durable job layer was misused or a run directory is unusable.

    Raised for unknown run ids, malformed run metadata, and journals whose
    header does not match the sweep being resumed.
    """

    def __init__(self, message: str, run_id: str | None = None):
        super().__init__(message)
        self.run_id = run_id


class SweepInterrupted(ReproError):
    """A sweep drained gracefully after SIGINT/SIGTERM and can be resumed.

    The journal was flushed before this was raised, so every cell completed
    up to the interruption survives; ``run_id`` names the durable run
    directory and ``resume_argv`` is the exact command-line suffix that
    resumes it (the CLIs print it in the exit message).
    """

    def __init__(self, message: str, run_id: str | None = None,
                 resume_argv: str | None = None):
        super().__init__(message)
        self.run_id = run_id
        self.resume_argv = resume_argv

    def context(self) -> dict:
        return {"run_id": self.run_id, "resume_argv": self.resume_argv}


class CacheCorruption(ExplorationError):
    """A result-cache file was unreadable and could not be quarantined.

    Ordinary corruption is *contained*: the cache moves the unreadable file
    into its ``quarantine/`` directory with a warning and continues empty.
    This error is raised only when even that containment fails (e.g. the
    filesystem refuses the move), carrying the offending path.
    """

    def __init__(self, message: str, path: object = None):
        super().__init__(message)
        self.path = path


@dataclass
class FailedCell:
    """Structured record of one sweep cell that could not be completed.

    ``error`` is the exception class name (``"WorkerCrashed"``,
    ``"ConfigError"``, ...), ``attempts`` how many executions were tried
    (> 1 after crash retries) and ``context`` any machine-readable detail
    the exception carried.  Runners collect these instead of aborting the
    sweep, and reports serialise them via :meth:`to_dict`.
    """

    key: str
    label: str
    error: str
    message: str
    attempts: int = 1
    context: dict = field(default_factory=dict)

    @classmethod
    def from_exception(cls, key: str, label: str, exc: BaseException,
                       attempts: int = 1) -> "FailedCell":
        context = exc.context() if hasattr(exc, "context") else {}
        return cls(key=key, label=label, error=type(exc).__name__,
                   message=str(exc), attempts=attempts, context=context)

    def to_dict(self) -> dict:
        return {"key": self.key, "label": self.label, "error": self.error,
                "message": self.message, "attempts": self.attempts,
                "context": dict(self.context)}

    def summary(self) -> str:
        retries = f" after {self.attempts} attempts" if self.attempts > 1 \
            else ""
        return f"{self.label}: {self.error}{retries} — {self.message}"


class RtosError(ReproError):
    """A task set, task scheduler or response-time analysis was invalid.

    Raised for malformed task parameters (non-positive periods, deadlines
    longer than the analysis can honour), scheduling-policy misuse, and
    functional mismatches discovered while running a task set (a job whose
    output differs from its task's reference output).
    """


class VerificationError(ReproError):
    """The conformance harness could not trust a scenario's execution.

    Raised when a scenario's simulation produces output that differs from
    the kernel's pure-Python reference — a broken execution must fail the
    verification run loudly rather than feed meaningless cycle counts into
    the soundness comparison.  (Soundness *violations* themselves are data,
    not exceptions: they are collected in the report.)
    """
