"""Exception hierarchy for the Patmos reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid processor or memory configuration was supplied."""


class IsaError(ReproError):
    """An instruction violates the instruction-set architecture rules."""


class EncodingError(ReproError):
    """An instruction or bundle cannot be encoded or decoded."""


class AssemblerError(ReproError):
    """The textual assembler rejected its input."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class LinkError(ReproError):
    """Symbol resolution or image layout failed."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""


class ScheduleViolation(SimulationError):
    """Code read a result before its exposed delay had elapsed.

    Patmos never stalls to hide latencies; instead all delays are visible at
    the ISA level.  Reading a register before the producing instruction's
    delay has elapsed returns the *old* value in hardware.  The cycle-accurate
    simulator reproduces that behaviour by default and raises this error when
    run in ``strict`` mode, which is useful for validating compiler output.
    """


class MemoryAccessError(SimulationError):
    """An access touched an unmapped or misaligned memory location."""


class CacheError(ReproError):
    """A cache was configured or used inconsistently."""


class StackCacheError(CacheError):
    """The stack-cache control instructions were used inconsistently."""


class CompilerError(ReproError):
    """A compilation pass could not be applied."""


class WcetError(ReproError):
    """WCET analysis failed (e.g. missing loop bounds or unbounded flow)."""


class ExplorationError(ReproError):
    """A design-space exploration sweep was invalid or produced bad results.

    Raised for malformed parameter axes, corrupt result-cache files and
    functional mismatches discovered while sweeping (a configuration whose
    simulated output differs from the kernel's reference output).
    """


class RtosError(ReproError):
    """A task set, task scheduler or response-time analysis was invalid.

    Raised for malformed task parameters (non-positive periods, deadlines
    longer than the analysis can honour), scheduling-policy misuse, and
    functional mismatches discovered while running a task set (a job whose
    output differs from its task's reference output).
    """


class VerificationError(ReproError):
    """The conformance harness could not trust a scenario's execution.

    Raised when a scenario's simulation produces output that differs from
    the kernel's pure-Python reference — a broken execution must fail the
    verification run loudly rather than feed meaningless cycle counts into
    the soundness comparison.  (Soundness *violations* themselves are data,
    not exceptions: they are collected in the report.)
    """
