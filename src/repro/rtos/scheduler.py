"""Per-core preemptive task schedulers driving resumable engine contexts.

:class:`CoreTaskRuntime` multiplexes the jobs of one core's
:class:`~repro.rtos.task.TaskSet` onto the cycle-accurate simulator.  Each
job runs on its own :class:`~repro.sim.cycle.CycleSimulator` over a private
memory bank (tasks have overlapping address layouts, so they cannot share a
bank), resumed across preemptions through a persistent
:class:`~repro.sim.engine.EngineContext` whose clock is *warped* forward
over the cycles the job was switched out.  All cores still share one bus
and arbiter — which is exactly the interference the paper's TDMA story is
about.

Two scheduling policies:

* ``"fixed_priority"`` — preemptive fixed-priority: the highest-priority
  released job runs; a release preempts at the next bundle boundary (the
  engine's ``until_cycle`` stepping checks the clock *before* every issue,
  so a bundle already issued runs to completion — the blocking term of the
  response-time analysis).
* ``"tdma_slot"`` — a non-work-conserving cyclic executive mirroring the
  paper's TDMA idea at the task level: task ``i`` owns every ``i``-th slot
  of ``task_slot_cycles`` cycles; outside its slot the core idles even if
  work is pending, which keeps each task's timing independent of the
  others' demand.

The runtime speaks *both* co-simulation scheduler protocols of
:class:`~repro.cmp.system.MulticoreSystem` and is driven by them unchanged:
``run_step``/``cycles`` for the quantum-polling reference scheduler and the
``advance``/``export`` event protocol (``event_capable = True``) for the
event-driven one.  The invariant that makes the two bit-identical is that
every scheduling overhead (interrupt entry/exit, context switch, CRPD) is
charged *eagerly* at its decision point and touches no shared state, so
whenever the runtime pauses before an arbitrated request ("sync", or the
pre-start pause before a job's entry method-cache fill), its clock already
equals the exact global cycle the request will carry.
"""

from __future__ import annotations

from typing import Optional

from ..caches.hierarchy import HierarchyOptions
from ..config import PatmosConfig
from ..errors import RtosError
from ..faults.injector import FaultInjector
from ..sim.cycle import CycleSimulator
from ..sim.engine import EngineContext
from ..sim.results import SimResult, StallBreakdown
from .interrupt import ReleaseEvent, build_timeline
from .task import RtosOptions, TaskSet

#: Task scheduling policies understood by :class:`CoreTaskRuntime`.
POLICIES = ("fixed_priority", "tdma_slot")

#: Runtime priority of a task degraded by the "degrade" overrun policy:
#: below every configurable priority, so the task only runs when nothing
#: else is ready (ties among degraded tasks break by task index as usual).
BACKGROUND_PRIORITY = 1 << 30


class _Job:
    """One task activation: release bookkeeping plus its private simulator."""

    __slots__ = ("task", "task_index", "job_index", "release", "start",
                 "finish", "sim", "context", "started", "result", "killed")

    def __init__(self, task, task_index: int, job_index: int, release: int):
        self.task = task
        self.task_index = task_index
        self.job_index = job_index
        self.release = release
        self.start: Optional[int] = None
        self.finish: Optional[int] = None
        self.sim = None
        self.context: Optional[EngineContext] = None
        self.started = False
        self.result: Optional[SimResult] = None
        self.killed = False


def _merge_storm_releases(timeline: list[ReleaseEvent], storms
                          ) -> tuple[list[ReleaseEvent], frozenset]:
    """Merge injected storm releases into a pre-built release timeline.

    Job indices are reassigned per task in time order, so an overrun fault
    keyed on ``(task_index, job_index)`` addresses the merged timeline.
    Returns the merged timeline and the set of injected events (logged as
    ``"released"`` when delivered).  Natural releases sort before injected
    ones at the same instant, keeping delivery order deterministic.
    """
    entries = [(event.time, event.task_index, False) for event in timeline]
    for storm in storms:
        for k in range(storm.count):
            entries.append((storm.time + k * storm.spacing,
                            storm.task_index, True))
    entries.sort()
    counters: dict[int, int] = {}
    merged: list[ReleaseEvent] = []
    injected = set()
    for time, task_index, is_storm in entries:
        job_index = counters.get(task_index, 0)
        counters[task_index] = job_index + 1
        event = ReleaseEvent(time, task_index, job_index)
        merged.append(event)
        if is_storm:
            injected.add(event)
    return merged, frozenset(injected)


def _merge_stats(into: dict, extra: dict) -> None:
    """Key-wise numeric sum of nested statistics dicts."""
    for key, value in extra.items():
        if isinstance(value, dict):
            _merge_stats(into.setdefault(key, {}), value)
        elif isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value
        else:
            into.setdefault(key, value)


class CoreTaskRuntime:
    """Preemptive multi-task execution agent of one core.

    Drop-in replacement for a per-core :class:`CycleSimulator` in the
    multicore co-simulation schedulers (see the module docstring for the
    protocol contract).  ``banks`` must hold one full-size memory view per
    task of the set; ``horizon`` bounds the release timeline (every
    released job still runs to completion).
    """

    def __init__(self, core_id: int, taskset: TaskSet, config: PatmosConfig,
                 banks: list, arbiter_port, options: RtosOptions,
                 policy: str = "fixed_priority", horizon: int = 10_000,
                 seed: int = 0, engine: str = "fast", strict: bool = False,
                 hierarchy_options: Optional[HierarchyOptions] = None,
                 injector: Optional[FaultInjector] = None):
        if policy not in POLICIES:
            raise RtosError(f"unknown task scheduling policy {policy!r}; "
                            f"use one of {POLICIES}")
        if len(banks) != len(taskset.tasks):
            raise RtosError(f"{len(banks)} memory banks for "
                            f"{len(taskset.tasks)} tasks")
        self.core_id = core_id
        self.taskset = taskset
        self.config = config
        self.banks = banks
        self.arbiter_port = arbiter_port
        self.options = options
        self.policy = policy
        self.horizon = horizon
        self.engine = engine
        self.strict = strict
        self.hierarchy_options = hierarchy_options

        #: The pre-computed release timeline (interrupt model).
        self.timeline = build_timeline(taskset, horizon, core_id, seed)
        #: Fault-injection state (all inert without an injector): injected
        #: overruns by (task, job), storm-injected timeline events, tasks
        #: whose next release is shed, tasks demoted to background priority.
        self.injector = injector
        self._overruns = (injector.plan.overruns_for_core(core_id)
                          if injector is not None else {})
        self._storm_events: frozenset = frozenset()
        self._skip_next: set[int] = set()
        self._degraded: set[int] = set()
        self._killed: list[_Job] = []
        self._shed: dict[int, int] = {}
        if injector is not None:
            storms = injector.plan.storms_for_core(core_id)
            if storms:
                self.timeline, self._storm_events = \
                    _merge_storm_releases(self.timeline, storms)
        self._pos = 0
        self.ready: list[_Job] = []
        self.running: Optional[_Job] = None
        self.completed: list[_Job] = []

        #: The core's clock — the one global-time notion the co-simulation
        #: schedulers coordinate on.
        self.cycles = 0
        self.idle_cycles = 0
        self.overhead_cycles = 0
        self.context_switches = 0
        self.preemptions = 0
        self.interrupts = 0
        self._outputs: list[int] = []
        self._halted = False

        #: Event-scheduler capability flag consumed by
        #: :meth:`MulticoreSystem._core_event_capable`: the event protocol
        #: needs the pre-decoded engine contexts (micro-op or generated).
        self.event_capable = engine in ("fast", "jit")

    # ------------------------------------------------------------------
    # Co-simulation scheduler protocols
    # ------------------------------------------------------------------

    def run_step(self, until_cycle: Optional[int] = None,
                 stop_on_memory_event: bool = False,
                 max_bundles: int = 2_000_000) -> str:
        """Reference-protocol stepping (quantum scheduler / TDMA fast path)."""
        return self._drive(until_cycle, stop_on_memory_event, max_bundles,
                           event_mode=False, grant=False, sync_enabled=False)

    def advance(self, max_bundles: int, release: bool = False,
                sync: bool = True, until_cycle: Optional[int] = None,
                event_source=None) -> str:
        """Event-protocol stepping (heap scheduler).

        Pauses with ``"sync"`` *before* any action that would register an
        arbitrated transfer — a job's entry method-cache fill, or a flagged
        bundle inside the running job's engine context — with ``cycles``
        equal to the global cycle the request would carry.  ``release=True``
        grants exactly that pending action.
        """
        watch = event_source is not None
        return self._drive(until_cycle, watch, max_bundles,
                           event_mode=True, grant=release, sync_enabled=sync)

    def export(self) -> None:
        """Write every live engine context back to its simulator."""
        for job in ([self.running] if self.running is not None else []):
            if job.context is not None:
                job.context.export()
        for job in self.ready:
            if job.context is not None:
                job.context.export()

    # ------------------------------------------------------------------
    # The unified scheduling loop
    # ------------------------------------------------------------------

    def _drive(self, until_cycle: Optional[int], stop_on_events: bool,
               max_bundles: int, event_mode: bool, grant: bool,
               sync_enabled: bool) -> str:
        port = self.arbiter_port
        watch = stop_on_events and port is not None and not event_mode
        events_before = port.events if watch else 0
        while True:
            if self._pos >= len(self.timeline) and not self.ready \
                    and self.running is None:
                self._halted = True
                return "halted"
            if until_cycle is not None and self.cycles >= until_cycle:
                return "cycle_limit"
            if self._deliver_due():
                continue
            job = self._pick()
            if job is None:
                # Nothing eligible: idle until the next release (or, under
                # the slot policy, the next slot boundary — whichever is
                # first), clipped to the caller's horizon.
                wake = self._next_wake()
                target = wake if until_cycle is None \
                    else min(wake, until_cycle)
                if target > self.cycles:
                    self.idle_cycles += target - self.cycles
                    self.cycles = target
                continue
            if job is not self.running:
                self._dispatch(job)
                continue
            if not job.started:
                # The first bundle triggers the entry method-cache fill —
                # an arbitrated transfer at the current clock, so the event
                # protocol must pause for permission first.
                if event_mode and sync_enabled and not grant:
                    return "sync"
                grant = False
                self._start_job(job)
                if watch and port.events != events_before:
                    return "memory_event"
                continue
            self._sync_job_clock(job)
            bound = self._next_decision()
            horizon = bound
            if until_cycle is not None:
                horizon = until_cycle if horizon is None \
                    else min(horizon, until_cycle)
            if job.context is not None:
                status = job.context.advance(
                    max_bundles, release=grant,
                    sync=event_mode and sync_enabled,
                    until_cycle=horizon,
                    event_source=port if watch else None)
                grant = False
                self.cycles = job.context.cycles
            else:
                status = job.sim.run_step(
                    until_cycle=horizon, stop_on_memory_event=watch,
                    max_bundles=max_bundles)
                self.cycles = job.sim.cycles
            if status == "halted":
                self._finish(job)
                if watch and port.events != events_before:
                    return "memory_event"
                continue
            if status == "memory_event":
                return "memory_event"
            if status == "sync":
                return "sync"
            # "cycle_limit": the job reached a decision point (release due,
            # slot boundary, or the caller's horizon) — loop and re-decide.

    # ------------------------------------------------------------------
    # Scheduling decisions
    # ------------------------------------------------------------------

    def _deliver_due(self) -> bool:
        """Deliver every release with time <= now; returns True if any.

        Each delivery is an interrupt: the entry + exit cost is charged on
        the core's clock immediately (which may make further releases due —
        hence the loop), and the new job joins the ready queue.
        """
        delivered = False
        timeline = self.timeline
        cost = (self.options.interrupt_entry_cycles
                + self.options.interrupt_exit_cycles)
        while self._pos < len(timeline) \
                and timeline[self._pos].time <= self.cycles:
            event = timeline[self._pos]
            self._pos += 1
            task = self.taskset.tasks[event.task_index]
            self.interrupts += 1
            if cost:
                # The interrupt fires (and costs) even for a release the
                # overrun policy sheds — the handler runs to decide.
                self.cycles += cost
                self.overhead_cycles += cost
            delivered = True
            if self._skip_next and event.task_index in self._skip_next:
                self._skip_next.discard(event.task_index)
                self._shed[event.task_index] = \
                    self._shed.get(event.task_index, 0) + 1
                self.injector.log.append(
                    "overrun", "shed", event.time, self.core_id,
                    task=task.name, job=event.job_index)
                continue
            if self._storm_events and event in self._storm_events:
                self.injector.log.append(
                    "storm", "released", event.time, self.core_id,
                    task=task.name, job=event.job_index)
            self.ready.append(_Job(task, event.task_index, event.job_index,
                                   event.time))
        return delivered

    def _job_priority(self, job: _Job) -> int:
        """Runtime priority: the task's own, unless degraded to background."""
        if self._degraded and job.task_index in self._degraded:
            return BACKGROUND_PRIORITY
        return job.task.priority

    def _pick(self) -> Optional[_Job]:
        """The job that should own the core right now (None = idle)."""
        if self.policy == "fixed_priority":
            best = self.running
            best_key = None if best is None else \
                (self._job_priority(best), best.task_index, best.job_index)
            for job in self.ready:
                key = (self._job_priority(job), job.task_index,
                       job.job_index)
                if best_key is None or key < best_key:
                    best, best_key = job, key
            return best
        # tdma_slot: only the slot owner's earliest job may run.
        slot = self.options.task_slot_cycles
        owner = (self.cycles // slot) % len(self.taskset.tasks)
        best = None
        if self.running is not None and self.running.task_index == owner:
            best = self.running
        for job in self.ready:
            if job.task_index == owner and \
                    (best is None or job.job_index < best.job_index):
                best = job
        return best

    def _next_slot_boundary(self) -> int:
        slot = self.options.task_slot_cycles
        return (self.cycles // slot + 1) * slot

    def _next_wake(self) -> int:
        next_release = self.timeline[self._pos].time \
            if self._pos < len(self.timeline) else None
        if self.policy == "tdma_slot" and (self.ready or self.running):
            boundary = self._next_slot_boundary()
            return boundary if next_release is None \
                else min(boundary, next_release)
        # Fixed priority is work-conserving: idle implies nothing released,
        # so a release must be pending (the done-check ran first).
        return next_release

    def _next_decision(self) -> Optional[int]:
        """Clock bound of the running job: the next preemption check.

        ``None`` means the job can run to completion undisturbed (fixed
        priority with an exhausted release timeline).
        """
        nxt = self.timeline[self._pos].time \
            if self._pos < len(self.timeline) else None
        if self.policy == "tdma_slot":
            boundary = self._next_slot_boundary()
            nxt = boundary if nxt is None else min(nxt, boundary)
        return nxt

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def _dispatch(self, job: _Job) -> None:
        """Make ``job`` the running job, charging the switch cost."""
        self.ready.remove(job)
        if self.running is not None:
            self.ready.append(self.running)
            self.preemptions += 1
        self.running = job
        self.context_switches += 1
        cost = self.options.context_switch_cycles
        if job.started:
            # Resuming a previously started job: charge the configured
            # cache-related preemption delay on top of the switch.
            cost += self.options.preemption_reload_cycles
        if cost:
            self.cycles += cost
            self.overhead_cycles += cost

    def _start_job(self, job: _Job) -> None:
        """First execution: build the job's simulator at the current clock."""
        sim = CycleSimulator(
            job.task.image, config=self.config, strict=self.strict,
            arbiter=self.arbiter_port, core_id=self.core_id,
            memory=self.banks[job.task_index], engine=self.engine,
            hierarchy_options=self.hierarchy_options)
        sim.cycles = self.cycles
        job.sim = sim
        job.start = self.cycles
        job.started = True
        sim._ensure_started()  # entry method-cache fill at the current clock
        self.cycles = sim.cycles
        if self.engine == "fast":
            job.context = EngineContext(sim)
            job.context.enable_sync()
        elif self.engine == "jit":
            from ..sim.codegen import JitContext
            job.context = JitContext(sim)
            job.context.enable_sync()

    def _sync_job_clock(self, job: _Job) -> None:
        """Warp a resumed job's clock forward over its switched-out gap."""
        if job.context is not None:
            if job.context.cycles < self.cycles:
                job.context.warp_to(self.cycles)
        elif job.sim.cycles < self.cycles:
            job.sim.cycles = self.cycles

    def _finish(self, job: _Job) -> None:
        if job.context is not None:
            job.context.export()
            job.context = None
        result = job.sim.result()
        job.result = result
        job.sim = None
        if self._overruns:
            extra = self._overruns.pop((job.task_index, job.job_index), None)
            if extra is not None and self._apply_overrun(job, extra):
                # Watchdog killed the job: its output is discarded and it
                # is accounted separately from completed jobs.
                job.finish = self.cycles
                job.killed = True
                self._killed.append(job)
                self.running = None
                return
        job.finish = self.cycles
        expected = job.task.expected_output
        if expected and tuple(result.output) != expected:
            raise RtosError(
                f"core {self.core_id} task {job.task.name!r} job "
                f"{job.job_index}: output {result.output} != expected "
                f"{list(expected)}")
        self._outputs.extend(result.output)
        self.completed.append(job)
        self.running = None

    def _apply_overrun(self, job: _Job, extra: int) -> bool:
        """Charge an injected WCET overrun; True = the watchdog killed it.

        The job's real work is done (its simulator halted) — the overrun
        models ``extra`` further cycles of runaway execution.  The per-core
        watchdog budget is ``watchdog_factor * deadline`` from release; an
        overrun staying inside it is absorbed (outcome ``"overrun"``), one
        exceeding it trips the watchdog, which applies ``overrun_policy``.
        All charges are eager and local to this core's clock, preserving
        the bit-identity of the two co-simulation schedulers.
        """
        options = self.options
        log = self.injector.log
        budget = int(options.watchdog_factor * job.task.deadline)
        natural = self.cycles - job.release
        tripped = natural + extra > budget
        if tripped and options.overrun_policy == "kill_and_log":
            executed = max(0, budget - natural)
            self.cycles += executed
            log.append("overrun", "killed", self.cycles, self.core_id,
                       task=job.task.name, job=job.job_index, extra=extra,
                       executed=executed, budget=budget)
            return True
        self.cycles += extra
        if not tripped:
            log.append("overrun", "overrun", self.cycles, self.core_id,
                       task=job.task.name, job=job.job_index, extra=extra)
            return False
        if options.overrun_policy == "skip_next_release":
            self._skip_next.add(job.task_index)
            log.append("overrun", "overrun", self.cycles, self.core_id,
                       task=job.task.name, job=job.job_index, extra=extra,
                       policy="skip_next_release", budget=budget)
        else:  # degrade
            self._degraded.add(job.task_index)
            log.append("overrun", "degraded", self.cycles, self.core_id,
                       task=job.task.name, job=job.job_index, extra=extra,
                       budget=budget)
        return False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self) -> SimResult:
        """Aggregate :class:`SimResult` of everything the core executed."""
        stalls = StallBreakdown()
        bundles = instructions = nops = 0
        cache_stats: dict = {}
        block_counts: dict = {}
        call_counts: dict = {}
        for job in self.completed:
            res = job.result
            bundles += res.bundles
            instructions += res.instructions
            nops += res.nops
            for name in ("method_cache", "icache", "data_cache",
                         "stack_cache", "split_load_wait", "store_buffer",
                         "arbitration"):
                setattr(stalls, name,
                        getattr(stalls, name) + getattr(res.stalls, name))
            _merge_stats(cache_stats, res.cache_stats)
            for key, count in res.block_counts.items():
                block_counts[key] = block_counts.get(key, 0) + count
            for key, count in res.call_counts.items():
                call_counts[key] = call_counts.get(key, 0) + count
        return SimResult(
            cycles=self.cycles, bundles=bundles, instructions=instructions,
            nops=nops, output=list(self._outputs), stalls=stalls,
            block_counts=block_counts, call_counts=call_counts,
            cache_stats=cache_stats, halted=self._halted,
            issue_width=2 if self.config.pipeline.dual_issue else 1,
            idle_cycles=self.idle_cycles)

    def stats(self) -> dict:
        """Scheduler activity counters of this core."""
        return {
            "policy": self.policy,
            "jobs_released": self._pos,
            "jobs_completed": len(self.completed),
            "jobs_killed": len(self._killed),
            "jobs_shed": sum(self._shed.values()),
            "interrupts": self.interrupts,
            "context_switches": self.context_switches,
            "preemptions": self.preemptions,
            "overhead_cycles": self.overhead_cycles,
            "idle_cycles": self.idle_cycles,
        }

    def task_outcomes(self) -> list[dict]:
        """Per-task observed response-time statistics."""
        outcomes = []
        for index, task in enumerate(self.taskset.tasks):
            jobs = [job for job in self.completed if job.task_index == index]
            responses = [job.finish - job.release for job in jobs]
            released = sum(1 for event in self.timeline
                           if event.task_index == index)
            outcomes.append({
                "task": task.name,
                "kind": task.kind,
                "period": task.period,
                "deadline": task.deadline,
                "priority": task.priority,
                "jobs": released,
                "completed": len(jobs),
                "killed": sum(1 for job in self._killed
                              if job.task_index == index),
                "shed": self._shed.get(index, 0),
                "max_response": max(responses) if responses else None,
                "avg_response": (round(sum(responses) / len(responses), 1)
                                 if responses else None),
                "deadline_misses": sum(1 for r in responses
                                       if r > task.deadline),
            })
        return outcomes
