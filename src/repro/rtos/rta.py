"""End-to-end response-time analysis on top of the per-task WCET bounds.

This is where the repo's WCET story finally *composes*: the per-task
``C_i`` comes from the existing IPET analyzer with the arbiter-aware
:class:`~repro.wcet.analyzer.WcetOptions` (so cross-core memory
interference is already inside ``C_i`` — the paper's TDMA compositionality
argument), and this module adds the intra-core part: preemptions by
higher-priority tasks, interrupt entry/exit, context switches, the
configured cache-related preemption delay, and the non-preemptive blocking
of at most one in-flight bundle.

Fixed priority uses the classical recurrence iterated to a fixpoint::

    R = C_i + CS + B + sum_{j in hp(i)} ceil((R + J_j)/T_j) (C_j + 2 CS + CRPD)
                     + sum_{all j}      ceil((R + J_j)/T_j) IE

where ``hp(i)`` is ordered by the scheduler's own dispatch key
``(priority, task index)``, ``IE`` is the interrupt entry+exit cost charged
at *every* delivery on the core (lower-priority releases still interrupt),
and ``B`` bounds the single bundle a lower-priority job may complete after
a release (:func:`blocking_bound`).  A converged ``R`` is only trusted up
to one period (single outstanding job — the classical validity condition);
beyond that the analysis returns ``None`` (no bound), never a guess.

The TDMA-slot policy is non-work-conserving, so its bound is the cyclic
analogue: with ``M`` tasks of slot ``S`` (table period ``P = M*S``), each
of the task's slots serves at least ``S - B - CS - CRPD`` cycles of demand,
and a job released at the worst instant finishes by ``k * P`` after release
once ``k`` slots cover ``C_i`` plus every delivery charge in the window.

Every returned bound is checkable the same way ``repro.verify`` checks
``cycles <= wcet``: observed response time <= bound, across the whole
scenario matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import PatmosConfig
from ..isa.opcodes import Opcode
from ..program.linker import Image
from .task import RtosOptions

#: Give up on a fixpoint once the candidate response exceeds this many
#: periods — the bound would be invalid (multiple outstanding jobs) anyway.
_VALIDITY_PERIODS = 1


@dataclass(frozen=True)
class TaskTiming:
    """Analysis-facing view of one task (index order = task-set order)."""

    name: str
    period: int
    deadline: int
    priority: int
    #: Per-job WCET under the core's arbiter-aware options; ``None`` when
    #: the arbiter admits no bound (e.g. a non-top priority-arbiter core).
    wcet_cycles: Optional[int]
    #: Release jitter fed into the interference terms.  Periodic tasks
    #: release exactly on time and sporadic ones never release *early*,
    #: so the generator always yields 0 — the term exists for completeness.
    jitter: int = 0


def blocking_bound(images: Sequence[Image], config: PatmosConfig,
                   wait_cycles: Optional[int]) -> Optional[int]:
    """Worst single-bundle overrun: the non-preemptive blocking term.

    Preemption happens at bundle boundaries, so a lower-priority job (or,
    at a slot boundary, the previous slot's owner) finishes at most one
    bundle after the decision point — but that bundle can be expensive.
    The bound *sums* the worst case of every memory-traffic source a single
    bundle can trigger (a real bundle hits at most one, but the sum is
    simple and sound): a method-cache fill of the largest function anywhere
    on the core, the largest stack-cache spill and refill any ``sres`` /
    ``sens`` in the images can demand, one data access (memory ops are
    slot-0-only — one per bundle) and a full store-buffer drain, each
    request first waiting ``wait_cycles`` for the shared bus.
    ``wait_cycles=None`` (un-analysable arbiter) yields ``None``.
    """
    if wait_cycles is None:
        return None
    mem = config.memory
    burst = mem.burst_cycles()
    fill_words = mem.burst_words
    stack_words = 0
    for image in images:
        for record in image.functions:
            fill_words = max(fill_words, -(-record.size_bytes // 4))
        for bundle in image.bundles.values():
            for instr in bundle.slots:
                if instr.opcode in (Opcode.SRES, Opcode.SENS):
                    stack_words = max(stack_words, instr.imm)
    store_entries = config.pipeline.store_buffer_entries
    transfers = mem.transfer_cycles(fill_words) + burst \
        + store_entries * burst
    requests = 2 + store_entries
    if stack_words:
        transfers += 2 * mem.transfer_cycles(stack_words)
        requests += 2
    return 1 + transfers + requests * wait_cycles


def _interference(timings: Sequence[TaskTiming], response: int,
                  index: int, cs: int, crpd: int, ie: int) -> Optional[int]:
    """Preemption + delivery charges within a response window."""
    own_key = (timings[index].priority, index)
    total = 0
    for j, other in enumerate(timings):
        releases = -(-(response + other.jitter) // other.period)
        total += releases * ie
        if j != index and (other.priority, j) < own_key:
            if other.wcet_cycles is None:
                return None
            total += releases * (other.wcet_cycles + 2 * cs + crpd)
    return total


def fp_response_times(timings: Sequence[TaskTiming], options: RtosOptions,
                      blocking: Optional[int]) -> list[Optional[int]]:
    """Fixed-priority response-time bounds, one per task (None = no bound)."""
    cs = options.context_switch_cycles
    crpd = options.preemption_reload_cycles
    ie = options.interrupt_entry_cycles + options.interrupt_exit_cycles
    bounds: list[Optional[int]] = []
    for index, task in enumerate(timings):
        if task.wcet_cycles is None or blocking is None:
            bounds.append(None)
            continue
        base = task.wcet_cycles + cs + blocking
        limit = _VALIDITY_PERIODS * task.period
        response = base
        bound: Optional[int] = None
        while response <= limit:
            interference = _interference(timings, response, index,
                                         cs, crpd, ie)
            if interference is None:
                break
            candidate = base + interference
            if candidate == response:
                bound = response
                break
            response = candidate
        bounds.append(bound)
    return bounds


def tdma_slot_response_times(timings: Sequence[TaskTiming],
                             options: RtosOptions,
                             blocking: Optional[int]) -> list[Optional[int]]:
    """Cyclic-executive response-time bounds for the TDMA-slot policy."""
    cs = options.context_switch_cycles
    crpd = options.preemption_reload_cycles
    ie = options.interrupt_entry_cycles + options.interrupt_exit_cycles
    slot = options.task_slot_cycles
    table_period = slot * len(timings)
    bounds: list[Optional[int]] = []
    if blocking is None:
        return [None] * len(timings)
    effective = slot - blocking - cs - crpd
    if effective <= 0:
        # The slot cannot even absorb the per-slot overheads: no bound.
        return [None] * len(timings)
    for index, task in enumerate(timings):
        if task.wcet_cycles is None:
            bounds.append(None)
            continue
        limit = _VALIDITY_PERIODS * task.period
        response = table_period
        bound: Optional[int] = None
        while response <= limit:
            deliveries = sum(
                -(-(response + other.jitter) // other.period) * ie
                for other in timings)
            demand = task.wcet_cycles + deliveries
            candidate = -(-demand // effective) * table_period
            if candidate <= response:
                # demand() is monotone and the start value is the minimum
                # possible bound, so the first non-increasing candidate is
                # the fixpoint.
                bound = response
                break
            response = candidate
        bounds.append(bound)
    return bounds


def response_time_bounds(timings: Sequence[TaskTiming], options: RtosOptions,
                         blocking: Optional[int],
                         policy: str) -> list[Optional[int]]:
    """Dispatch on the task scheduling policy."""
    if policy == "fixed_priority":
        return fp_response_times(timings, options, blocking)
    if policy == "tdma_slot":
        return tdma_slot_response_times(timings, options, blocking)
    raise ValueError(f"unknown policy {policy!r}")
