"""Interrupt sources: when does each task release a job?

The event-driven co-simulation already schedules cores on a heap of future
events; interrupts slot straight into that world view as *pre-computable
release timelines*.  A timer interrupt fires strictly periodically; a
sporadic IO interrupt fires at least one period apart with a seeded random
extra spacing (never denser — which is exactly the assumption that lets the
response-time analysis treat the period as the minimal inter-arrival time).

Because both sources are deterministic functions of ``(seed, core, task)``,
the whole release timeline of a core can be materialised up front
(:func:`build_timeline`) and merged in time order; the task scheduler then
*delivers* each release at the first bundle boundary at or after its time,
charging the architectural entry/exit cost on the core's clock.  Delivery
is therefore identical under the event-driven and the quantum-polling
co-simulation schedulers — the golden determinism tests rely on it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from random import Random
from typing import Iterator

from ..errors import RtosError
from .task import Task, TaskSet


@dataclass(frozen=True, order=True)
class ReleaseEvent:
    """One job release: task ``task_index`` releases job ``job_index``.

    Ordered by ``(time, task_index, job_index)``, which is the delivery
    order of simultaneous releases (delivery order only affects the order
    of the entry/exit charges, not which jobs exist).
    """

    time: int
    task_index: int
    job_index: int


class TimerInterrupt:
    """Strictly periodic releases: ``offset + k * period``."""

    def __init__(self, task_index: int, task: Task):
        self.task_index = task_index
        self.period = task.period
        self.offset = task.offset

    def releases(self, horizon: int) -> Iterator[ReleaseEvent]:
        time = self.offset
        job_index = 0
        while time < horizon:
            yield ReleaseEvent(time, self.task_index, job_index)
            time += self.period
            job_index += 1


class SporadicInterrupt:
    """Sporadic releases at least ``period`` apart.

    Successive releases are ``period + extra`` apart with ``extra`` drawn
    uniformly from ``[0, jitter]`` out of a stream seeded by
    ``(seed, core_id, task_index)`` — reproducible and independent of every
    other task's stream, so adding a task never perturbs the rest of the
    scenario.
    """

    def __init__(self, task_index: int, task: Task, core_id: int, seed: int):
        self.task_index = task_index
        self.period = task.period
        self.offset = task.offset
        self.jitter = task.jitter
        # String seeds hash via sha512 in CPython: stable across processes
        # (unlike tuple hashes of str under PYTHONHASHSEED).
        self._rng = Random(f"sporadic:{seed}:{core_id}:{task_index}")

    def releases(self, horizon: int) -> Iterator[ReleaseEvent]:
        time = self.offset
        job_index = 0
        while time < horizon:
            yield ReleaseEvent(time, self.task_index, job_index)
            time += self.period + self._rng.randint(0, self.jitter)
            job_index += 1


def interrupt_sources(taskset: TaskSet, core_id: int, seed: int) -> list:
    """One interrupt source per task, in task-index order."""
    sources = []
    for task_index, task in enumerate(taskset.tasks):
        if task.kind == "periodic":
            sources.append(TimerInterrupt(task_index, task))
        else:
            sources.append(SporadicInterrupt(task_index, task, core_id, seed))
    return sources


def build_timeline(taskset: TaskSet, horizon: int, core_id: int = 0,
                   seed: int = 0) -> list[ReleaseEvent]:
    """All releases of one core with time < ``horizon``, in delivery order."""
    if horizon <= 0:
        raise RtosError("the release horizon must be positive")
    streams = [source.releases(horizon)
               for source in interrupt_sources(taskset, core_id, seed)]
    return list(heapq.merge(*streams))
