"""RTOS layer: interrupts, preemptive multi-task cores, response-time bounds.

Everything below the line the repo could already do for *one program per
core*; this package lifts the same discipline one level up, to *task sets*::

    python -m repro.rtos                      # synthesize, run, analyse
    python -m repro.rtos --cores 2 --tasks 3 --policy tdma_slot --table

A :class:`~repro.rtos.task.Task` is a linked program image plus real-time
parameters; interrupt sources (:mod:`repro.rtos.interrupt`) turn periods
into deterministic release timelines; :class:`CoreTaskRuntime`
(:mod:`repro.rtos.scheduler`) preempts and resumes jobs on the
cycle-accurate simulator through persistent engine contexts, charging the
architectural interrupt/context-switch costs eagerly; and
:class:`RtosSystem` (:mod:`repro.rtos.system`) co-simulates N such cores
against the shared-memory arbiter and pairs every task's *observed*
response times with the *analytical* bound of :mod:`repro.rtos.rta` — the
end-to-end claim ``observed response <= bound``, checkable exactly like the
``cycles <= wcet`` cells of ``repro.verify``.

Module map
----------

:mod:`repro.rtos.task`
    Tasks, per-core task sets, the RTOS cost model
    (:class:`~repro.rtos.task.RtosOptions`) and the seeded task-set
    generator behind the exploration axes.
:mod:`repro.rtos.interrupt`
    Timer and sporadic-IO interrupt sources; pre-computed release
    timelines merged in delivery order.
:mod:`repro.rtos.scheduler`
    The per-core preemptive task schedulers (fixed priority and
    TDMA-slot cyclic executive) driving resumable engine contexts; speaks
    both co-simulation scheduler protocols.
:mod:`repro.rtos.rta`
    Classical fixed-priority response-time analysis plus the cyclic
    TDMA-slot analogue, on top of arbiter-aware per-task WCETs.
:mod:`repro.rtos.system`
    :class:`RtosSystem` (the multicore plumbing) and
    :class:`RtosResult` (observed vs bound, per task).
:mod:`repro.rtos.cli`
    ``python -m repro.rtos`` — synthesize or describe, run, report,
    exit non-zero on any ``observed > bound`` violation.
"""

from .interrupt import (
    ReleaseEvent,
    SporadicInterrupt,
    TimerInterrupt,
    build_timeline,
    interrupt_sources,
)
from .rta import (
    TaskTiming,
    blocking_bound,
    fp_response_times,
    response_time_bounds,
    tdma_slot_response_times,
)
from .scheduler import POLICIES, CoreTaskRuntime
from .system import RtosResult, RtosSystem, TaskReport, default_horizon
from .task import (
    PRIORITY_ASSIGNMENTS,
    TASK_KINDS,
    RtosOptions,
    Task,
    TaskSet,
    synthesize_tasksets,
    task_from_kernel,
)

__all__ = [
    "CoreTaskRuntime",
    "POLICIES",
    "PRIORITY_ASSIGNMENTS",
    "ReleaseEvent",
    "RtosOptions",
    "RtosResult",
    "RtosSystem",
    "SporadicInterrupt",
    "TASK_KINDS",
    "Task",
    "TaskReport",
    "TaskSet",
    "TaskTiming",
    "TimerInterrupt",
    "blocking_bound",
    "build_timeline",
    "default_horizon",
    "fp_response_times",
    "interrupt_sources",
    "response_time_bounds",
    "synthesize_tasksets",
    "task_from_kernel",
    "tdma_slot_response_times",
]
