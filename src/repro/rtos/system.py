"""System-level RTOS co-simulation: multi-core task sets on the shared bus.

:class:`RtosSystem` plugs the per-core task runtimes
(:class:`~repro.rtos.scheduler.CoreTaskRuntime`) into the existing
multicore co-simulation machinery: the same shared physical memory, the
same pluggable arbiters, the same two bit-identical interleaving
schedulers.  What changes is only what each core *is* — a preemptive
multi-task runtime instead of a single bare-metal program — and what the
run returns: an :class:`RtosResult` pairing every task's observed response
times with its end-to-end analytical bound, checkable exactly like the
``cycles <= wcet`` claims of ``repro.verify``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence, Union

from ..caches.hierarchy import HierarchyOptions
from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import RtosError
from ..memory.arbiter import MemoryArbiter, PriorityArbiter
from ..memory.main_memory import MainMemory
from ..memory.tdma import TdmaSchedule
from ..wcet.analyzer import analyze_wcet
from ..cmp.system import MulticoreSystem
from .rta import TaskTiming, blocking_bound, response_time_bounds
from .scheduler import POLICIES, CoreTaskRuntime
from .task import RtosOptions, TaskSet


def default_horizon(tasksets: Sequence[TaskSet]) -> int:
    """Release horizon covering at least two jobs of every task."""
    return max(task.offset + 2 * task.period
               for taskset in tasksets for task in taskset.tasks)


@dataclass
class TaskReport:
    """Observed and analytical timing of one task."""

    core: int
    name: str
    kind: str
    period: int
    deadline: int
    priority: int
    jobs: int
    completed: int
    max_response: Optional[int]
    avg_response: Optional[float]
    deadline_misses: int
    wcet_cycles: Optional[int]
    rta_bound: Optional[int]
    #: Jobs terminated by the overrun watchdog / releases shed by the
    #: "skip_next_release" policy (fault injection; zero without faults).
    killed: int = 0
    shed: int = 0

    @property
    def sound(self) -> Optional[bool]:
        """observed <= bound; ``None`` when either side is unavailable."""
        if self.max_response is None or self.rta_bound is None:
            return None
        return self.max_response <= self.rta_bound

    @property
    def tightness(self) -> Optional[float]:
        """bound / observed (>= 1.0 when sound)."""
        if not self.max_response or self.rta_bound is None:
            return None
        return self.rta_bound / self.max_response


@dataclass
class RtosResult:
    """Results of co-simulating task sets on the chip multiprocessor."""

    num_cores: int
    policy: str
    arbiter: str
    scheduler: Optional[str]
    horizon: int
    options: RtosOptions
    tasks: list[TaskReport] = field(default_factory=list)
    per_core: list[dict] = field(default_factory=list)
    arbiter_stats: Optional[dict] = None
    scheduler_stats: Optional[dict] = None
    #: Per-core non-preemptive blocking bound fed into the analysis.
    blocking: list = field(default_factory=list)
    #: Executed fault events (``None`` when the system had no fault plan).
    fault_log: Optional[object] = None

    @property
    def makespan(self) -> int:
        return max(row["cycles"] for row in self.per_core)

    def violations(self) -> list[TaskReport]:
        """Tasks whose observed response exceeded the analytical bound.

        An unavailable bound (``None`` — un-analysable arbiter or a
        non-converging fixpoint) is *no claim*, hence never a violation;
        a deadline miss is data, not unsoundness.
        """
        return [task for task in self.tasks if task.sound is False]

    def to_dict(self) -> dict:
        return {
            "schema": "repro.rtos/v1",
            "num_cores": self.num_cores,
            "policy": self.policy,
            "arbiter": self.arbiter,
            "scheduler": self.scheduler,
            "horizon": self.horizon,
            "options": asdict(self.options),
            "makespan": self.makespan,
            "tasks": [dict(asdict(task), sound=task.sound)
                      for task in self.tasks],
            "per_core": list(self.per_core),
            "arbiter_stats": self.arbiter_stats,
            "scheduler_stats": self.scheduler_stats,
            "blocking": list(self.blocking),
            "violations": len(self.violations()),
            # Outcome counts only: record *order* may differ between the
            # two co-simulation schedulers (cores interleave differently),
            # the executed events themselves do not.
            "fault_counts": (self.fault_log.counts()
                             if self.fault_log is not None else None),
        }

    def timing_dict(self) -> dict:
        """The scheduler-independent timing view (golden determinism tests:
        event-driven and reference runs must agree on every entry)."""
        data = self.to_dict()
        data.pop("scheduler")
        data.pop("scheduler_stats")
        return data

    def table(self) -> str:
        """Aligned per-task text table (the CLI's main output)."""
        headers = ("core", "task", "kind", "prio", "period", "jobs", "done",
                   "max_resp", "avg_resp", "miss", "wcet", "bound", "sound")
        rows = [headers]
        for task in self.tasks:
            rows.append((
                str(task.core), task.name, task.kind, str(task.priority),
                str(task.period), str(task.jobs), str(task.completed),
                str(task.max_response), str(task.avg_response),
                str(task.deadline_misses), str(task.wcet_cycles),
                str(task.rta_bound),
                {True: "yes", False: "VIOLATION", None: "-"}[task.sound]))
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(headers))]
        lines = ["  ".join(cell.ljust(widths[i])
                           for i, cell in enumerate(row)).rstrip()
                 for row in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def summary(self) -> str:
        violations = self.violations()
        lines = [
            f"policy      : {self.policy} ({self.arbiter} arbiter, "
            f"{self.num_cores} cores)",
            f"makespan    : {self.makespan} cycles",
            f"tasks       : {len(self.tasks)} "
            f"({sum(t.completed for t in self.tasks)} jobs completed)",
            f"violations  : {len(violations)}",
        ]
        for task in violations:
            lines.append(f"  UNSOUND {task.name}: observed "
                         f"{task.max_response} > bound {task.rta_bound}")
        return "\n".join(lines)


class RtosSystem(MulticoreSystem):
    """N preemptive multi-task cores sharing one memory and arbiter.

    ``tasksets`` gives one :class:`TaskSet` per core.  Every task owns a
    private full-size memory bank (task images have overlapping address
    layouts, so a mid-run job construction must not clobber a preempted
    neighbour), while the bus and arbiter stay shared — the inter-core
    interference the WCET options model.  All
    :class:`~repro.cmp.system.MulticoreSystem` arbitration and scheduler
    keywords pass through unchanged; ``policy`` picks the per-core task
    scheduler, ``options`` the RTOS cost model, ``horizon`` the release
    timeline length and ``seed`` the sporadic release streams.

    ``faults`` accepts bus, interrupt-storm and WCET-overrun events (memory
    flips make no sense against the per-task full-size banks and are
    rejected); storms merge into the release timelines and overruns
    exercise the per-core watchdog and the configured ``overrun_policy``.
    """

    _fault_kinds = ("bus", "storm", "overrun")

    def __init__(self, tasksets: Sequence[Union[TaskSet, Sequence]],
                 config: PatmosConfig = DEFAULT_CONFIG,
                 configs: Optional[Sequence[PatmosConfig]] = None,
                 arbiter: Union[str, MemoryArbiter] = "tdma",
                 schedule: Optional[TdmaSchedule] = None,
                 slot_weights: Optional[Sequence[int]] = None,
                 priorities: Optional[Sequence[int]] = None,
                 policy: str = "fixed_priority",
                 options: Optional[RtosOptions] = None,
                 horizon: Optional[int] = None, seed: int = 0,
                 engine: str = "fast", scheduler: str = "event",
                 quantum: int = 1,
                 hierarchy_options: Optional[HierarchyOptions] = None,
                 faults=None):
        if not tasksets:
            raise RtosError("an RTOS system needs at least one core task set")
        coerced = [taskset if isinstance(taskset, TaskSet)
                   else TaskSet(tuple(taskset)) for taskset in tasksets]
        if policy not in POLICIES:
            raise RtosError(f"unknown task scheduling policy {policy!r}; "
                            f"use one of {POLICIES}")
        # The placeholder images satisfy the base validation (core count,
        # shared MemoryConfig, arbiter sizing); execution never uses them.
        super().__init__([ts.tasks[0].image for ts in coerced],
                         config=config, configs=configs, arbiter=arbiter,
                         schedule=schedule, slot_weights=slot_weights,
                         priorities=priorities, mode="cosim", engine=engine,
                         scheduler=scheduler, quantum=quantum,
                         hierarchy_options=hierarchy_options, faults=faults)
        self.tasksets = coerced
        self.policy = policy
        self.options = options if options is not None \
            else RtosOptions.for_config(self.config)
        self.horizon = horizon if horizon is not None \
            else default_horizon(coerced)
        if self.horizon <= 0:
            raise RtosError("the release horizon must be positive")
        self.seed = seed
        self._runtimes: Optional[list[CoreTaskRuntime]] = None

    # ------------------------------------------------------------------
    # Core construction (co-simulation hook)
    # ------------------------------------------------------------------

    def _build_cores(self, arbiter: MemoryArbiter, strict: bool) -> list:
        bank_bytes = self.config.memory.size_bytes
        offsets = []
        total = 0
        for taskset in self.tasksets:
            offsets.append(total)
            total += len(taskset.tasks)
        shared_memory = MainMemory(bank_bytes * total)
        self.shared_memory = shared_memory
        cores = []
        for core_id, taskset in enumerate(self.tasksets):
            banks = [MainMemory.view(shared_memory,
                                     (offsets[core_id] + index) * bank_bytes,
                                     bank_bytes)
                     for index in range(len(taskset.tasks))]
            cores.append(CoreTaskRuntime(
                core_id=core_id, taskset=taskset,
                config=self.configs[core_id], banks=banks,
                arbiter_port=self._core_port(arbiter, core_id),
                options=self.options,
                policy=self.policy, horizon=self.horizon, seed=self.seed,
                engine=self.engine, strict=strict,
                hierarchy_options=self.hierarchy_options,
                injector=self._injector))
        self._runtimes = cores
        return cores

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, analyse: bool = True, strict: bool = False,
            max_bundles: int = 2_000_000, max_cycles: Optional[int] = None,
            max_wall_s: Optional[float] = None) -> RtosResult:
        """Co-simulate the task sets; optionally attach response bounds."""
        cores, arbiter, scheduler_stats = self._run_cosim(
            strict, max_bundles, max_cycles=max_cycles,
            max_wall_s=max_wall_s)
        analysis = self.analyse() if analyse else None
        result = RtosResult(
            num_cores=self.num_cores, policy=self.policy,
            arbiter=self.arbiter_kind,
            scheduler=(scheduler_stats or {}).get("scheduler"),
            horizon=self.horizon, options=self.options,
            arbiter_stats=arbiter.stats_summary(),
            scheduler_stats=scheduler_stats,
            fault_log=self.fault_log,
            blocking=[analysis[core_id]["blocking"] if analysis else None
                      for core_id in range(self.num_cores)])
        for core_id, runtime in enumerate(cores):
            sim = runtime.result()
            stats = runtime.stats()
            metrics = sim.metrics()
            result.per_core.append({
                "core": core_id,
                "cycles": sim.cycles,
                "bundles": sim.bundles,
                "arbitration_cycles": metrics["arbitration_cycles"],
                "words_transferred": metrics["words_transferred"],
                **stats,
            })
            for index, outcome in enumerate(runtime.task_outcomes()):
                core_analysis = analysis[core_id] if analysis else None
                result.tasks.append(TaskReport(
                    core=core_id, name=outcome["task"],
                    kind=outcome["kind"], period=outcome["period"],
                    deadline=outcome["deadline"],
                    priority=outcome["priority"], jobs=outcome["jobs"],
                    completed=outcome["completed"],
                    max_response=outcome["max_response"],
                    avg_response=outcome["avg_response"],
                    deadline_misses=outcome["deadline_misses"],
                    wcet_cycles=(core_analysis["wcets"][index]
                                 if core_analysis else None),
                    rta_bound=(core_analysis["bounds"][index]
                               if core_analysis else None),
                    killed=outcome["killed"], shed=outcome["shed"]))
        return result

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _wait_bound(self, core_id: int) -> Optional[int]:
        """Worst per-transfer bus wait of this core (None = unbounded)."""
        burst = self.config.memory.burst_cycles()
        if self.arbiter_kind == "tdma":
            return self.schedule.worst_case_wait()
        if self.num_cores == 1:
            return 0
        if self.arbiter_kind == "round_robin":
            return (self.num_cores - 1) * burst
        if self.arbiter_kind == "priority":
            template = self._arbiter_template
            top = (template.top_core()
                   if isinstance(template, PriorityArbiter) else 0)
            return burst if core_id == top else None
        return None

    def analyse(self) -> list[dict]:
        """Per-core WCETs, blocking and response-time bounds.

        Each core's ``C_i`` uses the arbiter-aware
        :meth:`wcet_options_for_core` (cross-core memory interference lives
        inside the per-task WCET; the response-time analysis adds only the
        intra-core terms).  An un-analysable arbiter yields ``None``
        everywhere — no claim rather than a wrong one.
        """
        analysis = []
        for core_id, taskset in enumerate(self.tasksets):
            wcet_options = self.wcet_options_for_core(core_id)
            config = self.configs[core_id]
            wcets: list[Optional[int]] = []
            for task in taskset.tasks:
                if wcet_options is None:
                    wcets.append(None)
                else:
                    wcets.append(analyze_wcet(
                        task.image, config=config,
                        options=wcet_options).wcet_cycles)
            blocking = blocking_bound(
                [task.image for task in taskset.tasks], config,
                self._wait_bound(core_id))
            timings = [TaskTiming(name=task.name, period=task.period,
                                  deadline=task.deadline,
                                  priority=task.priority,
                                  wcet_cycles=wcets[index])
                       for index, task in enumerate(taskset.tasks)]
            bounds = response_time_bounds(timings, self.options, blocking,
                                          self.policy)
            analysis.append({"wcets": wcets, "blocking": blocking,
                             "bounds": bounds})
        return analysis
