"""Tasks, per-core task sets and the RTOS cost model.

A :class:`Task` is a linked :class:`~repro.program.linker.Image` plus its
real-time parameters (period or minimal inter-arrival time, deadline,
priority); a :class:`TaskSet` is the group of tasks sharing one core.  The
cost model (:class:`RtosOptions`) makes the kernel overheads — interrupt
entry/exit, context switches and the cache-related preemption delay —
explicit architectural constants, the same way the paper insists every
latency is exposed rather than averaged away.

:func:`synthesize_tasksets` generates seeded random task sets over the
short-running RTOS kernel suite; it is the workload generator behind the
``repro.explore`` task-set axes and the property tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..compiler import compile_and_link
from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import RtosError
from ..program.linker import Image
from ..wcet.analyzer import analyze_wcet
from ..workloads.kernel import Kernel
from ..workloads.suite import SUITES, build_kernel

#: Task activation models: strictly periodic releases (``offset + k*period``)
#: or sporadic releases at least ``period`` cycles apart (up to ``jitter``
#: extra spacing, drawn from a seeded stream).
TASK_KINDS = ("periodic", "sporadic")


@dataclass(frozen=True)
class Task:
    """One real-time task: a program image plus its timing parameters.

    ``priority`` follows the usual convention: *smaller number = higher
    priority*.  ``period`` is the exact release period of a periodic task
    and the minimal inter-arrival time of a sporadic one — which is why the
    response-time analysis may treat both identically.  ``expected_output``
    is the reference ``out`` trace of one job (empty = unchecked); every
    completed job is verified against it, mirroring how the conformance
    harness refuses to trust broken executions.
    """

    name: str
    image: Image
    period: int
    priority: int
    deadline: int = 0            # 0 = implicit deadline (== period)
    kind: str = "periodic"
    offset: int = 0              # release of the first job
    jitter: int = 0              # sporadic: max extra spacing beyond period
    expected_output: tuple[int, ...] = ()

    def __post_init__(self):
        if self.period <= 0:
            raise RtosError(f"task {self.name!r}: period must be positive")
        if self.kind not in TASK_KINDS:
            raise RtosError(f"task {self.name!r}: unknown kind "
                            f"{self.kind!r}; use one of {TASK_KINDS}")
        if self.deadline == 0:
            object.__setattr__(self, "deadline", self.period)
        if self.deadline <= 0:
            raise RtosError(f"task {self.name!r}: deadline must be positive")
        if self.offset < 0 or self.jitter < 0:
            raise RtosError(
                f"task {self.name!r}: offset and jitter must be >= 0")
        object.__setattr__(self, "expected_output",
                           tuple(self.expected_output))


def task_from_kernel(kernel: Kernel, period: int, priority: int,
                     config: PatmosConfig = DEFAULT_CONFIG,
                     name: Optional[str] = None, **params) -> Task:
    """Compile a workload kernel into a :class:`Task`.

    The kernel's pure-Python reference output becomes the task's per-job
    functional check.  Extra keyword parameters pass through to
    :class:`Task` (``deadline``, ``kind``, ``offset``, ``jitter``).
    """
    image, _ = compile_and_link(kernel.program, config)
    return Task(name=name or kernel.name, image=image, period=period,
                priority=priority,
                expected_output=tuple(kernel.expected_output), **params)


@dataclass(frozen=True)
class TaskSet:
    """The tasks sharing one core, in task-index order.

    The task *index* (position in ``tasks``) is the global tie-breaker for
    equal priorities and the slot order of the TDMA-slot task scheduler, so
    it is part of the model, not an implementation detail.
    """

    tasks: tuple[Task, ...]

    def __post_init__(self):
        tasks = tuple(self.tasks)
        if not tasks:
            raise RtosError("a task set needs at least one task")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise RtosError(f"duplicate task names in task set: {names}")
        object.__setattr__(self, "tasks", tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def hyperperiod(self) -> int:
        value = 1
        for task in self.tasks:
            value = value * task.period // math.gcd(value, task.period)
        return value

    def rate_monotonic(self) -> "TaskSet":
        """The same tasks with rate-monotonic priorities (shorter period =
        higher priority, ties broken by task index)."""
        order = sorted(range(len(self.tasks)),
                       key=lambda i: (self.tasks[i].period, i))
        priority_of = {index: rank for rank, index in enumerate(order)}
        return TaskSet(tuple(
            replace(task, priority=priority_of[index])
            for index, task in enumerate(self.tasks)))


#: Watchdog responses to a job overrunning its execution budget.
OVERRUN_POLICIES = ("kill_and_log", "skip_next_release", "degrade")


@dataclass(frozen=True)
class RtosOptions:
    """Architectural costs of the RTOS machinery, in cycles.

    Every constant is charged *eagerly* on the core's clock at the decision
    point — interrupt entry+exit at each release delivery, a context switch
    at each dispatch, the cache-related preemption delay (CRPD) whenever an
    already-started job is resumed.  None of these actions touches the
    shared bus, which keeps the charge local and the co-simulation
    schedulers bit-identical.

    ``preemption_reload_cycles`` defaults to 0 because each job runs on a
    private simulator whose caches survive preemption untouched (and the
    per-task WCET already assumes a cold start); a non-zero value models
    the CRPD of a shared-cache implementation and flows into both the
    simulation and the response-time bounds.

    ``task_slot_cycles`` is the uniform per-task slot of the TDMA-slot
    (cyclic-executive) task scheduler; it must fit at least the scheduler
    overheads or no response-time bound exists.

    ``overrun_policy`` and ``watchdog_factor`` configure the per-core
    execution watchdog exercised by the fault-injection layer
    (:mod:`repro.faults`): a job still executing
    ``watchdog_factor * deadline`` cycles after its release trips the
    watchdog, which applies the policy — ``"kill_and_log"`` terminates the
    job at the budget (its output is discarded), ``"skip_next_release"``
    lets the job finish but sheds the task's next pending release, and
    ``"degrade"`` lets it finish but demotes the task to background
    priority for the rest of the run.
    """

    interrupt_entry_cycles: int = 4
    interrupt_exit_cycles: int = 4
    context_switch_cycles: int = 10
    preemption_reload_cycles: int = 0
    task_slot_cycles: int = 400
    overrun_policy: str = "kill_and_log"
    watchdog_factor: float = 2.0

    @classmethod
    def for_config(cls, config: PatmosConfig, **overrides) -> "RtosOptions":
        """Costs derived from the pipeline organisation.

        Interrupt entry flushes the fetch stages and redirects to the
        handler (like a taken branch: the exposed branch delay plus vector
        fetch); exit mirrors a return (call delay).  A context switch
        saves and restores the register context through the scratchpad —
        modelled as a constant plus both control transfers.
        """
        pipe = config.pipeline
        defaults = {
            "interrupt_entry_cycles": 2 + pipe.branch_delay_slots,
            "interrupt_exit_cycles": 1 + pipe.call_delay_slots,
            "context_switch_cycles": 4 + 2 * pipe.call_delay_slots,
        }
        defaults.update(overrides)
        return cls(**defaults)

    def __post_init__(self):
        for name in ("interrupt_entry_cycles", "interrupt_exit_cycles",
                     "context_switch_cycles", "preemption_reload_cycles"):
            if getattr(self, name) < 0:
                raise RtosError(f"{name} must be >= 0")
        if self.task_slot_cycles <= 0:
            raise RtosError("task_slot_cycles must be positive")
        if self.overrun_policy not in OVERRUN_POLICIES:
            raise RtosError(
                f"unknown overrun policy {self.overrun_policy!r}; use one "
                f"of {OVERRUN_POLICIES}")
        if self.watchdog_factor < 1:
            raise RtosError("watchdog_factor must be >= 1 (the watchdog "
                            "budget is watchdog_factor * deadline)")


#: Priority-assignment policies of :func:`synthesize_tasksets`.
PRIORITY_ASSIGNMENTS = ("rate_monotonic", "index", "random")


def synthesize_tasksets(num_cores: int, tasks_per_core: int,
                        utilisation: float = 0.5,
                        period_spread: float = 2.0,
                        priority_assignment: str = "rate_monotonic",
                        sporadic_fraction: float = 0.25,
                        seed: int = 0,
                        config: PatmosConfig = DEFAULT_CONFIG,
                        bodies: Sequence[str] = SUITES["rtos"],
                        ) -> list[TaskSet]:
    """Seeded random task sets over the RTOS kernel suite, one per core.

    ``utilisation`` is the target per-core utilisation using each body's
    *single-core* WCET as the cost estimate (the shared-bus co-simulation
    runs somewhat slower, so keep targets moderate); ``period_spread`` is
    the max/min ratio of the randomised periods; ``priority_assignment``
    picks rate-monotonic, task-index or seeded-random priorities.  Roughly
    ``sporadic_fraction`` of the tasks become sporadic with a quarter
    period of release jitter (extra spacing — never denser than the
    period, so the analysis may use the period as the inter-arrival
    bound).  Deterministic for a given argument tuple.
    """
    if num_cores < 1 or tasks_per_core < 1:
        raise RtosError("need at least one core and one task per core")
    if not 0 < utilisation < 1:
        raise RtosError("utilisation must be in (0, 1)")
    if period_spread < 1:
        raise RtosError("period_spread must be >= 1")
    if priority_assignment not in PRIORITY_ASSIGNMENTS:
        raise RtosError(
            f"unknown priority assignment {priority_assignment!r}; "
            f"use one of {PRIORITY_ASSIGNMENTS}")
    kernels = [build_kernel(name) for name in bodies]
    compiled = []
    for kernel in kernels:
        image, _ = compile_and_link(kernel.program, config)
        wcet = analyze_wcet(image, config=config).wcet_cycles
        compiled.append((kernel, image, wcet))
    rng = random.Random(
        f"tasksets:{seed}:{num_cores}:{tasks_per_core}:"
        f"{round(utilisation * 1000)}:{round(period_spread * 100)}")
    tasksets = []
    for core_id in range(num_cores):
        tasks = []
        share = utilisation / tasks_per_core
        for index in range(tasks_per_core):
            kernel, image, wcet = compiled[
                rng.randrange(len(compiled))]
            base_period = max(wcet + 1, round(wcet / share))
            period = round(base_period * rng.uniform(1.0, period_spread))
            sporadic = rng.random() < sporadic_fraction
            tasks.append(Task(
                name=f"c{core_id}_t{index}_{kernel.name}",
                image=image, period=period, priority=index,
                kind="sporadic" if sporadic else "periodic",
                offset=rng.randrange(0, max(1, period // 4)),
                jitter=period // 4 if sporadic else 0,
                expected_output=tuple(kernel.expected_output)))
        taskset = TaskSet(tuple(tasks))
        if priority_assignment == "rate_monotonic":
            taskset = taskset.rate_monotonic()
        elif priority_assignment == "random":
            priorities = list(range(tasks_per_core))
            rng.shuffle(priorities)
            taskset = TaskSet(tuple(
                replace(task, priority=priorities[i])
                for i, task in enumerate(taskset.tasks)))
        tasksets.append(taskset)
    return tasksets
