"""Command-line front end: ``python -m repro.rtos``.

Synthesizes a seeded task set (or takes the parameters of one), co-simulates
it on the shared-memory CMP, runs the response-time analysis and exits
non-zero if any task's observed response time exceeds its bound::

    python -m repro.rtos                              # 2 cores x 3 tasks, TDMA
    python -m repro.rtos --cores 4 --tasks 2 --arbiter round_robin
    python -m repro.rtos --policy tdma_slot --table
    python -m repro.rtos --scheduler reference --seed 7 --json report.json

The synthesized tasks draw their bodies from the short-running RTOS kernel
suite (``SUITES["rtos"]``) and their periods from the target utilisation —
see :func:`repro.rtos.task.synthesize_tasksets`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError, SimulationTimeout
from .system import RtosSystem
from .task import PRIORITY_ASSIGNMENTS, synthesize_tasksets


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rtos",
        description="Co-simulate a multi-core task set and check every "
                    "observed response time against its analytical bound.")
    parser.add_argument("--cores", type=int, default=2, metavar="N",
                        help="number of cores (default: 2)")
    parser.add_argument("--tasks", type=int, default=3, metavar="N",
                        help="tasks per core (default: 3)")
    parser.add_argument("--utilisation", type=float, default=0.4,
                        metavar="U", help="target per-core utilisation of "
                        "the synthesized set (default: 0.4)")
    parser.add_argument("--period-spread", type=float, default=2.0,
                        metavar="R", help="max/min ratio of the randomised "
                        "periods (default: 2.0)")
    parser.add_argument("--priorities", default="rate_monotonic",
                        choices=PRIORITY_ASSIGNMENTS,
                        help="priority assignment (default: rate_monotonic)")
    parser.add_argument("--policy", default="fixed_priority",
                        choices=("fixed_priority", "tdma_slot"),
                        help="per-core task scheduler (default: "
                             "fixed_priority)")
    parser.add_argument("--arbiter", default="tdma",
                        choices=("tdma", "round_robin", "priority"),
                        help="shared-memory arbiter (default: tdma)")
    parser.add_argument("--scheduler", default="event",
                        choices=("event", "reference"),
                        help="co-simulation interleaving (default: event)")
    parser.add_argument("--horizon", type=int, default=None, metavar="CYC",
                        help="release horizon in cycles (default: two "
                             "periods of every task)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the task-set generator and the "
                             "sporadic release streams (default: 0)")
    parser.add_argument("--max-cycles", type=int, default=None, metavar="CYC",
                        help="watchdog: abort with a structured timeout "
                             "once any core passes this many cycles "
                             "without the task set halting (default: off)")
    parser.add_argument("--max-wall-s", type=float, default=None,
                        metavar="SEC",
                        help="watchdog: abort with a structured timeout "
                             "once the co-simulation exceeds this "
                             "wall-clock budget (default: off)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable result here")
    parser.add_argument("--table", action="store_true",
                        help="print the full per-task table")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress everything but violations")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        tasksets = synthesize_tasksets(
            args.cores, args.tasks, utilisation=args.utilisation,
            period_spread=args.period_spread,
            priority_assignment=args.priorities, seed=args.seed)
        system = RtosSystem(tasksets, arbiter=args.arbiter,
                            policy=args.policy, horizon=args.horizon,
                            seed=args.seed, scheduler=args.scheduler)
        result = system.run(max_cycles=args.max_cycles,
                            max_wall_s=args.max_wall_s)
    except SimulationTimeout as exc:
        # A runaway task set becomes a structured failure instead of a
        # hung CI job: report which budget fired and how far it got.
        context = exc.context()
        print(f"error: {exc}", file=sys.stderr)
        print(f"timeout: kind={context['kind']} "
              f"max_cycles={context['max_cycles']} "
              f"max_wall_s={context['max_wall_s']} "
              f"cycles_completed={context['cycles_completed']} "
              f"core={context['core']}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        Path(args.json).write_text(json.dumps(result.to_dict(), indent=2))
        if not args.quiet:
            print(f"wrote {args.json}")
    if args.table and not args.quiet:
        print(result.table())
        print()
    if not args.quiet:
        print(result.summary())
    violations = result.violations()
    if violations:
        for task in violations:
            print(f"VIOLATION core {task.core} task {task.name}: observed "
                  f"{task.max_response} > bound {task.rta_bound}",
                  file=sys.stderr)
        return 1
    return 0
