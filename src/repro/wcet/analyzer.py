"""Top-level WCET analysis for compiled and linked Patmos programs.

The analyzer combines the pieces the paper argues should be co-designed with
the architecture:

* per-block pipeline timing (trivial thanks to the stall-free, exposed-delay
  pipeline — one cycle per issued bundle);
* the method-cache, static-cache, object-cache and stack-cache analyses from
  :mod:`repro.wcet.cache_analysis`;
* an IPET formulation per function (functions split for the method cache are
  analysed together with their sub-functions), composed bottom-up over the
  call graph;
* optional TDMA arbitration costs for chip-multiprocessor configurations.

The result is a WCET bound in cycles plus a per-function, per-category
breakdown that the experiments compare against cycle-accurate simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import DEFAULT_CONFIG, PatmosConfig
from ..errors import ConfigError, WcetError
from ..isa.opcodes import MemType, Opcode
from ..memory.tdma import TdmaSchedule
from ..program.callgraph import CallGraph
from ..program.cfg import ControlFlowGraph
from ..program.function import Function
from ..program.linker import Image
from .block_timing import BlockSummary, summarise_block
from .cache_analysis import (
    ConventionalICacheAnalysis,
    MethodCacheAnalysis,
    ObjectCacheAnalysis,
    StackCacheAnalysis,
    StaticCacheAnalysis,
    analyse_conventional_icache,
    analyse_method_cache,
    analyse_object_cache,
    analyse_stack_cache,
    analyse_static_cache,
)
from .ipet import IpetResult, solve_ipet


@dataclass(frozen=True)
class WcetOptions:
    """Analysis configuration (which cache models / baselines to use)."""

    #: "persistence", "always_miss" or "ideal".
    method_cache: str = "persistence"
    #: "persistence", "always_miss" or "ideal".
    static_cache: str = "persistence"
    #: "always_miss" or "ideal".
    object_cache: str = "always_miss"
    #: "refined" or "naive".
    stack_cache: str = "refined"
    #: Analyse the conventional instruction-cache baseline instead of the
    #: method cache (experiment E4).
    conventional_icache: bool = False
    #: Analyse the unified data-cache baseline (experiment E5).
    unified_data_cache: bool = False
    #: TDMA schedule of the CMP configuration (adds worst-case arbitration).
    tdma: Optional[TdmaSchedule] = None
    #: The core whose TDMA slot this analysis models.  ``None`` falls back to
    #: the blanket schedule-wide bound (``period - 1`` per transfer); with a
    #: core id every transfer is charged the refined per-core, per-transfer
    #: bound ``schedule.worst_case_wait(core, transfer_cycles)`` instead.
    tdma_core_id: Optional[int] = None
    #: Interference model of the memory arbiter: "tdma" uses the exact
    #: per-transfer bound of ``tdma``; "round_robin" charges ``(N - 1)``
    #: maximal transfers per access; "priority" is bounded only for the
    #: top-priority core (any other rank makes the analysis fail).
    arbiter: str = "tdma"
    #: Number of cores competing on the bus (round-robin/priority models;
    #: < 2 means no interference).
    arbiter_cores: int = 0
    #: This core's priority rank under "priority" (0 = highest).
    priority_rank: int = 0
    #: Extra loop bounds: ``(function, header label) -> bound`` (overrides
    #: block annotations).
    loop_bounds: dict = field(default_factory=dict)
    #: Bounded bus-transfer retries (fault model): every arbitrated transfer
    #: may fail and be re-arbitrated up to this many times, each attempt
    #: occupying a full slot plus worst-case wait.  0 = fault-free bus.
    bus_retry_limit: int = 0
    #: Flat per-run latency of the fault-recovery hardware outside the bus
    #: model (ECC correction charges); added once to the total bound.
    fault_overhead_cycles: int = 0
    #: Run the abstract-interpretation value analysis (:mod:`repro.analysis`):
    #: infer loop bounds where annotations are missing, tighten loose ones,
    #: prune infeasible paths via extra IPET flow constraints, and restrict
    #: the static-cache persistence argument to the data the program can
    #: actually reach.  Disabling falls back to annotations only.
    analysis: bool = True

    @classmethod
    def for_arbiter(cls, kind: str, num_cores: int,
                    schedule: Optional[TdmaSchedule] = None,
                    priority_rank: int = 0,
                    core_id: Optional[int] = None,
                    **overrides) -> Optional["WcetOptions"]:
        """The interference options matching one multicore arbiter.

        Single source of the arbiter-to-analysis mapping shared by
        :class:`~repro.cmp.system.MulticoreSystem` and the exploration
        specs: TDMA uses the exact ``schedule`` bound, round-robin the
        ``(N - 1)``-transfers bound, and priority is analysable only at
        rank 0 — any other rank returns ``None`` (no bound exists).
        ``core_id`` selects the refined per-core TDMA bound (the analysed
        core's own slot); ``None`` keeps the blanket ``period - 1`` bound.
        """
        if num_cores <= 1:
            return cls(**overrides)
        if kind == "tdma":
            overrides.setdefault("tdma_core_id", core_id)
            return cls(tdma=schedule, **overrides)
        if kind == "round_robin":
            return cls(arbiter="round_robin", arbiter_cores=num_cores,
                       **overrides)
        if kind == "priority":
            if priority_rank != 0:
                return None
            return cls(arbiter="priority", arbiter_cores=num_cores,
                       priority_rank=0, **overrides)
        raise WcetError(f"unknown arbiter interference model {kind!r}")

    def to_dict(self) -> dict:
        """Stable, JSON-serializable view of the analysis options.

        Used by result caches (``repro.explore``) to key stored WCET bounds;
        the TDMA schedule is flattened to its defining pair and the loop-bound
        overrides to a sorted list so equal options serialize identically.
        """
        return {
            "method_cache": self.method_cache,
            "static_cache": self.static_cache,
            "object_cache": self.object_cache,
            "stack_cache": self.stack_cache,
            "conventional_icache": self.conventional_icache,
            "unified_data_cache": self.unified_data_cache,
            "tdma": (None if self.tdma is None else
                     {"num_cores": self.tdma.num_cores,
                      "slot_cycles": self.tdma.slot_cycles,
                      "slot_weights": list(self.tdma.slot_weights)}),
            "tdma_core_id": self.tdma_core_id,
            "arbiter": self.arbiter,
            "arbiter_cores": self.arbiter_cores,
            "priority_rank": self.priority_rank,
            "loop_bounds": sorted(
                [list(key), bound] for key, bound in self.loop_bounds.items()),
            "bus_retry_limit": self.bus_retry_limit,
            "fault_overhead_cycles": self.fault_overhead_cycles,
            "analysis": self.analysis,
        }


@dataclass
class FunctionWcet:
    """WCET contribution of one function (including its sub-functions)."""

    name: str
    wcet_cycles: int
    ipet: IpetResult
    block_costs: dict[str, int]
    callee_cycles: int = 0


@dataclass
class WcetResult:
    """Result of a whole-program WCET analysis."""

    entry: str
    wcet_cycles: int
    one_off_cycles: int
    per_function: dict[str, FunctionWcet]
    options: WcetOptions
    #: Loop-bound audits from the value analysis (empty when disabled).
    loop_audits: list = field(default_factory=list)
    method_cache: MethodCacheAnalysis | None = None
    icache: ConventionalICacheAnalysis | None = None
    static_cache: StaticCacheAnalysis | None = None
    object_cache: ObjectCacheAnalysis | None = None
    stack_cache: StackCacheAnalysis | None = None

    def tightness(self, observed_cycles: int) -> float:
        """Ratio of the WCET bound to an observed execution time (>= 1.0)."""
        if observed_cycles <= 0:
            raise WcetError("observed execution time must be positive")
        return self.wcet_cycles / observed_cycles

    def summary(self) -> str:
        lines = [
            f"WCET bound       : {self.wcet_cycles} cycles",
            f"  one-off costs  : {self.one_off_cycles} cycles",
            f"  entry function : {self.entry}",
        ]
        for name, func in self.per_function.items():
            lines.append(f"  {name:24s}: {func.wcet_cycles} cycles")
        return "\n".join(lines)


class WcetAnalyzer:
    """Static WCET analysis of a linked Patmos image."""

    def __init__(self, image: Image, config: Optional[PatmosConfig] = None,
                 options: WcetOptions = WcetOptions()):
        self.image = image
        self.config = config or image.config or DEFAULT_CONFIG
        self.options = options
        self.program = image.program
        #: Fill size in words of every linked function (method-cache events).
        self._fill_words = {record.name: -(-record.size_bytes // 4)
                            for record in image.functions}
        #: Memo of the per-transfer bus wait, keyed by transfer word count.
        self._wait_memo: dict[int, int] = {}
        #: Value-analysis facts of the last analyze() run (None if disabled).
        self._facts = None

    # ------------------------------------------------------------------

    def analyze(self, entry: Optional[str] = None) -> WcetResult:
        """Compute the WCET bound for the program starting at ``entry``."""
        entry = entry or self.program.entry
        options = self.options
        # Fail fast on an unbounded interference model (e.g. any core below
        # the top priority) instead of deep inside the per-block costing,
        # and on a core id outside the TDMA schedule.
        self._interference_wait()
        if options.bus_retry_limit < 0 or options.fault_overhead_cycles < 0:
            raise WcetError(
                "bus_retry_limit and fault_overhead_cycles must be >= 0")
        if (options.arbiter == "tdma" and options.tdma is not None
                and options.tdma_core_id is not None):
            options.tdma.slot_length(options.tdma_core_id)  # range check

        facts = None
        accessed_items = None
        if options.analysis:
            # Imported lazily: repro.analysis builds on repro.wcet.ipet.
            from ..analysis.facts import program_facts
            facts = program_facts(self.program)
            accessed_items = facts.accessed_static_items(
                write_allocate=self.config.static_cache.write_allocate)
        self._facts = facts

        method_cache = None
        icache = None
        if options.conventional_icache:
            icache = analyse_conventional_icache(self.image, self.config)
        else:
            method_cache = analyse_method_cache(
                self.image, self.config, mode=options.method_cache, entry=entry)
        static_cache = analyse_static_cache(
            self.image, self.config, mode=options.static_cache,
            unified=options.unified_data_cache,
            accessed_items=accessed_items)
        object_cache = analyse_object_cache(self.config, mode=options.object_cache)
        frame_words = self._frame_words()
        stack_cache = analyse_stack_cache(
            self.program, self.config, frame_words, mode=options.stack_cache)

        call_graph = CallGraph.build(self.program)
        if call_graph.is_recursive():
            raise WcetError("WCET analysis requires a non-recursive call graph")

        per_function: dict[str, FunctionWcet] = {}
        function_wcet: dict[str, int] = {}
        order = call_graph.topological_order(root=entry)  # callees first
        groups = self._analysis_groups()
        for name in order:
            function = self.program.function(name)
            if function.is_subfunction:
                continue
            result = self._analyse_function(
                function, groups.get(name, []), function_wcet, method_cache,
                icache, static_cache, object_cache, stack_cache)
            per_function[name] = result
            function_wcet[name] = result.wcet_cycles

        one_off = 0
        one_off_transfers = 0
        if method_cache is not None:
            one_off += method_cache.one_off_cycles
            one_off_transfers += method_cache.one_off_transfers
        if icache is not None:
            one_off += icache.one_off_cycles
            one_off_transfers += icache.one_off_transfers
        one_off += static_cache.one_off_cycles
        one_off_transfers += static_cache.one_off_transfers
        if one_off_transfers > 0:
            # Every one-off transfer may additionally wait for the bus; each
            # is at most one burst on the bus (the controller's slot limit).
            interference = self._transfer_wait(self.config.memory.burst_words)
            if interference:
                one_off += one_off_transfers * interference
            if options.bus_retry_limit:
                # Each retried attempt re-occupies a full burst slot and may
                # wait for the bus again (the same per-attempt bound the
                # per-block costs charge via transfer_event).
                one_off += (one_off_transfers * options.bus_retry_limit
                            * (self.config.memory.burst_cycles()
                               + interference))

        total = (function_wcet[entry] + one_off
                 + options.fault_overhead_cycles)
        return WcetResult(
            entry=entry, wcet_cycles=total, one_off_cycles=one_off,
            per_function=per_function, options=options,
            loop_audits=facts.loop_audits() if facts is not None else [],
            method_cache=method_cache, icache=icache,
            static_cache=static_cache, object_cache=object_cache,
            stack_cache=stack_cache)

    # ------------------------------------------------------------------
    # Per-function analysis
    # ------------------------------------------------------------------

    def _analysis_groups(self) -> dict[str, list[Function]]:
        """Sub-functions grouped under their parent function."""
        groups: dict[str, list[Function]] = {}
        for function in self.program.functions.values():
            if function.is_subfunction and function.parent:
                groups.setdefault(function.parent, []).append(function)
        return groups

    def _merged_function(self, function: Function,
                         subfunctions: list[Function]) -> Function:
        """Merge a function with its sub-functions into one analysis CFG.

        ``brcf`` transfers to a sub-function are rewritten to plain branches
        to the sub-function's entry block so that the CFG sees them as
        ordinary edges; the method-cache cost of the transfer is still charged
        from the block summary (which is taken from the original blocks).
        """
        if not subfunctions:
            return function
        merged = function.copy()
        entry_labels = {}
        for sub in subfunctions:
            entry_labels[sub.name] = sub.entry_block().label
        for sub in subfunctions:
            merged.blocks.extend(block.copy() for block in sub.blocks)
        for block in merged.blocks:
            rewritten = []
            changed = False
            for instr in block.instrs:
                if instr.opcode is Opcode.BRCF and instr.target in entry_labels:
                    rewritten.append(instr.with_target(entry_labels[instr.target]))
                    changed = True
                else:
                    rewritten.append(instr)
            if changed:
                bundles = block.bundles
                block.instrs = rewritten
                block.bundles = bundles  # structure unchanged, keep schedule
        return merged

    def _frame_words(self) -> dict[str, int]:
        """Words reserved by each function's sres (0 for frameless functions)."""
        frames: dict[str, int] = {}
        for function in self.program.functions.values():
            words = 0
            for block in function.blocks:
                for instr in block.instrs:
                    if instr.opcode is Opcode.SRES:
                        words = max(words, instr.imm)
            frames[function.name] = words
        return frames

    def _interference_wait(self) -> int:
        """Worst-case extra bus wait charged to every memory transfer.

        TDMA is exact (the schedule bounds the wait independently of the
        other cores); round-robin assumes all ``N - 1`` competitors are
        queued ahead with maximal transfers; priority is one blocking
        transfer for the top core and *unbounded* for everyone else — the
        model the paper argues against.
        """
        options = self.options
        if options.arbiter == "tdma":
            if options.tdma is None:
                return 0
            return options.tdma.worst_case_wait()
        if options.arbiter_cores < 2:
            return 0
        burst = self.config.memory.burst_cycles()
        if options.arbiter == "round_robin":
            return (options.arbiter_cores - 1) * burst
        if options.arbiter == "priority":
            if options.priority_rank == 0:
                return burst  # one non-preemptible transfer in flight
            raise WcetError(
                f"priority arbitration has no WCET bound for priority rank "
                f"{options.priority_rank}; only the top-priority core is "
                f"analysable")
        raise WcetError(f"unknown arbiter interference model "
                        f"{options.arbiter!r}")

    def _transfer_wait(self, words: int) -> int:
        """Worst-case bus wait of one arbitrated transfer of ``words`` words.

        The memory controller arbitrates at most one burst per transaction
        (larger fills are split), so the arbitrated length is the burst-capped
        transfer time of ``words``.  Under TDMA with a known core id this is
        the refined bound ``schedule.worst_case_wait(core, transfer)``; with
        no core id it falls back to the blanket ``period - 1``, and the
        round-robin/priority models are per-transfer constants anyway.

        Note the current :class:`~repro.config.MemoryConfig` cost model
        rounds every transfer up to whole bursts, so all ``words >= 1``
        presently collapse to one burst and the refinement is effectively
        per *core* (slot length).  The per-event word counts mirror what the
        simulator registers with the arbiter at each call site, keeping the
        bound aligned if the cost model ever gains sub-burst transfers.
        """
        options = self.options
        if options.arbiter != "tdma":
            return self._interference_wait()
        schedule = options.tdma
        if schedule is None:
            return 0
        if options.tdma_core_id is None:
            return schedule.worst_case_wait()
        cached = self._wait_memo.get(words)
        if cached is None:
            memory = self.config.memory
            transfer = min(
                memory.transfer_cycles(min(words, memory.burst_words)),
                memory.burst_cycles())
            try:
                cached = schedule.worst_case_wait(options.tdma_core_id,
                                                  transfer)
            except ConfigError as exc:
                raise WcetError(
                    f"core {options.tdma_core_id}'s TDMA slot cannot fit a "
                    f"{transfer}-cycle burst transfer; no WCET bound exists "
                    f"(widen the slot or the core's weight)") from exc
            self._wait_memo[words] = cached
        return cached

    def _block_cost(self, summary: BlockSummary, function: Function,
                    function_wcet: dict[str, int],
                    method_cache: MethodCacheAnalysis | None,
                    icache: ConventionalICacheAnalysis | None,
                    static_cache: StaticCacheAnalysis,
                    object_cache: ObjectCacheAnalysis,
                    stack_cache: StackCacheAnalysis) -> tuple[int, int]:
        """Worst-case cost of one block; returns ``(cost, callee_part)``."""
        config = self.config
        cost = summary.bundles
        callee_part = 0

        if summary.indirect_calls:
            raise WcetError(
                f"{summary.function}/{summary.label}: indirect calls (callr) "
                "cannot be bounded without target annotations")

        # Per-transfer bus interference: every event passes the word count of
        # its (single, burst-capped) arbitrated transaction, mirroring what
        # the simulator registers with the arbiter for that event.
        wait = self._transfer_wait
        fill_words = self._fill_words
        static_line_words = config.static_cache.line_bytes // 4
        # The simulator arbitrates every cached-line fill at the static-cache
        # line size; take the larger of that and the object cache's own line
        # so the charge dominates either wiring.
        object_line_words = max(static_line_words,
                                config.data_cache.line_bytes // 4)

        # Under the bounded-retry bus-fault model every arbitrated transfer
        # may fail and be re-arbitrated up to bus_retry_limit times; each
        # attempt occupies its slot in full and waits for the bus again, so
        # every transfer event is charged (1 + retries) attempts.
        attempts = 1 + self.options.bus_retry_limit

        def transfer_event(base_cycles: int, words: int) -> int:
            if base_cycles <= 0:
                return 0
            return (base_cycles + wait(words)) * attempts

        if icache is not None:
            cost += summary.bundles * transfer_event(icache.per_fetch_cost,
                                                     icache.line_words)

        # Calls: method-cache fill of the callee, the callee's own WCET and
        # the method-cache fill of this function on return.
        for callee in summary.calls:
            if callee not in function_wcet:
                raise WcetError(
                    f"callee {callee!r} analysed after its caller "
                    f"{summary.function!r} (call-graph order error)")
            callee_part += function_wcet[callee]
            if method_cache is not None:
                cost += transfer_event(method_cache.transfer_cost(callee),
                                       fill_words.get(callee, 0))
                cost += transfer_event(
                    method_cache.transfer_cost(summary.function),
                    fill_words.get(summary.function, 0))

        # brcf into sub-functions (or other functions).
        for target in summary.brcf_targets:
            if method_cache is not None:
                cost += transfer_event(method_cache.transfer_cost(target),
                                       fill_words.get(target, 0))

        # Typed data accesses.
        cost += summary.read_count(MemType.STATIC) * transfer_event(
            static_cache.per_read_cost, static_line_words)
        cost += summary.write_count(MemType.STATIC) * transfer_event(
            static_cache.per_write_cost, 1)
        cost += summary.read_count(MemType.OBJECT) * transfer_event(
            object_cache.per_read_cost, object_line_words)
        cost += summary.write_count(MemType.OBJECT) * transfer_event(
            object_cache.per_write_cost, 1)
        if self.options.unified_data_cache:
            # Stack accesses also compete in the unified cache.
            cost += summary.read_count(MemType.STACK) * transfer_event(
                static_cache.per_read_cost, static_line_words)
            cost += summary.write_count(MemType.STACK) * transfer_event(
                static_cache.per_write_cost, 1)
        # Split main-memory loads are charged at the wait instruction.
        cost += summary.wmem_count * transfer_event(
            config.memory.transfer_cycles(1), 1)
        cost += summary.write_count(MemType.MAIN) * transfer_event(
            config.memory.transfer_cycles(1), 1)

        # Stack-control costs.
        spill = stack_cache.spill_words.get(summary.function, 0)
        for _ in summary.sres_words:
            cost += transfer_event(config.memory.transfer_cycles(spill), spill)
        worst_fill = max(
            (words for (caller, _), words in stack_cache.fill_words.items()
             if caller == summary.function), default=0)
        for _ in summary.sens_words:
            cost += transfer_event(config.memory.transfer_cycles(worst_fill),
                                   worst_fill)

        return cost, callee_part

    def _analyse_function(self, function: Function,
                          subfunctions: list[Function],
                          function_wcet: dict[str, int],
                          method_cache: MethodCacheAnalysis | None,
                          icache: ConventionalICacheAnalysis | None,
                          static_cache: StaticCacheAnalysis,
                          object_cache: ObjectCacheAnalysis,
                          stack_cache: StackCacheAnalysis) -> FunctionWcet:
        merged = self._merged_function(function, subfunctions)
        cfg = ControlFlowGraph.build(merged)

        block_costs: dict[str, int] = {}
        callee_total = 0
        source_blocks = {block.label: (function, block) for block in function.blocks}
        for sub in subfunctions:
            for block in sub.blocks:
                source_blocks[block.label] = (sub, block)
        for label in merged.block_labels():
            owner, block = source_blocks[label]
            summary = summarise_block(owner, block)
            # Summaries carry the owner's name; the stack/frame and call costs
            # of sub-functions belong to the parent frame.
            if owner.is_subfunction:
                summary.function = function.name
            cost, callee_part = self._block_cost(
                summary, function, function_wcet, method_cache, icache,
                static_cache, object_cache, stack_cache)
            block_costs[label] = cost + callee_part
            callee_total += callee_part

        # Bound precedence: explicit per-call overrides > audited effective
        # bounds (min of annotation and inferred) > block annotations, which
        # solve_ipet reads off the CFG itself.
        loop_bounds: dict[str, int] = {}
        flow_constraints = None
        func_facts = (self._facts.function_facts(function.name)
                      if self._facts is not None else None)
        if func_facts is not None:
            loop_bounds.update(func_facts.effective_bounds())
            flow_constraints = func_facts.flow_constraints()
        loop_bounds.update({
            label: bound
            for (func_name, label), bound in self.options.loop_bounds.items()
            if func_name == function.name
        })
        ipet = solve_ipet(cfg, block_costs, loop_bounds,
                          flow_constraints=flow_constraints)
        return FunctionWcet(name=function.name, wcet_cycles=ipet.wcet,
                            ipet=ipet, block_costs=block_costs,
                            callee_cycles=callee_total)


def analyze_wcet(image: Image, config: Optional[PatmosConfig] = None,
                 options: WcetOptions = WcetOptions(),
                 entry: Optional[str] = None) -> WcetResult:
    """Convenience wrapper: analyse ``image`` and return the WCET result."""
    return WcetAnalyzer(image, config=config, options=options).analyze(entry=entry)
