"""Implicit path enumeration (IPET) over a function's control-flow graph.

The classic IPET formulation bounds the WCET of a function by maximising
``sum(cost_b * x_b)`` over all block execution-count vectors ``x`` that
satisfy flow conservation and loop-bound constraints.  The problem is an
integer linear program; it is solved with :func:`scipy.optimize.milp`.  A
pure longest-path solver for loop-free (DAG) control flow is also provided —
it is both a fallback and a cross-check used by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize, sparse

from ..errors import WcetError
from ..program.cfg import ControlFlowGraph

#: Virtual source/sink node names used in the edge-based formulation.
SOURCE = "__source__"
SINK = "__sink__"


@dataclass
class IpetResult:
    """Solution of one IPET instance."""

    wcet: int
    block_counts: dict[str, int] = field(default_factory=dict)
    edge_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    status: str = "optimal"


@dataclass(frozen=True)
class FlowConstraint:
    """Extra linear flow fact ``sum(coeff * x_edge) <= upper``.

    Produced by the static analysis (infeasible-path detection); terms
    reference CFG edges ``(src, dst)``.  Terms whose edge does not exist in
    the solved CFG are silently dropped — the constraint is a statement
    about executions of those edges, and a missing edge executes zero
    times.
    """

    terms: tuple[tuple[tuple[str, str], float], ...]
    upper: float
    reason: str = ""


def _edges_with_virtuals(cfg: ControlFlowGraph) -> list[tuple[str, str]]:
    edges = [(SOURCE, cfg.entry)]
    reachable = cfg.reachable()
    for src, dst in cfg.edges():
        if src in reachable and dst in reachable:
            edges.append((src, dst))
    for label in cfg.exits:
        if label in reachable:
            edges.append((label, SINK))
    return edges


def solve_ipet(cfg: ControlFlowGraph, block_costs: dict[str, int],
               loop_bounds: dict[str, int] | None = None,
               flow_constraints: list[FlowConstraint] | None = None
               ) -> IpetResult:
    """Solve the IPET ILP for one function.

    ``block_costs`` maps block labels to their worst-case cost in cycles.
    ``loop_bounds`` maps loop-header labels to the maximum number of header
    executions per loop entry; loops found in the CFG without a bound (either
    here or as a block annotation) are an error, because the ILP would be
    unbounded.  ``flow_constraints`` adds analysis-derived linear facts over
    edge counts (e.g. infeasible-path exclusions).
    """
    loop_bounds = dict(loop_bounds or {})
    for loop in cfg.natural_loops():
        if loop.header not in loop_bounds:
            if loop.bound is None:
                raise WcetError(
                    f"loop at {loop.header!r} in {cfg.function.name} has no "
                    "bound annotation; WCET is unbounded")
            loop_bounds[loop.header] = loop.bound

    edges = _edges_with_virtuals(cfg)
    edge_index = {edge: i for i, edge in enumerate(edges)}
    num_edges = len(edges)
    reachable = cfg.reachable()

    # Objective: maximise sum over blocks of cost * (sum of incoming edges).
    objective = np.zeros(num_edges)
    for (src, dst), index in edge_index.items():
        if dst in block_costs:
            objective[index] += block_costs[dst]

    rows: list[np.ndarray] = []
    lower: list[float] = []
    upper: list[float] = []

    def add_constraint(coeffs: dict[int, float], lo: float, hi: float) -> None:
        row = np.zeros(num_edges)
        for index, value in coeffs.items():
            row[index] = value
        rows.append(row)
        lower.append(lo)
        upper.append(hi)

    # Source emits exactly one execution; sink absorbs exactly one.
    add_constraint({edge_index[(SOURCE, cfg.entry)]: 1.0}, 1.0, 1.0)
    sink_edges = {edge_index[e]: 1.0 for e in edges if e[1] == SINK}
    if not sink_edges:
        raise WcetError(f"function {cfg.function.name} has no exit block")
    add_constraint(sink_edges, 1.0, 1.0)

    # Flow conservation per block: sum(in) - sum(out) == 0.
    for label in reachable:
        coeffs: dict[int, float] = {}
        for edge, index in edge_index.items():
            if edge[1] == label:
                coeffs[index] = coeffs.get(index, 0.0) + 1.0
            if edge[0] == label:
                coeffs[index] = coeffs.get(index, 0.0) - 1.0
        add_constraint(coeffs, 0.0, 0.0)

    # Loop bounds: header executions <= bound * entries from outside the loop.
    for loop in cfg.natural_loops():
        bound = loop_bounds[loop.header]
        coeffs: dict[int, float] = {}
        for edge, index in edge_index.items():
            src, dst = edge
            if dst == loop.header and (src, dst) in loop.back_edges:
                coeffs[index] = coeffs.get(index, 0.0) + 1.0
            elif dst == loop.header:
                coeffs[index] = coeffs.get(index, 0.0) - float(bound - 1)
        add_constraint(coeffs, -np.inf, 0.0)

    # Analysis-derived flow facts (infeasible paths, exclusive branches).
    for fact in flow_constraints or ():
        coeffs = {}
        for edge, coeff in fact.terms:
            index = edge_index.get(edge)
            if index is not None:
                coeffs[index] = coeffs.get(index, 0.0) + coeff
        if coeffs:
            add_constraint(coeffs, -np.inf, fact.upper)

    constraints = optimize.LinearConstraint(
        sparse.csr_matrix(np.vstack(rows)), np.array(lower), np.array(upper))
    bounds = optimize.Bounds(lb=np.zeros(num_edges), ub=np.full(num_edges, np.inf))
    result = optimize.milp(
        c=-objective, constraints=constraints, bounds=bounds,
        integrality=np.ones(num_edges))
    if not result.success:
        raise WcetError(
            f"IPET ILP for {cfg.function.name} failed: {result.message}")

    edge_counts = {
        edge: int(round(result.x[index])) for edge, index in edge_index.items()
    }
    block_counts: dict[str, int] = {}
    for (src, dst), count in edge_counts.items():
        if dst in reachable:
            block_counts[dst] = block_counts.get(dst, 0) + count
    wcet = int(round(-result.fun))
    return IpetResult(wcet=wcet, block_counts=block_counts,
                      edge_counts=edge_counts)


def longest_path_dag(cfg: ControlFlowGraph, block_costs: dict[str, int]) -> int:
    """Longest-path WCET for loop-free control flow (cross-check for IPET)."""
    if cfg.back_edges():
        raise WcetError("longest_path_dag requires loop-free control flow")
    order = cfg.topological_order()
    best: dict[str, int] = {}
    for label in order:
        preds = [p for p in cfg.predecessors(label) if p in best]
        incoming = max((best[p] for p in preds), default=0)
        best[label] = incoming + block_costs.get(label, 0)
    exits = [label for label in cfg.exits if label in best]
    if not exits:
        raise WcetError(f"function {cfg.function.name} has no reachable exit")
    return max(best[label] for label in exits)
