"""Static cache analyses used by the WCET analyzer.

The paper's central argument is that the *specialised* caches of Patmos make
their static analysis simple:

* **Method cache** — misses can only happen at call, return and ``brcf``.  If
  all functions reachable from the entry fit into the cache together, each
  function is loaded at most once (a one-off cost); otherwise every
  call/return conservatively pays the fill cost of its target.  A conventional
  instruction cache, by contrast, can miss at every fetch, and without a
  precise abstract-interpretation model the analysis has to assume so unless
  the whole program fits.
* **Static/constant cache** — static data addresses are known at link time, so
  the analysis can check conflict-freedom exactly and charge each line's fill
  once (persistence) instead of once per access.
* **Object/heap cache** — heap addresses are statically unknown; accesses are
  conservatively classified as misses (analysing object caches is cited as
  future work in the paper).
* **Stack cache** — spill and fill costs are a deterministic function of the
  reserve/ensure amounts and the worst-case occupancy along call paths.
* **Unified cache baseline** — any access may evict any line, so without a
  global may/must analysis every data access (including stack data) must be
  treated as a potential miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import PatmosConfig
from ..errors import WcetError
from ..program.callgraph import CallGraph
from ..program.linker import Image
from ..program.program import DataSpace, Program


# ---------------------------------------------------------------------------
# Method cache
# ---------------------------------------------------------------------------


@dataclass
class MethodCacheAnalysis:
    """Classification of method-cache costs.

    ``per_target_cost[name]`` is the cycle cost charged at every control
    transfer into function ``name`` (0 if classified always-hit), and
    ``one_off_cycles`` is the total cost of first-time loads charged once.
    """

    fits_all: bool
    one_off_cycles: int
    per_target_cost: dict[str, int]
    fill_cost: dict[str, int]
    #: Number of separate one-off memory transfers behind ``one_off_cycles``
    #: (each may additionally wait for its TDMA slot in CMP configurations).
    one_off_transfers: int = 0

    def transfer_cost(self, target: str) -> int:
        return self.per_target_cost.get(target, 0)


def _fill_cycles(config: PatmosConfig, size_bytes: int) -> int:
    words = -(-size_bytes // 4)
    return config.memory.transfer_cycles(words)


def analyse_method_cache(image: Image, config: PatmosConfig,
                         mode: str = "persistence",
                         entry: str | None = None) -> MethodCacheAnalysis:
    """Analyse method-cache behaviour for the whole program.

    ``mode`` is ``"persistence"`` (all-fit analysis), ``"always_miss"`` or
    ``"ideal"`` (no cost, used for what-if comparisons).
    """
    program = image.program
    entry = entry or program.entry
    call_graph = CallGraph.build(program)
    reachable = set(call_graph.reachable_from(entry))
    # Sub-functions created by the splitter are reached via brcf, not call.
    for record in image.functions:
        if record.is_subfunction and record.parent in reachable:
            reachable.add(record.name)

    fill_cost = {
        record.name: _fill_cycles(config, record.size_bytes)
        for record in image.functions
    }

    if mode == "ideal":
        return MethodCacheAnalysis(fits_all=True, one_off_cycles=0,
                                   per_target_cost={}, fill_cost=fill_cost,
                                   one_off_transfers=0)

    blocks_needed = 0
    block_bytes = config.method_cache.block_bytes
    for record in image.functions:
        if record.name in reachable:
            blocks_needed += max(1, -(-record.size_bytes // block_bytes))
    fits_all = blocks_needed <= config.method_cache.num_blocks

    if mode == "persistence" and fits_all:
        one_off = sum(fill_cost[name] for name in reachable)
        return MethodCacheAnalysis(
            fits_all=True, one_off_cycles=one_off,
            per_target_cost={name: 0 for name in reachable},
            fill_cost=fill_cost, one_off_transfers=len(reachable))

    if mode not in ("persistence", "always_miss"):
        raise WcetError(f"unknown method-cache analysis mode {mode!r}")

    per_target = {name: fill_cost[name] for name in reachable}
    entry_cost = fill_cost.get(entry, 0)
    return MethodCacheAnalysis(fits_all=fits_all, one_off_cycles=entry_cost,
                               per_target_cost=per_target, fill_cost=fill_cost,
                               one_off_transfers=1 if entry_cost else 0)


@dataclass
class ConventionalICacheAnalysis:
    """Pessimistic analysis of the conventional instruction-cache baseline."""

    fits_whole_program: bool
    one_off_cycles: int
    #: Cycles charged per issued bundle when the program does not fit.
    per_fetch_cost: int
    #: Number of separate one-off line fills behind ``one_off_cycles``.
    one_off_transfers: int = 0
    #: Words per line fill (the arbitrated transfer size of one miss).
    line_words: int = 4


def analyse_conventional_icache(image: Image, config: PatmosConfig,
                                icache_size_bytes: int | None = None,
                                line_bytes: int = 16
                                ) -> ConventionalICacheAnalysis:
    """Analyse the conventional I-cache baseline (experiment E4).

    Without the method cache's structural guarantee, a sound analysis needs a
    precise model of the replacement state at every fetch.  This baseline
    implements the two simple, sound classifications that are available
    without such a model: if the whole program fits into the cache, every line
    misses at most once; otherwise every fetch must be assumed to miss.
    """
    if icache_size_bytes is None:
        icache_size_bytes = config.method_cache.size_bytes
    code_bytes = image.code_size_bytes()
    line_fill = config.memory.transfer_cycles(line_bytes // 4)
    if code_bytes <= icache_size_bytes:
        lines = -(-code_bytes // line_bytes)
        return ConventionalICacheAnalysis(
            fits_whole_program=True, one_off_cycles=lines * line_fill,
            per_fetch_cost=0, one_off_transfers=lines,
            line_words=line_bytes // 4)
    return ConventionalICacheAnalysis(
        fits_whole_program=False, one_off_cycles=0, per_fetch_cost=line_fill,
        one_off_transfers=0, line_words=line_bytes // 4)


# ---------------------------------------------------------------------------
# Static/constant cache
# ---------------------------------------------------------------------------


@dataclass
class StaticCacheAnalysis:
    """Classification of static/constant-cache accesses."""

    persistent: bool
    one_off_cycles: int
    per_read_cost: int
    per_write_cost: int
    #: Number of separate one-off line fills behind ``one_off_cycles``.
    one_off_transfers: int = 0


def analyse_static_cache(image: Image, config: PatmosConfig,
                         mode: str = "persistence",
                         unified: bool = False,
                         accessed_items: set[str] | None = None
                         ) -> StaticCacheAnalysis:
    """Analyse the static/constant cache (or the unified-cache baseline).

    ``accessed_items`` optionally restricts the persistence argument to the
    static data items the program can actually touch (as proven by the
    address-range analysis): lines of untouched items are never filled, so
    they neither cost a one-off fill nor participate in conflicts.  ``None``
    keeps the conservative whole-image behaviour.
    """
    line_bytes = config.static_cache.line_bytes
    miss = config.memory.transfer_cycles(line_bytes // 4)
    write_cost = config.memory.transfer_cycles(1)

    if mode == "ideal":
        return StaticCacheAnalysis(persistent=True, one_off_cycles=0,
                                   per_read_cost=0, per_write_cost=0)
    if unified or mode == "always_miss":
        # Unified baseline: heap and unknown accesses share the cache, so no
        # persistence argument holds; every read may miss.
        return StaticCacheAnalysis(persistent=False, one_off_cycles=0,
                                   per_read_cost=miss, per_write_cost=write_cost)
    if mode != "persistence":
        raise WcetError(f"unknown static-cache analysis mode {mode!r}")

    # Persistence: static data addresses are known at link time.  Check that
    # all static lines fit without conflicts; then each line misses at most
    # once over the whole execution.
    lines_by_set: dict[int, set[int]] = {}
    num_sets = (config.static_cache.size_bytes
                // (line_bytes * config.static_cache.associativity))
    total_lines = 0
    for item in image.program.data_in_order():
        if item.space not in (DataSpace.CONST, DataSpace.DATA):
            continue
        if accessed_items is not None and item.name not in accessed_items:
            continue
        base = image.symbol(item.name)
        first_line = base // line_bytes
        last_line = (base + item.size_bytes - 1) // line_bytes
        for line in range(first_line, last_line + 1):
            set_index = line % max(1, num_sets)
            lines_by_set.setdefault(set_index, set())
            if line not in lines_by_set[set_index]:
                lines_by_set[set_index].add(line)
                total_lines += 1
    conflict_free = all(
        len(lines) <= config.static_cache.associativity
        for lines in lines_by_set.values())
    if conflict_free:
        return StaticCacheAnalysis(
            persistent=True, one_off_cycles=total_lines * miss,
            per_read_cost=0, per_write_cost=write_cost,
            one_off_transfers=total_lines)
    return StaticCacheAnalysis(persistent=False, one_off_cycles=0,
                               per_read_cost=miss, per_write_cost=write_cost)


# ---------------------------------------------------------------------------
# Object/heap cache
# ---------------------------------------------------------------------------


@dataclass
class ObjectCacheAnalysis:
    """Classification of object/heap-cache accesses."""

    per_read_cost: int
    per_write_cost: int


def analyse_object_cache(config: PatmosConfig, mode: str = "always_miss"
                         ) -> ObjectCacheAnalysis:
    """Analyse the highly associative heap cache (conservative by default)."""
    if mode == "ideal":
        return ObjectCacheAnalysis(per_read_cost=0, per_write_cost=0)
    if mode != "always_miss":
        raise WcetError(f"unknown object-cache analysis mode {mode!r}")
    miss = config.memory.transfer_cycles(config.data_cache.line_bytes // 4)
    write_cost = config.memory.transfer_cycles(1)
    return ObjectCacheAnalysis(per_read_cost=miss, per_write_cost=write_cost)


# ---------------------------------------------------------------------------
# Stack cache
# ---------------------------------------------------------------------------


@dataclass
class StackCacheAnalysis:
    """Worst-case spill/fill words per function."""

    #: Worst-case occupancy (in words) when each function is entered.
    occupancy_in: dict[str, int] = field(default_factory=dict)
    #: Worst-case spill words at the function's sres.
    spill_words: dict[str, int] = field(default_factory=dict)
    #: Worst-case fill words at a sens after calling a given callee,
    #: keyed by (caller, callee).
    fill_words: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Worst-case displacement (words) caused by calling a function.
    displacement: dict[str, int] = field(default_factory=dict)


def analyse_stack_cache(program: Program, config: PatmosConfig,
                        frame_words: dict[str, int],
                        mode: str = "refined") -> StackCacheAnalysis:
    """Bound spill and fill traffic of the stack cache.

    ``frame_words`` maps each function to the number of words its ``sres``
    reserves.  ``mode`` is ``"refined"`` (occupancy/displacement analysis over
    the call graph) or ``"naive"`` (every sres spills fully, every sens fills
    fully).
    """
    cache_words = config.stack_cache.size_bytes // 4
    call_graph = CallGraph.build(program)
    if call_graph.is_recursive():
        raise WcetError("stack-cache analysis requires a non-recursive call graph")
    analysis = StackCacheAnalysis()

    if mode == "naive":
        for name in program.functions:
            frame = frame_words.get(name, 0)
            analysis.occupancy_in[name] = cache_words
            analysis.spill_words[name] = frame
            analysis.displacement[name] = cache_words
        for caller in program.functions:
            for callee in call_graph.callees(caller):
                analysis.fill_words[(caller, callee)] = frame_words.get(caller, 0)
        return analysis
    if mode != "refined":
        raise WcetError(f"unknown stack-cache analysis mode {mode!r}")

    entry = program.entry

    # Worst-case occupancy at function entry: longest frame sum over any call
    # path from the entry, capped at the cache size.
    occupancy: dict[str, int] = {entry: 0}
    for name in _topological_call_order(call_graph, entry):
        base = occupancy.get(name, 0)
        frame = frame_words.get(name, 0)
        for callee in call_graph.callees(name):
            candidate = min(cache_words, base + frame)
            occupancy[callee] = max(occupancy.get(callee, 0), candidate)
    analysis.occupancy_in = occupancy

    # Worst-case displacement of a call: how many words of the caller's cached
    # data a callee (and its own callees) can push out of the cache.
    displacement: dict[str, int] = {}

    def compute_displacement(name: str) -> int:
        if name in displacement:
            return displacement[name]
        frame = frame_words.get(name, 0)
        nested = max((compute_displacement(callee)
                      for callee in call_graph.callees(name)), default=0)
        value = min(cache_words, frame + nested)
        displacement[name] = value
        return value

    for name in program.functions:
        compute_displacement(name)
    analysis.displacement = displacement

    for name in program.functions:
        frame = frame_words.get(name, 0)
        occ = occupancy.get(name, 0)
        analysis.spill_words[name] = max(0, occ + frame - cache_words)
        for callee in call_graph.callees(name):
            analysis.fill_words[(name, callee)] = min(
                frame, displacement.get(callee, 0))
    return analysis


def _topological_call_order(call_graph: CallGraph, entry: str) -> list[str]:
    """Callers-before-callees order restricted to functions reachable from entry."""
    order = call_graph.topological_order(root=entry)
    order.reverse()  # topological_order is callees-first; we need callers-first
    return order
