"""Static WCET analysis for Patmos programs."""

from .analyzer import (
    FunctionWcet,
    WcetAnalyzer,
    WcetOptions,
    WcetResult,
    analyze_wcet,
)
from .block_timing import BlockSummary, summarise_block, summarise_function
from .cache_analysis import (
    ConventionalICacheAnalysis,
    MethodCacheAnalysis,
    ObjectCacheAnalysis,
    StackCacheAnalysis,
    StaticCacheAnalysis,
    analyse_conventional_icache,
    analyse_method_cache,
    analyse_object_cache,
    analyse_stack_cache,
    analyse_static_cache,
)
from .ipet import IpetResult, longest_path_dag, solve_ipet

__all__ = [
    "BlockSummary",
    "ConventionalICacheAnalysis",
    "FunctionWcet",
    "IpetResult",
    "MethodCacheAnalysis",
    "ObjectCacheAnalysis",
    "StackCacheAnalysis",
    "StaticCacheAnalysis",
    "WcetAnalyzer",
    "WcetOptions",
    "WcetResult",
    "analyse_conventional_icache",
    "analyse_method_cache",
    "analyse_object_cache",
    "analyse_stack_cache",
    "analyse_static_cache",
    "analyze_wcet",
    "longest_path_dag",
    "solve_ipet",
    "summarise_block",
    "summarise_function",
]
