"""Per-basic-block timing and event extraction for the WCET analysis.

Because the Patmos pipeline never stalls for hazards and all delays are
exposed in the schedule, the *local* execution time of a basic block is simply
its number of issued bundles — one of the central analysability claims of the
paper (Sections 1 and 3).  Everything else that can cost time is an explicit,
attributable event: method-cache accesses at calls/returns/brcf, typed data
accesses, stack-control instructions and split-load waits.  This module
extracts those events per block so the IPET formulation can price them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WcetError
from ..isa.instruction import Instruction
from ..isa.opcodes import ControlKind, Format, MemType, Opcode
from ..program.basic_block import BasicBlock
from ..program.function import Function


@dataclass
class BlockSummary:
    """Timing-relevant events of one scheduled basic block."""

    function: str
    label: str
    #: Local pipeline cycles: one per issued bundle.
    bundles: int = 0
    instructions: int = 0
    nops: int = 0
    #: Callee names of direct calls (in program order).
    calls: list[str] = field(default_factory=list)
    #: Number of indirect calls (callr) — callee unknown statically.
    indirect_calls: int = 0
    returns: int = 0
    #: Targets of branch-with-cache-fill transfers (sub-function names/labels).
    brcf_targets: list[str] = field(default_factory=list)
    #: Typed data reads per memory type.
    reads: dict[MemType, int] = field(default_factory=dict)
    #: Typed data writes per memory type.
    writes: dict[MemType, int] = field(default_factory=dict)
    #: Words reserved/ensured/freed by stack-control instructions.
    sres_words: list[int] = field(default_factory=list)
    sens_words: list[int] = field(default_factory=list)
    sfree_words: list[int] = field(default_factory=list)
    #: Number of split-load waits (wmem instructions).
    wmem_count: int = 0

    def read_count(self, mem_type: MemType) -> int:
        return self.reads.get(mem_type, 0)

    def write_count(self, mem_type: MemType) -> int:
        return self.writes.get(mem_type, 0)


def _record_instruction(summary: BlockSummary, instr: Instruction) -> None:
    info = instr.info
    summary.instructions += 1
    if instr.is_nop:
        summary.nops += 1
        return
    if info.is_load:
        summary.reads[info.mem_type] = summary.reads.get(info.mem_type, 0) + 1
    elif info.is_store:
        summary.writes[info.mem_type] = summary.writes.get(info.mem_type, 0) + 1
    elif info.fmt is Format.WAIT:
        summary.wmem_count += 1
    elif instr.opcode is Opcode.SRES:
        summary.sres_words.append(instr.imm)
    elif instr.opcode is Opcode.SENS:
        summary.sens_words.append(instr.imm)
    elif instr.opcode is Opcode.SFREE:
        summary.sfree_words.append(instr.imm)
    elif instr.opcode is Opcode.CALL:
        if not isinstance(instr.target, str):
            raise WcetError("WCET analysis requires symbolic call targets")
        summary.calls.append(instr.target)
    elif instr.opcode is Opcode.CALLR:
        summary.indirect_calls += 1
    elif info.control is ControlKind.RETURN:
        summary.returns += 1
    elif instr.opcode is Opcode.BRCF:
        if isinstance(instr.target, str):
            summary.brcf_targets.append(instr.target)


def summarise_block(function: Function, block: BasicBlock) -> BlockSummary:
    """Extract the timing events of one scheduled block."""
    if block.bundles is None:
        raise WcetError(
            f"block {block.label} of {function.name} is not scheduled; "
            "compile the program before WCET analysis")
    summary = BlockSummary(function=function.name, label=block.label,
                           bundles=len(block.bundles))
    for bundle in block.bundles:
        for instr in bundle.instructions():
            _record_instruction(summary, instr)
    return summary


def summarise_function(function: Function) -> dict[str, BlockSummary]:
    """Summaries of all blocks of a function, keyed by block label."""
    return {
        block.label: summarise_block(function, block)
        for block in function.blocks
    }
