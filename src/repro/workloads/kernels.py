"""Kernel workloads written against the Patmos builder API.

These kernels play the role of the embedded benchmarks the paper's software
environment targets: small loop kernels (sums, filters, matrix multiply,
sorting, searching, checksums), call-tree and stack-heavy programs for the
method and stack caches, and main-memory streaming kernels for the split-load
experiments.  Every kernel carries a pure-Python reference result so tests can
check functional correctness of any compilation variant.

Register conventions (see DESIGN.md): kernels use ``r1``–``r25`` and
``p1``–``p4``; ``r26``–``r28`` and ``p5``–``p7`` are reserved for the
single-path transformation, ``r29``–``r31`` for prologue/epilogue code.
"""

from __future__ import annotations

import random

from ..program.builder import ProgramBuilder
from ..program.program import DataSpace
from .kernel import Kernel, signed32


def _values(count: int, seed: int, low: int = 0, high: int = 100) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(low, high) for _ in range(count)]


# ---------------------------------------------------------------------------
# Simple loop kernels
# ---------------------------------------------------------------------------


def build_vector_sum(n: int = 32, seed: int = 1) -> Kernel:
    """Sum of an array held in static data (static/constant cache)."""
    values = _values(n, seed)
    b = ProgramBuilder("vector_sum")
    b.data("values", values, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "values")
    f.li("r2", n)
    f.li("r3", 0)
    f.label("loop")
    f.emit("lwc", "r4", "r1", 0)
    f.emit("add", "r3", "r3", "r4")
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p1", "r2", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r3")
    f.halt()
    return Kernel(name="vector_sum", program=b.build(),
                  expected_output=[signed32(sum(values))],
                  description=f"sum of {n} words from the static/constant cache",
                  attrs={"n": n})


def build_dot_product(n: int = 16, seed: int = 2) -> Kernel:
    """Dot product of two vectors, exercising the multiplier delay slots."""
    a = _values(n, seed, 0, 50)
    c = _values(n, seed + 100, 0, 50)
    b = ProgramBuilder("dot_product")
    b.data("vec_a", a, space=DataSpace.CONST)
    b.data("vec_b", c, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "vec_a")
    f.li("r2", "vec_b")
    f.li("r3", n)
    f.li("r4", 0)
    f.label("loop")
    f.emit("lwc", "r5", "r1", 0)
    f.emit("lwc", "r6", "r2", 0)
    f.emit("mul", "r5", "r6")
    f.emit("mfs", "r7", "sl")
    f.emit("add", "r4", "r4", "r7")
    f.emit("addi", "r1", "r1", 4)
    f.emit("addi", "r2", "r2", 4)
    f.emit("subi", "r3", "r3", 1)
    f.emit("cmpineq", "p1", "r3", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r4")
    f.halt()
    expected = sum(x * y for x, y in zip(a, c))
    return Kernel(name="dot_product", program=b.build(),
                  expected_output=[signed32(expected)],
                  description=f"dot product of two {n}-element vectors",
                  attrs={"n": n})


def build_checksum(n: int = 48, seed: int = 5) -> Kernel:
    """Rotate-and-xor checksum over a data block (ALU-heavy, branch-light)."""
    values = _values(n, seed, 0, 2**31 - 1)
    b = ProgramBuilder("checksum")
    b.data("block", values, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "block")
    f.li("r2", n)
    f.li("r3", 0)
    f.label("loop")
    f.emit("lwc", "r4", "r1", 0)
    f.emit("shli", "r5", "r3", 1)
    f.emit("shri", "r6", "r3", 31)
    f.emit("or", "r3", "r5", "r6")
    f.emit("xor", "r3", "r3", "r4")
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p1", "r2", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r3")
    f.halt()

    acc = 0
    for value in values:
        acc = (((acc << 1) & 0xFFFF_FFFF) | (acc >> 31)) ^ value
        acc &= 0xFFFF_FFFF
    return Kernel(name="checksum", program=b.build(),
                  expected_output=[signed32(acc)],
                  description=f"rotate/xor checksum over {n} words",
                  attrs={"n": n})


def build_fir_filter(taps: int = 4, n: int = 24, seed: int = 3) -> Kernel:
    """FIR filter with nested loops; writes results to static data."""
    signal = _values(n, seed, 0, 40)
    coeffs = _values(taps, seed + 7, 0, 10)
    outputs = n - taps + 1
    b = ProgramBuilder("fir_filter")
    b.data("signal", signal, space=DataSpace.CONST)
    b.data("coeffs", coeffs, space=DataSpace.CONST)
    b.zeros("filtered", outputs, space=DataSpace.DATA)
    f = b.function("main")
    f.li("r1", "signal")
    f.li("r2", "coeffs")
    f.li("r3", "filtered")
    f.li("r4", outputs)
    f.li("r12", 0)
    f.label("outer")
    f.li("r5", taps)
    f.li("r6", 0)
    f.mov("r7", "r1")
    f.mov("r8", "r2")
    f.label("inner")
    f.emit("lwc", "r9", "r7", 0)
    f.emit("lwc", "r10", "r8", 0)
    f.emit("mul", "r9", "r10")
    f.emit("mfs", "r11", "sl")
    f.emit("add", "r6", "r6", "r11")
    f.emit("addi", "r7", "r7", 4)
    f.emit("addi", "r8", "r8", 4)
    f.emit("subi", "r5", "r5", 1)
    f.emit("cmpineq", "p1", "r5", 0)
    f.br("inner", pred="p1")
    f.loop_bound("inner", taps)
    f.emit("swc", "r3", 0, "r6")
    f.emit("add", "r12", "r12", "r6")
    f.emit("addi", "r3", "r3", 4)
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r4", "r4", 1)
    f.emit("cmpineq", "p2", "r4", 0)
    f.br("outer", pred="p2")
    f.loop_bound("outer", outputs)
    f.out("r12")
    f.halt()

    checksum = 0
    for i in range(outputs):
        checksum += sum(signal[i + j] * coeffs[j] for j in range(taps))
    return Kernel(name="fir_filter", program=b.build(),
                  expected_output=[signed32(checksum)],
                  description=f"{taps}-tap FIR filter over {n} samples",
                  attrs={"taps": taps, "n": n})


def build_matmul(n: int = 4, seed: int = 4) -> Kernel:
    """Dense n x n integer matrix multiplication (three nested loops)."""
    a = _values(n * n, seed, 0, 20)
    c = _values(n * n, seed + 13, 0, 20)
    stride = 4 * n
    b = ProgramBuilder("matmul")
    b.data("mat_a", a, space=DataSpace.CONST)
    b.data("mat_b", c, space=DataSpace.CONST)
    b.zeros("mat_c", n * n, space=DataSpace.DATA)
    f = b.function("main")
    f.li("r1", "mat_a")
    f.li("r2", "mat_b")
    f.li("r3", "mat_c")
    f.li("r4", n)
    f.li("r13", 0)
    f.label("i_loop")
    f.li("r5", n)
    f.mov("r7", "r2")
    f.label("j_loop")
    f.li("r8", n)
    f.mov("r9", "r1")
    f.mov("r10", "r7")
    f.li("r6", 0)
    f.label("k_loop")
    f.emit("lwc", "r11", "r9", 0)
    f.emit("lwc", "r12", "r10", 0)
    f.emit("mul", "r11", "r12")
    f.emit("mfs", "r14", "sl")
    f.emit("add", "r6", "r6", "r14")
    f.emit("addi", "r9", "r9", 4)
    f.emit("addi", "r10", "r10", stride)
    f.emit("subi", "r8", "r8", 1)
    f.emit("cmpineq", "p1", "r8", 0)
    f.br("k_loop", pred="p1")
    f.loop_bound("k_loop", n)
    f.emit("swc", "r3", 0, "r6")
    f.emit("add", "r13", "r13", "r6")
    f.emit("addi", "r3", "r3", 4)
    f.emit("addi", "r7", "r7", 4)
    f.emit("subi", "r5", "r5", 1)
    f.emit("cmpineq", "p2", "r5", 0)
    f.br("j_loop", pred="p2")
    f.loop_bound("j_loop", n)
    f.emit("addi", "r1", "r1", stride)
    f.emit("subi", "r4", "r4", 1)
    f.emit("cmpineq", "p3", "r4", 0)
    f.br("i_loop", pred="p3")
    f.loop_bound("i_loop", n)
    f.out("r13")
    f.halt()

    checksum = 0
    for i in range(n):
        for j in range(n):
            checksum += sum(a[i * n + k] * c[k * n + j] for k in range(n))
    return Kernel(name="matmul", program=b.build(),
                  expected_output=[signed32(checksum)],
                  description=f"{n}x{n} integer matrix multiplication",
                  attrs={"n": n})


# ---------------------------------------------------------------------------
# Branchy kernels (if-conversion / single-path)
# ---------------------------------------------------------------------------


def build_saturate(n: int = 32, low: int = 20, high: int = 80,
                   seed: int = 6) -> Kernel:
    """Clip every element into ``[low, high]`` and sum — two branches per element."""
    values = _values(n, seed, 0, 100)
    b = ProgramBuilder("saturate")
    b.data("samples", values, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "samples")
    f.li("r2", n)
    f.li("r6", 0)
    f.li("r9", low)
    f.li("r10", high)
    f.label("loop")
    f.emit("lwc", "r5", "r1", 0)
    f.emit("cmplt", "p1", "r5", "r9")
    f.br("check_high", pred="!p1")
    f.mov("r5", "r9")
    f.br("accumulate")
    f.label("check_high")
    f.emit("cmplt", "p2", "r10", "r5")
    f.br("accumulate", pred="!p2")
    f.mov("r5", "r10")
    f.label("accumulate")
    f.emit("add", "r6", "r6", "r5")
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p3", "r2", 0)
    f.br("loop", pred="p3")
    f.loop_bound("loop", n)
    f.out("r6")
    f.halt()

    expected = sum(min(max(v, low), high) for v in values)
    return Kernel(name="saturate", program=b.build(),
                  expected_output=[signed32(expected)],
                  description=f"clip {n} samples into [{low}, {high}] and sum",
                  attrs={"n": n, "low": low, "high": high})


def build_linear_search(n: int = 32, key_index: int = 17, seed: int = 7) -> Kernel:
    """Find the first occurrence of a key — iteration count is input-dependent.

    The data-dependent exit makes the execution time vary with the key
    position; the single-path transformation (experiment E7) removes that
    variation.  The haystack lives in the compiler-managed scratchpad so the
    only source of timing variation is the control flow itself, as in the
    single-path programming papers the paper builds on.
    """
    values = _values(n, seed, 0, 1000)
    values = [v * 2 for v in values]  # even values
    key_index = key_index % n
    key = values[key_index]
    # Ensure the key appears exactly once.
    for i, value in enumerate(values):
        if i != key_index and value == key:
            values[i] = value + 1

    b = ProgramBuilder("linear_search")
    b.data("haystack", values, space=DataSpace.LOCAL)
    f = b.function("main")
    f.li("r1", "haystack")
    f.li("r2", n)
    f.li("r3", key)
    f.li("r4", 0)
    f.li("r9", 0)
    f.label("loop")
    f.emit("lwl", "r5", "r1", 0)
    f.emit("addi", "r1", "r1", 4)
    f.emit("addi", "r4", "r4", 1)
    f.emit("cmpeq", "p2", "r5", "r3")
    f.mov("r9", "r4", pred="p2")
    f.emit("cmpneq", "p3", "r5", "r3")
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p4", "r2", 0)
    f.emit("pand", "p1", "p3", "p4")
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r9")
    f.halt()

    expected = key_index + 1
    return Kernel(name="linear_search", program=b.build(),
                  expected_output=[expected],
                  description=f"first-match linear search over {n} words",
                  attrs={"n": n, "key_index": key_index})


def build_bubble_sort(n: int = 8, seed: int = 8) -> Kernel:
    """Bubble sort on a static array; outputs the sorted elements."""
    values = _values(n, seed, 0, 500)
    b = ProgramBuilder("bubble_sort")
    b.data("array", values, space=DataSpace.DATA)
    f = b.function("main")
    f.li("r1", "array")
    f.li("r3", n - 1)
    f.label("outer")
    f.mov("r5", "r1")
    f.li("r6", n - 1)
    f.label("inner")
    f.emit("lwc", "r7", "r5", 0)
    f.emit("lwc", "r8", "r5", 4)
    f.emit("cmplt", "p1", "r8", "r7")
    f.br("no_swap", pred="!p1")
    f.emit("swc", "r5", 0, "r8")
    f.emit("swc", "r5", 4, "r7")
    f.label("no_swap")
    f.emit("addi", "r5", "r5", 4)
    f.emit("subi", "r6", "r6", 1)
    f.emit("cmpineq", "p2", "r6", 0)
    f.br("inner", pred="p2")
    f.loop_bound("inner", n - 1)
    f.emit("subi", "r3", "r3", 1)
    f.emit("cmpineq", "p3", "r3", 0)
    f.br("outer", pred="p3")
    f.loop_bound("outer", n - 1)
    # Emit the sorted array.
    f.mov("r5", "r1")
    f.li("r6", n)
    f.label("emit")
    f.emit("lwc", "r7", "r5", 0)
    f.out("r7")
    f.emit("addi", "r5", "r5", 4)
    f.emit("subi", "r6", "r6", 1)
    f.emit("cmpineq", "p4", "r6", 0)
    f.br("emit", pred="p4")
    f.loop_bound("emit", n)
    f.halt()

    return Kernel(name="bubble_sort", program=b.build(),
                  expected_output=sorted(values),
                  description=f"bubble sort of {n} words with predicable swaps",
                  attrs={"n": n})


# ---------------------------------------------------------------------------
# Method-cache workloads
# ---------------------------------------------------------------------------


def build_call_tree(num_functions: int = 6, iterations: int = 8,
                    pad_instructions: int = 24) -> Kernel:
    """A loop calling several leaf functions — the method-cache workload.

    ``pad_instructions`` controls the size of each leaf function so the whole
    set either fits into the method cache (persistence) or thrashes.
    """
    b = ProgramBuilder("call_tree")
    f = b.function("main")
    f.li("r20", 0)
    f.li("r1", iterations)
    f.label("loop")
    for index in range(num_functions):
        f.call(f"work{index}")
    f.emit("subi", "r1", "r1", 1)
    f.emit("cmpineq", "p1", "r1", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", iterations)
    f.out("r20")
    f.halt()

    for index in range(num_functions):
        g = b.function(f"work{index}")
        g.emit("addi", "r20", "r20", index + 1)
        for pad in range(pad_instructions):
            g.emit("addi", "r21", "r21", 1)
        g.ret()

    expected = iterations * sum(range(1, num_functions + 1))
    return Kernel(name="call_tree", program=b.build(),
                  expected_output=[expected],
                  description=(f"{iterations} iterations calling "
                               f"{num_functions} leaf functions"),
                  attrs={"num_functions": num_functions,
                         "iterations": iterations,
                         "pad_instructions": pad_instructions})


def build_large_function(blocks: int = 48, instructions_per_block: int = 24,
                         iterations: int = 4, early_exit: bool = False) -> Kernel:
    """A function larger than the method cache, called repeatedly (E11).

    With ``early_exit=True`` the function returns right after its first block
    at run time (the remaining code is still statically reachable), which is
    the case where splitting for the method cache pays off most: only the
    entered region has to be loaded.
    """
    b = ProgramBuilder("large_function")
    f = b.function("main")
    f.li("r20", 0)
    f.li("r19", 1 if early_exit else 0)
    f.li("r1", iterations)
    f.label("loop")
    f.call("big")
    f.emit("subi", "r1", "r1", 1)
    f.emit("cmpineq", "p1", "r1", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", iterations)
    f.out("r20")
    f.halt()

    g = b.function("big")
    g.emit("cmpineq", "p4", "r19", 0)
    g.ret(pred="p4")
    for block in range(blocks):
        g.label(f"part{block}")
        for _ in range(instructions_per_block):
            g.emit("addi", "r20", "r20", 1)
    g.ret()

    expected = 0 if early_exit else iterations * blocks * instructions_per_block
    return Kernel(name="large_function", program=b.build(),
                  expected_output=[expected],
                  description=(f"{blocks * instructions_per_block}-instruction "
                               "function called in a loop"),
                  attrs={"blocks": blocks,
                         "instructions_per_block": instructions_per_block,
                         "iterations": iterations,
                         "early_exit": early_exit})


# ---------------------------------------------------------------------------
# Stack-cache workload
# ---------------------------------------------------------------------------


def build_stack_chain(depth: int = 8, frame_words: int = 40) -> Kernel:
    """A call chain with per-function frames that overflow the stack cache.

    Every function writes its frame slots, calls the next function in the
    chain, then reads the slots back (verifying spill/fill correctness) and
    accumulates them.
    """
    b = ProgramBuilder("stack_chain")
    f = b.function("main")
    f.li("r20", 0)
    f.call("level0")
    f.out("r20")
    f.halt()

    expected = 0
    for level in range(depth):
        g = b.function(f"level{level}")
        g.frame(frame_words)
        for slot in range(frame_words):
            value = level * 100 + slot
            expected += value
            g.li("r21", value)
            g.emit("sws", "r0", 4 * slot, "r21")
        if level + 1 < depth:
            g.call(f"level{level + 1}")
        for slot in range(frame_words):
            g.emit("lws", "r22", "r0", 4 * slot)
            g.emit("add", "r20", "r20", "r22")
        g.ret()

    return Kernel(name="stack_chain", program=b.build(),
                  expected_output=[signed32(expected)],
                  description=(f"call chain of depth {depth} with "
                               f"{frame_words}-word frames"),
                  attrs={"depth": depth, "frame_words": frame_words})


# ---------------------------------------------------------------------------
# Main-memory (split-load) workloads
# ---------------------------------------------------------------------------


def build_stream_checksum(n: int = 32, seed: int = 9) -> Kernel:
    """Checksum over uncached main memory using split loads (E6).

    Each iteration starts the load of the next element and processes the
    previous one while the transfer is in flight, so the scheduler can hide
    the main-memory latency behind the checksum arithmetic.
    """
    values = _values(n, seed, 0, 2**30)
    b = ProgramBuilder("stream_checksum")
    b.data("stream", values, space=DataSpace.HEAP)
    f = b.function("main")
    f.li("r1", "stream")
    f.li("r2", n)
    f.li("r3", 0)   # checksum
    f.li("r5", 0)   # previous element
    f.label("loop")
    f.emit("lwm", "r4", "r1", 0)
    # Work on the previous element while the load is in flight.
    f.emit("shli", "r6", "r3", 1)
    f.emit("shri", "r7", "r3", 31)
    f.emit("or", "r3", "r6", "r7")
    f.emit("xor", "r3", "r3", "r5")
    f.emit("shli", "r8", "r5", 3)
    f.emit("add", "r3", "r3", "r8")
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p1", "r2", 0)
    f.emit("wmem")
    f.mov("r5", "r4")
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    # Fold in the final element.
    f.emit("shli", "r6", "r3", 1)
    f.emit("shri", "r7", "r3", 31)
    f.emit("or", "r3", "r6", "r7")
    f.emit("xor", "r3", "r3", "r5")
    f.emit("shli", "r8", "r5", 3)
    f.emit("add", "r3", "r3", "r8")
    f.out("r3")
    f.halt()

    def step(acc: int, prev: int) -> int:
        acc = ((acc << 1) & 0xFFFF_FFFF) | (acc >> 31)
        acc ^= prev
        acc = (acc + ((prev << 3) & 0xFFFF_FFFF)) & 0xFFFF_FFFF
        return acc

    acc = 0
    prev = 0
    for value in values:
        acc = step(acc, prev)
        prev = value
    acc = step(acc, prev)
    return Kernel(name="stream_checksum", program=b.build(),
                  expected_output=[signed32(acc)],
                  description=f"split-load checksum over {n} uncached words",
                  attrs={"n": n})


def build_pointer_chase(n: int = 24, seed: int = 10) -> Kernel:
    """Pointer chasing through uncached main memory — latency cannot be hidden."""
    rng = random.Random(seed)
    order = list(range(1, n))
    rng.shuffle(order)
    order.append(0)
    next_index = [0] * n
    current = 0
    visited = []
    for nxt in order:
        next_index[current] = nxt
        visited.append(nxt)
        current = nxt

    b = ProgramBuilder("pointer_chase")
    b.data("nodes", next_index, space=DataSpace.HEAP)
    f = b.function("main")
    f.li("r3", "nodes")
    f.mov("r1", "r3")
    f.li("r2", n)
    f.li("r5", 0)
    f.label("loop")
    f.emit("lwm", "r4", "r1", 0)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p1", "r2", 0)
    f.emit("wmem")
    f.emit("shadd2", "r1", "r4", "r3")
    f.emit("add", "r5", "r5", "r4")
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r5")
    f.halt()

    expected = sum(next_index[i] for i in _chase_order(next_index, n))
    return Kernel(name="pointer_chase", program=b.build(),
                  expected_output=[signed32(expected)],
                  description=f"pointer chase over {n} uncached list nodes",
                  attrs={"n": n})


def _chase_order(next_index: list[int], n: int) -> list[int]:
    order = []
    current = 0
    for _ in range(n):
        order.append(current)
        current = next_index[current]
    return order


# ---------------------------------------------------------------------------
# Scratchpad / heap variants (split data cache experiment)
# ---------------------------------------------------------------------------


def build_mixed_access(n: int = 24, seed: int = 11) -> Kernel:
    """A kernel mixing static, heap, stack and scratchpad accesses (E5).

    Each iteration reads a coefficient from static data, a sample from a
    heap-allocated buffer, keeps a running window in the stack frame and a
    histogram in the scratchpad.
    """
    coeffs = _values(n, seed, 1, 9)
    samples = _values(n, seed + 3, 0, 99)
    b = ProgramBuilder("mixed_access")
    b.data("coeffs", coeffs, space=DataSpace.CONST)
    b.data("samples", samples, space=DataSpace.HEAP)
    b.zeros("histogram", 16, space=DataSpace.LOCAL)
    f = b.function("main")
    f.frame(4)
    f.li("r1", "coeffs")
    f.li("r2", "samples")
    f.li("r3", "histogram")
    f.li("r4", n)
    f.li("r5", 0)          # accumulator
    f.li("r21", 0)
    f.emit("sws", "r0", 0, "r21")   # window[0] = 0
    f.label("loop")
    f.emit("lwc", "r6", "r1", 0)          # static coefficient
    f.emit("lwo", "r7", "r2", 0)          # heap sample
    f.emit("mul", "r6", "r7")
    f.emit("mfs", "r8", "sl")
    f.emit("lws", "r9", "r0", 0)          # stack window
    f.emit("add", "r9", "r9", "r8")
    f.emit("sws", "r0", 0, "r9")
    f.emit("andi", "r10", "r7", 60)       # histogram bucket (16 buckets * 4)
    f.emit("add", "r10", "r10", "r3")
    f.emit("lwl", "r11", "r10", 0)        # scratchpad histogram
    f.emit("addi", "r11", "r11", 1)
    f.emit("swl", "r10", 0, "r11")
    f.emit("add", "r5", "r5", "r8")
    f.emit("addi", "r1", "r1", 4)
    f.emit("addi", "r2", "r2", 4)
    f.emit("subi", "r4", "r4", 1)
    f.emit("cmpineq", "p1", "r4", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.emit("lws", "r9", "r0", 0)
    f.out("r5")
    f.out("r9")
    f.halt()

    window = 0
    acc = 0
    for coeff, sample in zip(coeffs, samples):
        product = coeff * sample
        window += product
        acc += product
    return Kernel(name="mixed_access", program=b.build(),
                  expected_output=[signed32(acc), signed32(window)],
                  description=(f"{n} iterations touching static, heap, stack "
                               "and scratchpad data"),
                  attrs={"n": n})


# ---------------------------------------------------------------------------
# Short-running task bodies for the RTOS scenarios (repro.rtos)
# ---------------------------------------------------------------------------
#
# Periodic real-time tasks execute for a few hundred cycles per activation,
# not the tens of thousands the benchmark kernels above run for.  These
# variants keep the iteration counts small and bounded so a job completes
# well inside a realistic period, which is what the response-time analysis
# (and the preemption machinery it is checked against) needs to exercise
# interesting interleavings.


def build_control_update(n: int = 6, seed: int = 21) -> Kernel:
    """One step of a PI controller over a block of measurements.

    Accumulates the error against a fixed setpoint and derives the command
    as ``Kp*err + (integral >> 4)`` — a classic periodic control-task body.
    """
    setpoint = 50
    kp = 3
    measurements = _values(n, seed, 0, 100)
    b = ProgramBuilder("control_update")
    b.data("measurements", measurements, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "measurements")
    f.li("r2", n)
    f.li("r3", setpoint)
    f.li("r4", 0)          # integral term
    f.li("r5", 0)          # last command
    f.label("loop")
    f.emit("lwc", "r6", "r1", 0)
    f.emit("sub", "r7", "r3", "r6")       # error = setpoint - measurement
    f.emit("add", "r4", "r4", "r7")       # integral += error
    f.li("r8", kp)
    f.emit("mul", "r7", "r8")
    f.emit("mfs", "r9", "sl")             # proportional = Kp * error
    f.emit("shri", "r10", "r4", 4)
    f.emit("add", "r5", "r9", "r10")      # command = prop + (integral >> 4)
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p1", "r2", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r5")
    f.out("r4")
    f.halt()

    # Mirror the 32-bit register arithmetic: ``shri`` is a *logical* shift
    # of the two's-complement pattern, and ``mul``/``mfs sl`` yields the low
    # 32 bits of the product.
    integral = 0
    command = 0
    for m in measurements:
        error = setpoint - m
        integral = (integral + error) & 0xFFFF_FFFF
        prop = (kp * error) & 0xFFFF_FFFF
        command = (prop + (integral >> 4)) & 0xFFFF_FFFF
    return Kernel(name="control_update", program=b.build(),
                  expected_output=[signed32(command), signed32(integral)],
                  description=f"PI control step over {n} measurements",
                  attrs={"n": n})


def build_sensor_filter(n: int = 8, seed: int = 22) -> Kernel:
    """Exponential moving average over a short burst of sensor samples.

    ``ema += (sample - ema) >> 2`` per sample — the archetypal sporadic
    IO-interrupt handler body (read, filter, store).
    """
    samples = _values(n, seed, 0, 1023)
    b = ProgramBuilder("sensor_filter")
    b.data("samples", samples, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "samples")
    f.li("r2", n)
    f.li("r3", 0)          # ema
    f.label("loop")
    f.emit("lwc", "r4", "r1", 0)
    f.emit("sub", "r5", "r4", "r3")
    f.emit("shri", "r5", "r5", 2)
    f.emit("add", "r3", "r3", "r5")
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p1", "r2", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r3")
    f.halt()

    ema = 0
    for s in samples:
        ema += ((s - ema) & 0xFFFF_FFFF) >> 2
        ema &= 0xFFFF_FFFF
    return Kernel(name="sensor_filter", program=b.build(),
                  expected_output=[signed32(ema)],
                  description=f"EMA filter over {n} sensor samples",
                  attrs={"n": n})


def build_crc_step(n: int = 8, seed: int = 23) -> Kernel:
    """Rotate/xor/add message digest over a short frame (checksum variant).

    A communications task body: digest one frame per activation.  Differs
    from :func:`build_checksum` in the mixing step (adds the rotated value
    instead of only xoring) and in running over far fewer words.
    """
    frame = _values(n, seed, 0, 2**31 - 1)
    b = ProgramBuilder("crc_step")
    b.data("frame", frame, space=DataSpace.CONST)
    f = b.function("main")
    f.li("r1", "frame")
    f.li("r2", n)
    f.li("r3", 0)
    f.label("loop")
    f.emit("lwc", "r4", "r1", 0)
    f.emit("shli", "r5", "r3", 5)
    f.emit("shri", "r6", "r3", 27)
    f.emit("or", "r3", "r5", "r6")        # rotate left by 5
    f.emit("xor", "r3", "r3", "r4")
    f.emit("add", "r3", "r3", "r4")
    f.emit("addi", "r1", "r1", 4)
    f.emit("subi", "r2", "r2", 1)
    f.emit("cmpineq", "p1", "r2", 0)
    f.br("loop", pred="p1")
    f.loop_bound("loop", n)
    f.out("r3")
    f.halt()

    acc = 0
    for value in frame:
        acc = (((acc << 5) & 0xFFFF_FFFF) | (acc >> 27)) ^ value
        acc = (acc + value) & 0xFFFF_FFFF
    return Kernel(name="crc_step", program=b.build(),
                  expected_output=[signed32(acc)],
                  description=f"rotate/xor/add digest over a {n}-word frame",
                  attrs={"n": n})


def build_actuator_ramp(steps: int = 10, target: int = 37,
                        rate: int = 5) -> Kernel:
    """Slew an actuator position toward a target with rate limiting.

    Branchy task body: per step move by at most ``rate`` toward ``target``,
    clamping the final partial step — preemption points therefore fall into
    data-dependent control flow.
    """
    b = ProgramBuilder("actuator_ramp")
    f = b.function("main")
    f.li("r1", steps)
    f.li("r2", 0)          # position
    f.li("r3", target)
    f.li("r4", rate)
    f.label("loop")
    f.emit("sub", "r5", "r3", "r2")       # remaining = target - position
    f.emit("cmplt", "p1", "r4", "r5")     # rate < remaining ?
    f.br("full_step", pred="p1")
    f.emit("add", "r2", "r2", "r5")       # partial (or zero) final step
    f.br("next")
    f.label("full_step")
    f.emit("add", "r2", "r2", "r4")
    f.label("next")
    f.emit("subi", "r1", "r1", 1)
    f.emit("cmpineq", "p2", "r1", 0)
    f.br("loop", pred="p2")
    f.loop_bound("loop", steps)
    f.out("r2")
    f.halt()

    position = 0
    for _ in range(steps):
        remaining = target - position
        position += rate if rate < remaining else remaining
    return Kernel(name="actuator_ramp", program=b.build(),
                  expected_output=[signed32(position)],
                  description=(f"rate-limited ramp to {target} over "
                               f"{steps} steps"),
                  attrs={"steps": steps, "target": target, "rate": rate})
