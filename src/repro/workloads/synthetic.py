"""Synthetic program generation for property-based testing.

The generator produces random straight-line ALU programs together with a
pure-Python reference interpretation.  They are used by the property tests to
check that (a) the functional and cycle-accurate simulators agree, (b) the
scheduler's output respects all exposed delays (strict mode), and (c) binary
encode/decode round-trips preserve behaviour.
"""

from __future__ import annotations

import random

from ..program.builder import ProgramBuilder
from ..sim.state import to_signed, to_unsigned
from .kernel import Kernel

#: Registers the generator may use (keeps clear of compiler-reserved ones).
_GEN_REGS = list(range(1, 16))

_BINARY_OPS = ("add", "sub", "and", "or", "xor", "nor", "shadd", "shadd2")
_IMM_OPS = ("addi", "subi", "andi", "ori", "xori", "shli", "shri", "srai")


def random_alu_kernel(seed: int, length: int = 40,
                      outputs: int = 4) -> Kernel:
    """Generate a random straight-line ALU kernel with a Python reference."""
    rng = random.Random(seed)
    regs = {index: 0 for index in _GEN_REGS}

    b = ProgramBuilder(f"synthetic_{seed}")
    f = b.function("main")

    # Initialise a few registers with known constants.
    for index in _GEN_REGS[:6]:
        value = rng.randint(-(1 << 14), (1 << 14))
        f.li(f"r{index}", value)
        regs[index] = to_unsigned(value)

    def model_binary(op: str, a: int, c: int) -> int:
        if op == "add":
            return to_unsigned(a + c)
        if op == "sub":
            return to_unsigned(a - c)
        if op == "and":
            return a & c
        if op == "or":
            return a | c
        if op == "xor":
            return a ^ c
        if op == "nor":
            return to_unsigned(~(a | c))
        if op == "shadd":
            return to_unsigned((a << 1) + c)
        if op == "shadd2":
            return to_unsigned((a << 2) + c)
        raise AssertionError(op)

    def model_imm(op: str, a: int, imm: int) -> int:
        if op == "addi":
            return to_unsigned(a + imm)
        if op == "subi":
            return to_unsigned(a - imm)
        if op == "andi":
            return a & to_unsigned(imm)
        if op == "ori":
            return a | to_unsigned(imm)
        if op == "xori":
            return a ^ to_unsigned(imm)
        if op == "shli":
            return to_unsigned(a << (imm & 31))
        if op == "shri":
            return a >> (imm & 31)
        if op == "srai":
            return to_unsigned(to_signed(a) >> (imm & 31))
        raise AssertionError(op)

    for _ in range(length):
        dst = rng.choice(_GEN_REGS)
        if rng.random() < 0.5:
            op = rng.choice(_BINARY_OPS)
            src1 = rng.choice(_GEN_REGS)
            src2 = rng.choice(_GEN_REGS)
            f.emit(op, f"r{dst}", f"r{src1}", f"r{src2}")
            regs[dst] = model_binary(op, regs[src1], regs[src2])
        else:
            op = rng.choice(_IMM_OPS)
            src1 = rng.choice(_GEN_REGS)
            if op in ("shli", "shri", "srai"):
                imm = rng.randint(0, 31)
            else:
                imm = rng.randint(-2000, 2000)
            f.emit(op, f"r{dst}", f"r{src1}", imm)
            regs[dst] = model_imm(op, regs[src1], imm)

    observed = rng.sample(_GEN_REGS, outputs)
    expected = []
    for index in observed:
        f.out(f"r{index}")
        expected.append(to_signed(regs[index]))
    f.halt()

    return Kernel(name=f"synthetic_{seed}", program=b.build(),
                  expected_output=expected,
                  description=f"random straight-line ALU kernel (seed {seed})",
                  attrs={"seed": seed, "length": length})
