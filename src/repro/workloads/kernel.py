"""Kernel container shared by all workloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..program.program import Program
from ..sim.state import to_signed


@dataclass
class Kernel:
    """A workload: an unscheduled program plus its expected debug output.

    ``expected_output`` holds the values the program writes with ``out``
    (already converted to the signed 32-bit interpretation the simulator
    reports), so tests and benchmarks can check functional correctness of any
    compilation variant against a pure-Python reference.
    """

    name: str
    program: Program
    expected_output: list[int]
    description: str = ""
    attrs: dict = field(default_factory=dict)


def signed32(value: int) -> int:
    """Truncate a Python int to the signed 32-bit value ``out`` would report."""
    return to_signed(value & 0xFFFF_FFFF)
