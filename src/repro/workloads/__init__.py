"""Workload kernels for tests, examples and benchmarks."""

from .kernel import Kernel, signed32
from .kernels import (
    build_bubble_sort,
    build_call_tree,
    build_checksum,
    build_dot_product,
    build_fir_filter,
    build_large_function,
    build_linear_search,
    build_matmul,
    build_mixed_access,
    build_pointer_chase,
    build_saturate,
    build_stack_chain,
    build_stream_checksum,
    build_vector_sum,
)
from .suite import (
    BRANCHY_SUITE,
    KERNEL_BUILDERS,
    PERFORMANCE_SUITE,
    SUITES,
    build_all,
    build_kernel,
    resolve_kernels,
)
from .synthetic import random_alu_kernel

__all__ = [
    "BRANCHY_SUITE",
    "KERNEL_BUILDERS",
    "Kernel",
    "PERFORMANCE_SUITE",
    "SUITES",
    "build_all",
    "build_bubble_sort",
    "build_call_tree",
    "build_checksum",
    "build_dot_product",
    "build_fir_filter",
    "build_kernel",
    "build_large_function",
    "build_linear_search",
    "build_matmul",
    "build_mixed_access",
    "build_pointer_chase",
    "build_saturate",
    "build_stack_chain",
    "build_stream_checksum",
    "build_vector_sum",
    "random_alu_kernel",
    "resolve_kernels",
    "signed32",
]
