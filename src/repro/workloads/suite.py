"""The kernel suite: registry of all workloads with default parameters."""

from __future__ import annotations

from typing import Callable

from .kernel import Kernel
from .kernels import (
    build_actuator_ramp,
    build_bubble_sort,
    build_call_tree,
    build_checksum,
    build_control_update,
    build_crc_step,
    build_dot_product,
    build_fir_filter,
    build_large_function,
    build_linear_search,
    build_matmul,
    build_mixed_access,
    build_pointer_chase,
    build_saturate,
    build_sensor_filter,
    build_stack_chain,
    build_stream_checksum,
    build_vector_sum,
)

#: All kernel builders keyed by kernel name (default parameters).
KERNEL_BUILDERS: dict[str, Callable[[], Kernel]] = {
    "vector_sum": build_vector_sum,
    "dot_product": build_dot_product,
    "checksum": build_checksum,
    "fir_filter": build_fir_filter,
    "matmul": build_matmul,
    "saturate": build_saturate,
    "linear_search": build_linear_search,
    "bubble_sort": build_bubble_sort,
    "call_tree": build_call_tree,
    "large_function": build_large_function,
    "stack_chain": build_stack_chain,
    "stream_checksum": build_stream_checksum,
    "pointer_chase": build_pointer_chase,
    "mixed_access": build_mixed_access,
    "control_update": build_control_update,
    "sensor_filter": build_sensor_filter,
    "crc_step": build_crc_step,
    "actuator_ramp": build_actuator_ramp,
}

#: The subset of kernels used for general performance comparisons (E2):
#: ordinary loop kernels without special memory behaviour.
PERFORMANCE_SUITE = (
    "vector_sum",
    "dot_product",
    "checksum",
    "fir_filter",
    "matmul",
    "saturate",
    "bubble_sort",
)

#: Kernels whose control flow is data-dependent (if-conversion / single-path).
BRANCHY_SUITE = ("saturate", "linear_search", "bubble_sort")

#: Short-running, bounded-iteration kernels sized to serve as the bodies of
#: periodic/sporadic real-time tasks (:mod:`repro.rtos`): a job completes in
#: a few hundred cycles, so realistic periods yield many activations.
RTOS_SUITE = ("control_update", "sensor_filter", "crc_step", "actuator_ramp")

#: Named kernel groups accepted wherever a kernel list is expected (CLI,
#: parameter spaces): a suite name expands to its members in order.
SUITES: dict[str, tuple[str, ...]] = {
    "performance": PERFORMANCE_SUITE,
    "branchy": BRANCHY_SUITE,
    "rtos": RTOS_SUITE,
    "all": tuple(KERNEL_BUILDERS),
}


def resolve_kernels(names) -> tuple[str, ...]:
    """Expand kernel and suite names into a deduplicated tuple of kernels.

    ``names`` is an iterable mixing kernel names and suite names
    (:data:`SUITES`).  Order is preserved, duplicates are dropped, unknown
    names raise :class:`KeyError` listing what is available.
    """
    resolved: list[str] = []
    for name in names:
        if name in SUITES:
            expansion = SUITES[name]
        elif name in KERNEL_BUILDERS:
            expansion = (name,)
        else:
            raise KeyError(
                f"unknown kernel or suite {name!r}; kernels: "
                f"{sorted(KERNEL_BUILDERS)}; suites: {sorted(SUITES)}")
        for kernel in expansion:
            if kernel not in resolved:
                resolved.append(kernel)
    return tuple(resolved)


def build_kernel(name: str, **kwargs) -> Kernel:
    """Build a kernel by name with optional parameter overrides."""
    try:
        builder = KERNEL_BUILDERS[name]
    except KeyError as exc:
        raise KeyError(f"unknown kernel {name!r}; available: "
                       f"{sorted(KERNEL_BUILDERS)}") from exc
    return builder(**kwargs)


def build_all(names: tuple[str, ...] | None = None) -> list[Kernel]:
    """Build every kernel (or the given subset) with default parameters."""
    selected = names if names is not None else tuple(KERNEL_BUILDERS)
    return [build_kernel(name) for name in selected]
