"""Pipeline timing and resource estimation for the Patmos FPGA implementation.

The model estimates the delay of each pipeline stage of Figure 1 (fetch,
decode, execute, memory/write-back) from the device's component-delay library
and combines it with the register-file constraint to obtain the maximum
system clock frequency and the critical path — reproducing the evaluation of
Section 5: with the double-clocked register file on a Virtex-5 the pipeline
exceeds 200 MHz and the ALU in the execute stage is the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DEFAULT_CONFIG, PatmosConfig
from .device import FpgaDevice, VIRTEX5_SPEED2
from .regfile import (
    DoubleClockedBramRegisterFile,
    RegisterFilePorts,
    RegisterFileReport,
)


@dataclass(frozen=True)
class StageTiming:
    """Delay estimate of one pipeline stage."""

    name: str
    delay_ns: float
    description: str


@dataclass
class PipelineTimingReport:
    """Timing summary of one pipeline configuration on one device."""

    device: str
    register_file: RegisterFileReport
    stages: list[StageTiming] = field(default_factory=list)

    @property
    def critical_stage(self) -> StageTiming:
        return max(self.stages, key=lambda stage: stage.delay_ns)

    @property
    def logic_limit_mhz(self) -> float:
        """Clock limit imposed by the slowest pipeline stage."""
        return 1000.0 / self.critical_stage.delay_ns

    @property
    def max_frequency_mhz(self) -> float:
        """System clock limit: slowest stage or register-file constraint."""
        return min(self.logic_limit_mhz, self.register_file.max_system_mhz)

    @property
    def limited_by(self) -> str:
        """Name of the component limiting the clock frequency."""
        if self.register_file.max_system_mhz < self.logic_limit_mhz:
            return f"register file ({self.register_file.name})"
        return f"{self.critical_stage.name} stage ({self.critical_stage.description})"

    def summary(self) -> str:
        lines = [f"device           : {self.device}",
                 f"register file    : {self.register_file.name} "
                 f"({self.register_file.block_rams} BRAMs)"]
        for stage in self.stages:
            lines.append(f"  {stage.name:10s}: {stage.delay_ns:5.2f} ns "
                         f"({stage.description})")
        lines.append(f"f_max (logic)    : {self.logic_limit_mhz:6.1f} MHz")
        lines.append(f"f_max (RF limit) : {self.register_file.max_system_mhz:6.1f} MHz")
        lines.append(f"f_max (system)   : {self.max_frequency_mhz:6.1f} MHz")
        lines.append(f"limited by       : {self.limited_by}")
        return "\n".join(lines)


def estimate_pipeline_timing(device: FpgaDevice = VIRTEX5_SPEED2,
                             register_file: RegisterFileReport | None = None,
                             dual_issue: bool = True) -> PipelineTimingReport:
    """Estimate stage delays and the maximum clock of the Patmos pipeline."""
    ports = RegisterFilePorts.for_issue_width(2 if dual_issue else 1)
    if register_file is None:
        register_file = DoubleClockedBramRegisterFile(device).report(ports)

    overhead = device.register_overhead_ns
    stages = [
        StageTiming(
            name="fetch",
            delay_ns=device.bram_access_ns + device.luts(1) + overhead,
            description="method-cache BRAM read + PC multiplexer",
        ),
        StageTiming(
            name="decode",
            delay_ns=max(device.luts(2), register_file.read_path_ns) + overhead,
            description="instruction decode in parallel with RF read",
        ),
        StageTiming(
            name="execute",
            delay_ns=(device.adder32_ns + device.luts(2 if dual_issue else 1)
                      + overhead),
            description="32-bit ALU + forwarding multiplexers",
        ),
        StageTiming(
            name="memory/wb",
            delay_ns=device.bram_access_ns + device.luts(1) + overhead,
            description="data/stack-cache BRAM access + write-back mux",
        ),
    ]
    return PipelineTimingReport(device=device.name, register_file=register_file,
                                stages=stages)


@dataclass
class ResourceReport:
    """Block-RAM budget of one Patmos core."""

    register_file_brams: int
    method_cache_brams: int
    stack_cache_brams: int
    static_cache_brams: int
    data_cache_brams: int
    scratchpad_brams: int

    @property
    def total_brams(self) -> int:
        return (self.register_file_brams + self.method_cache_brams
                + self.stack_cache_brams + self.static_cache_brams
                + self.data_cache_brams + self.scratchpad_brams)


def estimate_resources(device: FpgaDevice = VIRTEX5_SPEED2,
                       config: PatmosConfig = DEFAULT_CONFIG,
                       register_file: RegisterFileReport | None = None
                       ) -> ResourceReport:
    """Estimate the on-chip memory budget of one core (Figure 1 components)."""
    if register_file is None:
        register_file = DoubleClockedBramRegisterFile(device).report(
            RegisterFilePorts())
    return ResourceReport(
        register_file_brams=register_file.block_rams,
        method_cache_brams=device.brams_for(8 * config.method_cache.size_bytes),
        stack_cache_brams=device.brams_for(8 * config.stack_cache.size_bytes),
        static_cache_brams=device.brams_for(8 * config.static_cache.size_bytes),
        data_cache_brams=device.brams_for(8 * config.data_cache.size_bytes),
        scratchpad_brams=device.brams_for(8 * config.scratchpad.size_bytes),
    )
