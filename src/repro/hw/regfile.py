"""Register-file implementation variants for a dual-issue pipeline.

A dual-issue Patmos needs a register file with four read ports and two write
ports (Section 3.2).  FPGAs only provide dual-ported block RAMs, so Section 5
of the paper evaluates a *time-division multiplexed* (double-clocked) block-RAM
register file and concludes that it uses only two block RAMs and sustains a
system clock above 200 MHz on a Virtex-5, with the ALU remaining the critical
path.  This module models that design point and the two standard
alternatives so experiment E1 can compare them:

* ``FlipFlopRegisterFile`` — registers built from fabric flip-flops with LUT
  read multiplexers: unlimited ports, but large and slow for 32x32 bits with
  six ports.
* ``ReplicatedBramRegisterFile`` — one BRAM copy per (read port x write port)
  plus a live-value table, the textbook multi-ported BRAM design: fast reads
  but 8 block RAMs and extra selection logic for 4R2W.
* ``DoubleClockedBramRegisterFile`` — two BRAM copies accessed twice per
  processor cycle (the Patmos design): two block RAMs, with the system clock
  bounded by half the BRAM clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import NUM_GPRS
from .device import FpgaDevice


@dataclass(frozen=True)
class RegisterFileReport:
    """Timing and resource estimate of one register-file design point."""

    name: str
    read_ports: int
    write_ports: int
    block_rams: int
    registers: int
    lut_estimate: int
    #: Combinational read-path delay contributed to the decode stage (ns).
    read_path_ns: float
    #: Upper bound on the system clock imposed by the register file (MHz).
    max_system_mhz: float


@dataclass(frozen=True)
class RegisterFilePorts:
    """Port requirement of the pipeline configuration."""

    read_ports: int = 4
    write_ports: int = 2

    @classmethod
    def for_issue_width(cls, issue_width: int) -> "RegisterFilePorts":
        return cls(read_ports=2 * issue_width, write_ports=issue_width)


class FlipFlopRegisterFile:
    """Register file built from fabric flip-flops and LUT multiplexers."""

    name = "flip-flop"

    def __init__(self, device: FpgaDevice, word_bits: int = 32,
                 num_regs: int = NUM_GPRS):
        self.device = device
        self.word_bits = word_bits
        self.num_regs = num_regs

    def report(self, ports: RegisterFilePorts) -> RegisterFileReport:
        # A 32:1 read multiplexer on a 6-input-LUT fabric needs ~3 logic
        # levels per read port; write decoding adds one more level of enables.
        mux_levels = 3
        read_path = self.device.luts(mux_levels) + self.device.register_overhead_ns
        # Write path: decoder + enable fan-out, roughly two levels.
        write_path = self.device.luts(2) + self.device.register_overhead_ns
        cycle_ns = max(read_path, write_path)
        registers = self.num_regs * self.word_bits
        lut_estimate = (
            ports.read_ports * self.num_regs * self.word_bits // 2
            + ports.write_ports * self.num_regs)
        return RegisterFileReport(
            name=self.name,
            read_ports=ports.read_ports,
            write_ports=ports.write_ports,
            block_rams=0,
            registers=registers,
            lut_estimate=lut_estimate,
            read_path_ns=read_path,
            max_system_mhz=1000.0 / cycle_ns,
        )


class ReplicatedBramRegisterFile:
    """Multi-ported register file from replicated BRAMs plus a live-value table."""

    name = "replicated-bram"

    def __init__(self, device: FpgaDevice, word_bits: int = 32,
                 num_regs: int = NUM_GPRS):
        self.device = device
        self.word_bits = word_bits
        self.num_regs = num_regs

    def report(self, ports: RegisterFilePorts) -> RegisterFileReport:
        # One BRAM per (write port, read port) pair so every read port can see
        # the data of every write port; a live-value table (in LUT RAM)
        # selects which copy is current.
        block_rams = ports.read_ports * ports.write_ports
        lvt_levels = 2  # LVT read + output select mux
        read_path = (self.device.bram_access_ns + self.device.luts(lvt_levels)
                     + self.device.register_overhead_ns)
        bram_cycle_limit = 1000.0 / self.device.bram_max_mhz
        cycle_ns = max(read_path, bram_cycle_limit)
        lut_estimate = (self.num_regs * ports.read_ports * 4
                        + ports.read_ports * self.word_bits)
        return RegisterFileReport(
            name=self.name,
            read_ports=ports.read_ports,
            write_ports=ports.write_ports,
            block_rams=block_rams,
            registers=0,
            lut_estimate=lut_estimate,
            read_path_ns=read_path,
            max_system_mhz=1000.0 / cycle_ns,
        )


class DoubleClockedBramRegisterFile:
    """The Patmos design: two BRAMs, accessed twice per processor cycle.

    Reads and writes are time-division multiplexed onto the dual-ported block
    RAMs at twice the system clock, so the register-file limit on the system
    clock is half the BRAM clock (minus a small margin for the related-clock
    transfer).  Internal forwarding handles the read-during-write case, as
    described in Section 3.2.
    """

    name = "double-clocked-tdm"

    def __init__(self, device: FpgaDevice, word_bits: int = 32,
                 num_regs: int = NUM_GPRS):
        self.device = device
        self.word_bits = word_bits
        self.num_regs = num_regs

    def report(self, ports: RegisterFilePorts) -> RegisterFileReport:
        # Two physical BRAMs provide 2 read + 2 write ports per fast cycle;
        # two fast cycles per system cycle yield 4R2W.
        block_rams = 2
        fast_cycle_ns = (1000.0 / self.device.bram_max_mhz
                         + self.device.clock_domain_margin_ns)
        rf_limit_ns = 2.0 * fast_cycle_ns
        # The read value still passes the internal forwarding mux.
        read_path = self.device.bram_access_ns + self.device.luts(1)
        lut_estimate = self.num_regs + 4 * self.word_bits
        return RegisterFileReport(
            name=self.name,
            read_ports=ports.read_ports,
            write_ports=ports.write_ports,
            block_rams=block_rams,
            registers=2 * self.word_bits,  # duplicated PC/IR support registers
            lut_estimate=lut_estimate,
            read_path_ns=read_path,
            max_system_mhz=1000.0 / rf_limit_ns,
        )


ALL_REGISTER_FILES = (
    FlipFlopRegisterFile,
    ReplicatedBramRegisterFile,
    DoubleClockedBramRegisterFile,
)


def compare_register_files(device: FpgaDevice,
                           ports: RegisterFilePorts = RegisterFilePorts()
                           ) -> list[RegisterFileReport]:
    """Reports for all register-file variants on one device."""
    return [variant(device).report(ports) for variant in ALL_REGISTER_FILES]
