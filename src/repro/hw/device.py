"""FPGA device models used by the hardware timing/resource estimation.

Section 5 of the paper evaluates a VHDL prototype of the dual-issue pipeline
on a Xilinx Virtex-5 (speed grade 2) and reports that the block RAMs can be
clocked well above 500 MHz, that a double-clocked (time-division multiplexed)
block-RAM register file sustains a system clock above 200 MHz, and that the
ALU — not the register file — is the critical path.

We cannot run synthesis tools here, so the hardware model works from a small
component-delay library per device.  The delay values are calibrated against
publicly documented Virtex-5 characteristics (6-input LUT logic delay, carry
chains, block-RAM clock-to-out) and are intentionally conservative; the goal
of experiment E1 is to reproduce the *ordering* and the headroom reported in
the paper, not vendor-exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class FpgaDevice:
    """Component-delay library of one FPGA family/speed grade."""

    name: str
    #: Logic delay of one LUT level including local routing (ns).
    lut_level_ns: float
    #: Carry-chain delay of a 32-bit adder (ns).
    adder32_ns: float
    #: Block-RAM clock-to-out plus input setup (ns).
    bram_access_ns: float
    #: Maximum block-RAM clock frequency (MHz).
    bram_max_mhz: float
    #: Register setup + clock-to-out overhead per stage (ns).
    register_overhead_ns: float
    #: Additional margin for crossing between related clock domains (ns),
    #: relevant for the double-clocked register file.
    clock_domain_margin_ns: float
    #: Size of one block RAM in bits.
    bram_bits: int = 36 * 1024

    def luts(self, levels: float) -> float:
        """Delay of ``levels`` LUT logic levels in ns."""
        if levels < 0:
            raise ConfigError("logic levels must be non-negative")
        return levels * self.lut_level_ns

    def brams_for(self, bits: int) -> int:
        """Number of block RAMs needed to store ``bits`` bits."""
        if bits <= 0:
            return 0
        return -(-bits // self.bram_bits)


#: Xilinx Virtex-5, speed grade 2 — the device used in the paper's prototype.
VIRTEX5_SPEED2 = FpgaDevice(
    name="Virtex-5 (speed grade -2)",
    lut_level_ns=0.9,
    adder32_ns=2.4,
    bram_access_ns=1.8,
    bram_max_mhz=550.0,
    register_overhead_ns=0.6,
    clock_domain_margin_ns=0.3,
)

#: An older / slower FPGA family, used to show how the conclusions shift.
CYCLONE_II_LIKE = FpgaDevice(
    name="Cyclone-II class (low-cost FPGA)",
    lut_level_ns=1.5,
    adder32_ns=4.2,
    bram_access_ns=3.2,
    bram_max_mhz=260.0,
    register_overhead_ns=0.9,
    clock_domain_margin_ns=0.5,
)

#: A newer device class with faster logic, for headroom studies.
KINTEX7_LIKE = FpgaDevice(
    name="Kintex-7 class",
    lut_level_ns=0.6,
    adder32_ns=1.8,
    bram_access_ns=1.4,
    bram_max_mhz=600.0,
    register_overhead_ns=0.5,
    clock_domain_margin_ns=0.25,
)

ALL_DEVICES = (VIRTEX5_SPEED2, CYCLONE_II_LIKE, KINTEX7_LIKE)


def device_by_name(name: str) -> FpgaDevice:
    """Look up one of the bundled device models by (case-insensitive) name."""
    for device in ALL_DEVICES:
        if device.name.lower() == name.lower():
            return device
    raise ConfigError(f"unknown FPGA device {name!r}")
