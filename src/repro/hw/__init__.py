"""FPGA timing and resource model of the Patmos hardware prototype."""

from .device import (
    ALL_DEVICES,
    CYCLONE_II_LIKE,
    FpgaDevice,
    KINTEX7_LIKE,
    VIRTEX5_SPEED2,
    device_by_name,
)
from .pipeline import (
    PipelineTimingReport,
    ResourceReport,
    StageTiming,
    estimate_pipeline_timing,
    estimate_resources,
)
from .regfile import (
    ALL_REGISTER_FILES,
    DoubleClockedBramRegisterFile,
    FlipFlopRegisterFile,
    RegisterFilePorts,
    RegisterFileReport,
    ReplicatedBramRegisterFile,
    compare_register_files,
)

__all__ = [
    "ALL_DEVICES",
    "ALL_REGISTER_FILES",
    "CYCLONE_II_LIKE",
    "DoubleClockedBramRegisterFile",
    "FlipFlopRegisterFile",
    "FpgaDevice",
    "KINTEX7_LIKE",
    "PipelineTimingReport",
    "RegisterFilePorts",
    "RegisterFileReport",
    "ReplicatedBramRegisterFile",
    "ResourceReport",
    "StageTiming",
    "VIRTEX5_SPEED2",
    "compare_register_files",
    "device_by_name",
    "estimate_pipeline_timing",
    "estimate_resources",
]
