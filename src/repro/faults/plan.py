"""Fault plans: seeded, serialisable schedules of deterministic fault events.

A :class:`FaultPlan` is built either explicitly (tests pin exact events) or
from a seed via :meth:`FaultPlan.generate`, which draws every event from a
string-seeded :class:`random.Random` stream — stable across processes and
``PYTHONHASHSEED`` values, the same idiom as the sporadic interrupt streams.
The plan is a *value*: :meth:`to_dict`/:meth:`from_dict` round-trip it and
:meth:`content_hash` keys it for result caches, so a campaign cell is
re-runnable and cacheable like any other design point.

Four event kinds cover the perturbations a time-predictable deployment must
bound:

* :class:`MemoryFault` — a single-bit flip in one core's main-memory bank
  (or scratchpad) applied when that core's clock reaches ``cycle``.  With
  the plan's SEC-DED ECC model enabled, main-memory flips are *corrected*:
  the data is untouched and the core is charged ``ecc_latency_cycles``
  (folded into the WCET bound via ``fault_overhead_cycles``).
* :class:`BusFault` — the ``index``-th arbitrated transfer of one core
  fails and is re-arbitrated, up to ``bus_retry_limit`` retries (each failed
  attempt occupies its granted bus slot, so retries cost genuine bus time).
* :class:`StormFault` — a burst of extra sporadic releases of one task
  (interrupt overload of the RTOS layer).
* :class:`OverrunFault` — one job executes ``extra_cycles`` beyond its
  normal demand, exercising the per-core watchdog and overrun policies.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..errors import FaultInjectionError

#: Valid targets of a :class:`MemoryFault`.
MEMORY_TARGETS = ("main", "scratchpad")


@dataclass(frozen=True, order=True)
class MemoryFault:
    """Flip bit ``bit`` of byte ``addr`` in ``core_id``'s bank at ``cycle``."""

    cycle: int
    core_id: int
    addr: int
    bit: int
    target: str = "main"

    def __post_init__(self):
        if self.cycle < 0 or self.core_id < 0 or self.addr < 0:
            raise FaultInjectionError(
                f"memory fault fields must be non-negative: {self}")
        if not 0 <= self.bit < 8:
            raise FaultInjectionError(
                f"bit index {self.bit} outside a byte; flips are per-byte")
        if self.target not in MEMORY_TARGETS:
            raise FaultInjectionError(
                f"unknown memory fault target {self.target!r}; "
                f"use one of {MEMORY_TARGETS}")


@dataclass(frozen=True, order=True)
class BusFault:
    """Fail ``core_id``'s ``index``-th arbitrated transfer (0-based).

    ``errors`` is how many consecutive attempts fail before the transfer
    succeeds; a value above the plan's ``bus_retry_limit`` makes the
    transfer unrecoverable (a campaign's ``unrecovered`` outcome).
    """

    core_id: int
    index: int
    errors: int = 1

    def __post_init__(self):
        if self.core_id < 0 or self.index < 0 or self.errors < 1:
            raise FaultInjectionError(f"invalid bus fault: {self}")


@dataclass(frozen=True, order=True)
class StormFault:
    """Release ``count`` extra jobs of one task starting at ``time``.

    The extra releases are ``spacing`` cycles apart — an interrupt storm
    denser than the task's declared minimal inter-arrival time, which is
    precisely the overload the RTOS watchdog and overrun policies exist
    to contain.
    """

    core_id: int
    task_index: int
    time: int
    count: int = 1
    spacing: int = 1

    def __post_init__(self):
        if self.core_id < 0 or self.task_index < 0 or self.time < 0 \
                or self.count < 1 or self.spacing < 1:
            raise FaultInjectionError(f"invalid storm fault: {self}")


@dataclass(frozen=True, order=True)
class OverrunFault:
    """Job ``job_index`` of one task runs ``extra_cycles`` past its demand."""

    core_id: int
    task_index: int
    job_index: int
    extra_cycles: int

    def __post_init__(self):
        if self.core_id < 0 or self.task_index < 0 or self.job_index < 0 \
                or self.extra_cycles < 1:
            raise FaultInjectionError(f"invalid overrun fault: {self}")


_KINDS = {
    "memory": MemoryFault,
    "bus": BusFault,
    "storm": StormFault,
    "overrun": OverrunFault,
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule plus its recovery models.

    ``ecc`` enables the SEC-DED model on main memory: single-bit flips are
    corrected at ``ecc_latency_cycles`` per correction (scratchpad flips are
    never protected — the paper's scratchpad is a raw SRAM).
    ``bus_retry_limit`` bounds the retries of a failed bus transfer; the
    same limit flows into :class:`~repro.wcet.analyzer.WcetOptions` so the
    static bound covers the retried transfers.
    """

    seed: int = 0
    memory_faults: tuple[MemoryFault, ...] = ()
    bus_faults: tuple[BusFault, ...] = ()
    storm_faults: tuple[StormFault, ...] = ()
    overrun_faults: tuple[OverrunFault, ...] = ()
    ecc: bool = False
    ecc_latency_cycles: int = 3
    bus_retry_limit: int = 2

    def __post_init__(self):
        if self.ecc_latency_cycles < 0:
            raise FaultInjectionError("ecc_latency_cycles must be >= 0")
        if self.bus_retry_limit < 0:
            raise FaultInjectionError("bus_retry_limit must be >= 0")
        object.__setattr__(self, "memory_faults",
                           tuple(sorted(self.memory_faults)))
        object.__setattr__(self, "bus_faults",
                           tuple(sorted(self.bus_faults)))
        object.__setattr__(self, "storm_faults",
                           tuple(sorted(self.storm_faults)))
        object.__setattr__(self, "overrun_faults",
                           tuple(sorted(self.overrun_faults)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return (len(self.memory_faults) + len(self.bus_faults)
                + len(self.storm_faults) + len(self.overrun_faults))

    @property
    def empty(self) -> bool:
        return len(self) == 0

    @property
    def has_memory_faults(self) -> bool:
        return bool(self.memory_faults)

    @property
    def has_bus_faults(self) -> bool:
        return bool(self.bus_faults)

    def memory_faults_for_core(self, core_id: int) -> list[MemoryFault]:
        """This core's memory flips in application (cycle) order."""
        return [fault for fault in self.memory_faults
                if fault.core_id == core_id]

    def bus_errors_for_core(self, core_id: int) -> dict[int, int]:
        """``transfer index -> consecutive error count`` of one core."""
        errors: dict[int, int] = {}
        for fault in self.bus_faults:
            if fault.core_id == core_id:
                errors[fault.index] = errors.get(fault.index, 0) + fault.errors
        return errors

    def storms_for_core(self, core_id: int) -> list[StormFault]:
        return [fault for fault in self.storm_faults
                if fault.core_id == core_id]

    def overruns_for_core(self, core_id: int
                          ) -> dict[tuple[int, int], int]:
        """``(task_index, job_index) -> extra cycles`` of one core."""
        return {(fault.task_index, fault.job_index): fault.extra_cycles
                for fault in self.overrun_faults
                if fault.core_id == core_id}

    def planned_corrections(self, core_id: int) -> int:
        """Main-memory flips of one core the ECC model will correct."""
        if not self.ecc:
            return 0
        return sum(1 for fault in self.memory_faults
                   if fault.core_id == core_id and fault.target == "main")

    def fault_overhead_cycles(self, core_id: int) -> int:
        """Static per-core latency the plan adds outside the bus model.

        ECC corrections are the only such charge: each costs
        ``ecc_latency_cycles`` on the owning core's clock.  Bus retries are
        charged through the arbiter and bounded by ``bus_retry_limit`` in
        :class:`~repro.wcet.analyzer.WcetOptions` instead.
        """
        return self.planned_corrections(core_id) * self.ecc_latency_cycles

    def validate(self, num_cores: int, bank_bytes: int,
                 scratchpad_bytes: Optional[int] = None) -> None:
        """Reject events outside the system the plan is about to run on."""
        for fault in self.memory_faults:
            if fault.core_id >= num_cores:
                raise FaultInjectionError(
                    f"memory fault targets core {fault.core_id} of a "
                    f"{num_cores}-core system", cycle=fault.cycle,
                    core_id=fault.core_id, fault=fault)
            limit = (scratchpad_bytes if fault.target == "scratchpad"
                     else bank_bytes)
            if limit is not None and fault.addr >= limit:
                raise FaultInjectionError(
                    f"memory fault address {fault.addr:#x} outside the "
                    f"{limit:#x}-byte {fault.target} bank",
                    cycle=fault.cycle, core_id=fault.core_id, fault=fault)
        for fault in self.bus_faults + self.storm_faults \
                + self.overrun_faults:
            if fault.core_id >= num_cores:
                raise FaultInjectionError(
                    f"fault targets core {fault.core_id} of a "
                    f"{num_cores}-core system", core_id=fault.core_id,
                    fault=fault)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    @classmethod
    def generate(cls, seed: int, num_cores: int, horizon: int,
                 bank_bytes: int, memory_flips: int = 0,
                 bus_errors: int = 0, storms: int = 0, overruns: int = 0,
                 tasks_per_core: int = 1, jobs_per_task: int = 2,
                 max_overrun_cycles: int = 500,
                 transfers_per_core: int = 64,
                 ecc: bool = False, ecc_latency_cycles: int = 3,
                 bus_retry_limit: int = 2) -> "FaultPlan":
        """A seeded random plan: same arguments ⇒ identical plan.

        Event coordinates are drawn from ``Random(f"faults:{seed}:...")`` —
        a string seed hashes via sha512 in CPython, so the stream is stable
        across processes and interpreter restarts.
        """
        if num_cores < 1 or horizon < 1 or bank_bytes < 4:
            raise FaultInjectionError(
                "fault plan generation needs >= 1 core, a positive horizon "
                "and a bank of at least one word")
        rng = random.Random(
            f"faults:{seed}:{num_cores}:{horizon}:{bank_bytes}:"
            f"{memory_flips}:{bus_errors}:{storms}:{overruns}")
        memory = tuple(MemoryFault(
            cycle=rng.randrange(horizon),
            core_id=rng.randrange(num_cores),
            addr=rng.randrange(bank_bytes),
            bit=rng.randrange(8)) for _ in range(memory_flips))
        bus = tuple(BusFault(
            core_id=rng.randrange(num_cores),
            index=rng.randrange(max(1, transfers_per_core)),
            errors=rng.randint(1, max(1, bus_retry_limit)))
            for _ in range(bus_errors))
        storm = tuple(StormFault(
            core_id=rng.randrange(num_cores),
            task_index=rng.randrange(max(1, tasks_per_core)),
            time=rng.randrange(horizon),
            count=rng.randint(1, 3),
            spacing=rng.randint(1, 16)) for _ in range(storms))
        overrun = tuple(OverrunFault(
            core_id=rng.randrange(num_cores),
            task_index=rng.randrange(max(1, tasks_per_core)),
            job_index=rng.randrange(max(1, jobs_per_task)),
            extra_cycles=rng.randint(1, max_overrun_cycles))
            for _ in range(overruns))
        return cls(seed=seed, memory_faults=memory, bus_faults=bus,
                   storm_faults=storm, overrun_faults=overrun, ecc=ecc,
                   ecc_latency_cycles=ecc_latency_cycles,
                   bus_retry_limit=bus_retry_limit)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "memory_faults": [dataclass_row(f) for f in self.memory_faults],
            "bus_faults": [dataclass_row(f) for f in self.bus_faults],
            "storm_faults": [dataclass_row(f) for f in self.storm_faults],
            "overrun_faults": [dataclass_row(f)
                               for f in self.overrun_faults],
            "ecc": self.ecc,
            "ecc_latency_cycles": self.ecc_latency_cycles,
            "bus_retry_limit": self.bus_retry_limit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            memory_faults=tuple(MemoryFault(**row)
                                for row in data.get("memory_faults", [])),
            bus_faults=tuple(BusFault(**row)
                             for row in data.get("bus_faults", [])),
            storm_faults=tuple(StormFault(**row)
                               for row in data.get("storm_faults", [])),
            overrun_faults=tuple(OverrunFault(**row)
                                 for row in data.get("overrun_faults", [])),
            ecc=data.get("ecc", False),
            ecc_latency_cycles=data.get("ecc_latency_cycles", 3),
            bus_retry_limit=data.get("bus_retry_limit", 2))

    def content_hash(self) -> str:
        """Stable digest of the plan (explore-cache key material)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def dataclass_row(fault) -> dict:
    """One fault event as a plain JSON row (field order = declaration)."""
    return asdict(fault)


#: Outcomes a fault record may carry.
OUTCOMES = ("flipped", "corrected", "retried", "unrecovered", "released",
            "overrun", "killed", "shed", "degraded")


@dataclass(frozen=True)
class FaultRecord:
    """One executed fault event and what became of it."""

    kind: str
    outcome: str
    cycle: int
    core_id: int
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "outcome": self.outcome,
                "cycle": self.cycle, "core": self.core_id,
                "detail": dict(self.detail)}


class FaultLog:
    """Append-only record of every executed fault, content-hashable.

    Two runs of the same plan must produce byte-identical logs — the
    reproducibility gate hashes the canonical JSON of all records.
    """

    def __init__(self):
        self.records: list[FaultRecord] = []

    def append(self, kind: str, outcome: str, cycle: int, core_id: int,
               **detail) -> FaultRecord:
        record = FaultRecord(kind=kind, outcome=outcome, cycle=cycle,
                             core_id=core_id, detail=detail)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def counts(self) -> dict[str, int]:
        """``outcome -> occurrences`` over the whole log."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {"records": [record.to_dict() for record in self.records],
                "counts": self.counts()}

    def determinism_hash(self) -> str:
        """Content hash over a canonical ordering of the records.

        Records are sorted by their serialised form first: cores interleave
        differently under the event-driven and reference co-simulation
        schedulers, so the *append order* across cores is
        scheduler-dependent while the executed events are not.  Sorting
        makes the hash comparable across schedulers and processes.
        """
        rows = sorted(json.dumps(record.to_dict(), sort_keys=True,
                                 separators=(",", ":"))
                      for record in self.records)
        payload = "[" + ",".join(rows) + "]"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def table(self) -> str:
        """Aligned per-record text table (the example script's output)."""
        from ..explore.tables import format_table
        headers = ["#", "kind", "outcome", "cycle", "core", "detail"]
        rows = []
        for index, record in enumerate(self.records):
            detail = ", ".join(f"{key}={value}"
                               for key, value in record.detail.items())
            rows.append([index, record.kind, record.outcome, record.cycle,
                         record.core_id, detail])
        return format_table(headers, rows)
