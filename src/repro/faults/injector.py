"""Execute a fault plan against a running system, keeping the fault log.

The injector is deliberately *outside* the hot loops: when a system runs
with no plan (or an empty one), none of this module's objects exist and the
engines take their unmodified code paths — the zero-overhead-when-disabled
gate.  With a plan, the co-simulation scheduler consults
:meth:`FaultInjector.next_memory_fault_cycle` to clip each core's slice to
its next flip, calls :meth:`apply_due_memory_faults` when the core reaches
it, and wraps each core's arbiter port in a :class:`FaultyPort` when the
plan schedules bus errors.
"""

from __future__ import annotations

from typing import Optional

from ..errors import FaultInjectionError
from .plan import FaultLog, FaultPlan


class FaultInjector:
    """Threads one :class:`FaultPlan` through a multicore run.

    One injector serves one run: it tracks which memory flips have been
    applied per core and owns the :class:`FaultLog`.  Construct a fresh one
    per run (``MulticoreSystem`` does) so repeated runs of the same system
    stay independent.
    """

    def __init__(self, plan: FaultPlan, num_cores: int):
        self.plan = plan
        self.num_cores = num_cores
        self.log = FaultLog()
        #: Per-core memory faults, in cycle order, with an applied cursor.
        self._memory = [plan.memory_faults_for_core(core_id)
                        for core_id in range(num_cores)]
        self._cursor = [0] * num_cores

    # ------------------------------------------------------------------
    # Memory flips
    # ------------------------------------------------------------------

    def next_memory_fault_cycle(self, core_id: int) -> Optional[int]:
        """The next unapplied flip cycle of one core (``None`` = no more)."""
        faults = self._memory[core_id]
        cursor = self._cursor[core_id]
        if cursor >= len(faults):
            return None
        return faults[cursor].cycle

    def apply_due_memory_faults(self, core_id: int, cycle: int,
                                sim) -> int:
        """Apply every flip of ``core_id`` with ``fault.cycle <= cycle``.

        Returns the ECC correction latency charged to the core (0 without
        ECC).  Without ECC the bit actually flips in the core's bank (or
        its scratchpad); with ECC, main-memory flips are corrected — the
        data stays intact and only the latency is charged.  The caller adds
        the returned cycles to the core's clock, keeping the charge eager
        and local exactly like the RTOS overhead charges.
        """
        faults = self._memory[core_id]
        cursor = self._cursor[core_id]
        charged = 0
        while cursor < len(faults) and faults[cursor].cycle <= cycle:
            fault = faults[cursor]
            cursor += 1
            if fault.target == "main" and self.plan.ecc:
                charged += self.plan.ecc_latency_cycles
                self.log.append(
                    "memory", "corrected", fault.cycle, core_id,
                    addr=fault.addr, bit=fault.bit, target=fault.target,
                    latency=self.plan.ecc_latency_cycles)
                continue
            target = (sim.scratchpad if fault.target == "scratchpad"
                      else sim.memory)
            target.inject_bit_flip(fault.addr, fault.bit)
            self.log.append("memory", "flipped", fault.cycle, core_id,
                            addr=fault.addr, bit=fault.bit,
                            target=fault.target)
        self._cursor[core_id] = cursor
        return charged

    def pending_memory_faults(self) -> int:
        """Flips not yet applied (drained post-halt by the scheduler)."""
        return sum(len(faults) - cursor for faults, cursor
                   in zip(self._memory, self._cursor))

    # ------------------------------------------------------------------
    # Bus errors
    # ------------------------------------------------------------------

    def port(self, inner_port, core_id: int):
        """Wrap one core's arbiter port if the plan schedules bus errors.

        Cores without scheduled errors keep their bare port — the wrapper
        only exists where it can ever fire.
        """
        errors = self.plan.bus_errors_for_core(core_id)
        if not errors:
            return inner_port
        return FaultyPort(inner_port, errors, self.plan.bus_retry_limit,
                          self.log)


class FaultyPort:
    """An arbiter port whose scheduled transfers fail and retry.

    Wraps an :class:`~repro.memory.arbiter.ArbiterPort` (or the closed-form
    per-core TDMA arbiter) transparently: the memory controller and the
    stepping engines only see the same ``arbitration_delay`` /
    ``worst_case_delay`` / ``events`` protocol.  A scheduled error on the
    ``n``-th transfer makes each failed attempt occupy its granted bus slot
    — the retry is a genuinely re-arbitrated transfer, so under TDMA it
    waits for the core's *next own slot* and under round-robin/priority it
    competes again — until the attempt succeeds or ``retry_limit`` retries
    are exhausted (a structured :class:`FaultInjectionError`).
    """

    __slots__ = ("inner", "core_id", "errors", "retry_limit", "log",
                 "transfers", "retries")

    def __init__(self, inner, errors: dict[int, int], retry_limit: int,
                 log: FaultLog):
        self.inner = inner
        self.core_id = getattr(inner, "core_id", 0)
        self.errors = errors
        self.retry_limit = retry_limit
        self.log = log
        #: Ordinal of the next logical transfer on this port.
        self.transfers = 0
        #: Total successful retries performed (campaign accounting).
        self.retries = 0

    def arbitration_delay(self, cycle: int, transfer_cycles: int) -> int:
        ordinal = self.transfers
        self.transfers += 1
        failures = self.errors.get(ordinal, 0)
        if not failures:
            return self.inner.arbitration_delay(cycle, transfer_cycles)
        if failures > self.retry_limit:
            self.log.append("bus", "unrecovered", cycle, self.core_id,
                            transfer=ordinal, errors=failures,
                            retry_limit=self.retry_limit)
            raise FaultInjectionError(
                f"core {self.core_id} transfer {ordinal}: {failures} "
                f"consecutive bus errors exceed the retry limit of "
                f"{self.retry_limit}", cycle=cycle, core_id=self.core_id)
        # Each failed attempt is arbitrated and occupies its slot in full;
        # the retry re-requests at the cycle the failed transfer ended.
        at = cycle
        for _ in range(failures):
            delay = self.inner.arbitration_delay(at, transfer_cycles)
            at += delay + transfer_cycles
            self.retries += 1
        delay = self.inner.arbitration_delay(at, transfer_cycles)
        start = at + delay
        self.log.append("bus", "retried", cycle, self.core_id,
                        transfer=ordinal, errors=failures,
                        total_delay=start - cycle)
        return start - cycle

    def worst_case_delay(self) -> Optional[int]:
        return self.inner.worst_case_delay()

    @property
    def events(self) -> int:
        # The stepping protocol counts *logical* transfers: retries happen
        # inside one arbitration_delay call and must not look like extra
        # scheduling events.
        return self.transfers

    @property
    def requests(self) -> int:
        return self.inner.requests

    @property
    def total_wait_cycles(self) -> int:
        return self.inner.total_wait_cycles
