"""Seeded fault campaigns: prove the fault models stay inside the bounds.

A campaign sweeps a kernel × core-count matrix.  Every cell first runs
fault-free (the functional and timing baseline), then re-runs under a
:class:`~repro.faults.plan.FaultPlan` generated from the campaign seed with
SEC-DED ECC enabled and bus retries bounded, and finally checks the two
resilience claims the paper's time-predictability argument extends to:

* **functional** — with ECC correcting every main-memory flip and every bus
  error retried within the bound, the faulted run still produces the
  kernel's expected output;
* **timing** — every core's observed cycles stay at or below the
  fault-aware WCET bound (:class:`~repro.wcet.analyzer.WcetOptions` with
  ``bus_retry_limit`` and ``fault_overhead_cycles`` from the plan).

Same seed ⇒ same plans, same fault logs, same outcomes: the report carries
a determinism hash over all cell logs so two runs can be compared byte for
byte (the CI smoke gate and ``repro.verify --faults``).

The heavyweight imports (compiler, CMP, WCET) happen inside the entry
points: :mod:`repro.cmp.system` imports this package for the plan types, so
importing them lazily keeps the package import acyclic.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..errors import FaultInjectionError
from .plan import FaultPlan

#: Default kernel set of a campaign: small, quick kernels covering loop,
#: branchy and call-heavy control flow.
DEFAULT_KERNELS = ("vector_sum", "checksum", "saturate")


@dataclass
class CampaignCell:
    """One kernel × core-count × arbiter cell of a fault campaign."""

    kernel: str
    cores: int
    arbiter: str
    plan_hash: str
    faults_planned: int
    baseline_cycles: list[int] = field(default_factory=list)
    faulted_cycles: list[int] = field(default_factory=list)
    wcet_cycles: list[Optional[int]] = field(default_factory=list)
    outcomes: dict[str, int] = field(default_factory=dict)
    log_hash: str = ""
    outputs_ok: bool = False
    error: Optional[str] = None

    @property
    def name(self) -> str:
        return f"{self.kernel}/{self.cores}core/{self.arbiter}"

    @property
    def violations(self) -> int:
        """Cores whose faulted run exceeded the fault-aware WCET bound."""
        return sum(1 for observed, bound
                   in zip(self.faulted_cycles, self.wcet_cycles)
                   if bound is not None and observed > bound)

    @property
    def ok(self) -> bool:
        return (self.error is None and self.outputs_ok
                and self.violations == 0
                and self.outcomes.get("unrecovered", 0) == 0)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "cores": self.cores,
            "arbiter": self.arbiter,
            "plan_hash": self.plan_hash,
            "faults_planned": self.faults_planned,
            "baseline_cycles": list(self.baseline_cycles),
            "faulted_cycles": list(self.faulted_cycles),
            "wcet_cycles": list(self.wcet_cycles),
            "outcomes": dict(self.outcomes),
            "log_hash": self.log_hash,
            "outputs_ok": self.outputs_ok,
            "violations": self.violations,
            "error": self.error,
        }


@dataclass
class CampaignReport:
    """All cells of one seeded campaign plus the aggregate verdict."""

    seed: int
    ecc: bool
    bus_retry_limit: int
    cells: list[CampaignCell] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def violations(self) -> list[CampaignCell]:
        return [cell for cell in self.cells if cell.violations]

    def counts(self) -> dict[str, int]:
        """Aggregated fault outcomes over every cell's log."""
        totals: dict[str, int] = {}
        for cell in self.cells:
            for outcome, count in cell.outcomes.items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals

    def determinism_hash(self) -> str:
        """Hash over all per-cell fault-log hashes, in cell order.

        Two runs of the same campaign (same seed, same matrix) must produce
        the same value — the reproducibility gate of the CI smoke step.
        """
        payload = "|".join(f"{cell.name}:{cell.plan_hash}:{cell.log_hash}"
                           for cell in self.cells)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "schema": "repro.faults/v1",
            "seed": self.seed,
            "ecc": self.ecc,
            "bus_retry_limit": self.bus_retry_limit,
            "cells": [cell.to_dict() for cell in self.cells],
            "counts": self.counts(),
            "violations": sum(cell.violations for cell in self.cells),
            "ok": self.ok,
            "determinism_hash": self.determinism_hash(),
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def table(self) -> str:
        from ..explore.tables import format_table
        headers = ["cell", "faults", "outcomes", "baseline", "faulted",
                   "wcet", "ok"]
        rows = []
        for cell in self.cells:
            outcomes = ", ".join(f"{k}={v}"
                                 for k, v in sorted(cell.outcomes.items()))
            bounds = [b for b in cell.wcet_cycles if b is not None]
            rows.append([
                cell.name, cell.faults_planned, outcomes or "-",
                max(cell.baseline_cycles, default=0),
                max(cell.faulted_cycles, default=0),
                max(bounds, default="-"),
                "yes" if cell.ok else ("ERROR" if cell.error else "NO"),
            ])
        return format_table(headers, rows)

    def summary(self) -> str:
        counts = self.counts()
        lines = [
            f"fault campaign   : seed {self.seed}, {len(self.cells)} cells, "
            f"{self.elapsed_s:.2f} s",
            f"  recovery model : ecc={'on' if self.ecc else 'off'}, "
            f"bus retry limit {self.bus_retry_limit}",
            "  outcomes       : " + (", ".join(
                f"{k}={v}" for k, v in sorted(counts.items())) or "none"),
            f"  determinism    : {self.determinism_hash()}",
        ]
        bad = [cell for cell in self.cells if not cell.ok]
        if bad:
            lines.append(f"  FAILURES       : {len(bad)} cell(s)")
            for cell in bad:
                reason = (cell.error or
                          (f"{cell.violations} WCET violation(s)"
                           if cell.violations else
                           ("output mismatch" if not cell.outputs_ok
                            else "unrecovered faults")))
                lines.append(f"    {cell.name}: {reason}")
        else:
            lines.append("  all cells within fault-aware WCET bounds, "
                         "outputs preserved")
        return "\n".join(lines)


def run_fault_campaign(seed: int = 0,
                       kernels: Sequence[str] = DEFAULT_KERNELS,
                       cores: Sequence[int] = (2, 4),
                       arbiters: Sequence[str] = ("tdma",),
                       memory_flips: int = 3, bus_errors: int = 3,
                       ecc: bool = True, ecc_latency_cycles: int = 3,
                       bus_retry_limit: int = 2,
                       config=None,
                       progress: Optional[Callable[[str], None]] = None
                       ) -> CampaignReport:
    """Run one seeded fault campaign over a kernel × cores × arbiter matrix.

    Every cell derives its own plan from ``seed`` and the cell index, sized
    by the cell's fault-free baseline (flips are scheduled inside the
    baseline makespan so they land during execution).  A cell that raises
    is contained as a cell error — the campaign always completes and
    reports every cell.
    """
    from ..cmp.system import MulticoreSystem
    from ..compiler.passes import compile_and_link
    from ..config import DEFAULT_CONFIG
    from ..errors import ReproError
    from ..wcet.analyzer import analyze_wcet
    from ..workloads.suite import build_kernel, resolve_kernels

    config = config or DEFAULT_CONFIG
    kernels = resolve_kernels(kernels)
    report = CampaignReport(seed=seed, ecc=ecc,
                            bus_retry_limit=bus_retry_limit)
    started = time.perf_counter()
    images: dict[str, tuple] = {}
    index = 0
    for kernel in kernels:
        if kernel not in images:
            built = build_kernel(kernel)
            image, _ = compile_and_link(built.program, config)
            images[kernel] = (image, built.expected_output)
        image, expected = images[kernel]
        for num_cores in cores:
            for arbiter in arbiters:
                if progress is not None:
                    progress(f"{kernel}/{num_cores}core/{arbiter}")
                cell = _run_cell(
                    MulticoreSystem, analyze_wcet, ReproError,
                    image, expected, kernel, num_cores, arbiter, config,
                    seed + index, memory_flips, bus_errors, ecc,
                    ecc_latency_cycles, bus_retry_limit)
                report.cells.append(cell)
                index += 1
    report.elapsed_s = time.perf_counter() - started
    return report


def _run_cell(MulticoreSystem, analyze_wcet, ReproError,
              image, expected, kernel, num_cores, arbiter, config,
              cell_seed, memory_flips, bus_errors, ecc,
              ecc_latency_cycles, bus_retry_limit) -> CampaignCell:
    """One campaign cell: baseline, plan, faulted run, fault-aware bounds."""
    cell = CampaignCell(kernel=kernel, cores=num_cores, arbiter=arbiter,
                        plan_hash="", faults_planned=0)
    try:
        baseline = MulticoreSystem(
            [image] * num_cores, config, arbiter=arbiter,
            mode="cosim").run(analyse=False)
        cell.baseline_cycles = baseline.observed_by_core()
        for core in baseline.cores:
            if core.sim.output != expected:
                raise FaultInjectionError(
                    f"{kernel} baseline output mismatch on core "
                    f"{core.core_id} — cannot attribute fault effects")
        horizon = max(cell.baseline_cycles)
        plan = FaultPlan.generate(
            cell_seed, num_cores, horizon, config.memory.size_bytes,
            memory_flips=memory_flips, bus_errors=bus_errors, ecc=ecc,
            ecc_latency_cycles=ecc_latency_cycles,
            bus_retry_limit=bus_retry_limit)
        cell.plan_hash = plan.content_hash()
        cell.faults_planned = len(plan)
        system = MulticoreSystem([image] * num_cores, config,
                                 arbiter=arbiter, mode="cosim", faults=plan)
        # The watchdog turns a fault-induced hang into a structured,
        # contained cell error instead of wedging the whole campaign.
        result = system.run(analyse=False,
                            max_cycles=10 * horizon + 100_000)
        cell.faulted_cycles = result.observed_by_core()
        cell.outcomes = result.fault_log.counts()
        cell.log_hash = result.fault_log.determinism_hash()
        cell.outputs_ok = all(core.sim.output == expected
                              for core in result.cores)
        for core_id in range(num_cores):
            options = system.wcet_options_for_core(
                core_id, bus_retry_limit=plan.bus_retry_limit,
                fault_overhead_cycles=plan.fault_overhead_cycles(core_id))
            cell.wcet_cycles.append(
                None if options is None else
                analyze_wcet(image, config=config,
                             options=options).wcet_cycles)
    except ReproError as exc:
        cell.error = f"{type(exc).__name__}: {exc}"
    return cell
