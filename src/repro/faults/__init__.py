"""Deterministic fault injection for the co-simulation stack.

The paper's claim is that every architectural latency is *bounded*, not just
typical; this package makes that claim checkable under perturbation.  A
:class:`FaultPlan` is a seeded, serialisable schedule of fault events —
single-bit flips in main memory or the scratchpad, bus transfer errors at
the arbiter, interrupt storms and task WCET overruns in the RTOS layer —
threaded through :class:`~repro.cmp.system.MulticoreSystem` and
:class:`~repro.rtos.system.RtosSystem`.  The :class:`FaultInjector` executes
the plan and keeps a :class:`FaultLog` whose content hash makes two runs of
the same seed comparably byte-for-byte.

An *empty* plan is guaranteed to leave the engines on their exact existing
code paths (no wrapper objects, no per-cycle checks), which is what the
zero-overhead-when-disabled differential suite pins down.
"""

from .campaign import CampaignReport, run_fault_campaign
from .injector import FaultInjector, FaultyPort
from .plan import (
    BusFault,
    FaultLog,
    FaultPlan,
    FaultRecord,
    MemoryFault,
    OverrunFault,
    StormFault,
)

__all__ = [
    "BusFault",
    "CampaignReport",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultRecord",
    "FaultyPort",
    "MemoryFault",
    "OverrunFault",
    "StormFault",
    "run_fault_campaign",
]
