"""Processor, memory and cache configuration for the Patmos model.

The paper leaves most numeric parameters open (cache sizes, memory timing,
burst length).  :class:`PatmosConfig` gathers them in one place with defaults
recorded in ``DESIGN.md``; every simulator, cache and analysis component takes
a configuration object so experiments can sweep parameters consistently.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

from .errors import ConfigError

#: Number of general-purpose registers (r0 is hard-wired to zero).
NUM_GPRS = 32
#: Number of predicate registers (p0 is hard-wired to true).
NUM_PREDS = 8
#: Word size in bytes.
WORD_SIZE = 4


@dataclass(frozen=True)
class MemoryConfig:
    """Timing and size of the shared main memory.

    The memory controller transfers data in bursts.  A burst of
    ``burst_words`` words costs ``setup_cycles + burst_words * cycles_per_word``
    cycles.  Larger transfers are split into multiple bursts.
    """

    size_bytes: int = 2 * 1024 * 1024
    burst_words: int = 4
    setup_cycles: int = 6
    cycles_per_word: int = 2

    def burst_cycles(self) -> int:
        """Cycles for a single full burst transfer."""
        return self.setup_cycles + self.burst_words * self.cycles_per_word

    def transfer_cycles(self, num_words: int) -> int:
        """Cycles to transfer ``num_words`` words using whole bursts."""
        if num_words <= 0:
            return 0
        bursts = -(-num_words // self.burst_words)
        return bursts * self.burst_cycles()


@dataclass(frozen=True)
class MethodCacheConfig:
    """Configuration of the method (instruction) cache."""

    size_bytes: int = 4096
    num_blocks: int = 16
    replacement: str = "fifo"  # "fifo" or "lru"

    @property
    def block_bytes(self) -> int:
        return self.size_bytes // self.num_blocks


@dataclass(frozen=True)
class StackCacheConfig:
    """Configuration of the stack cache (managed by sres/sens/sfree)."""

    size_bytes: int = 1024
    burst_words: int = 4


@dataclass(frozen=True)
class SetAssocCacheConfig:
    """Configuration of a set-associative cache (C$, D$ or baselines)."""

    size_bytes: int = 2048
    line_bytes: int = 16
    associativity: int = 2
    replacement: str = "lru"
    write_through: bool = True
    write_allocate: bool = False


@dataclass(frozen=True)
class ScratchpadConfig:
    """Configuration of the compiler-managed scratchpad memory."""

    size_bytes: int = 2048
    access_cycles: int = 0  # extra cycles beyond the normal load delay


@dataclass(frozen=True)
class PipelineConfig:
    """Exposed instruction delays of the Patmos pipeline.

    All delays are architecturally visible (Section 3 of the paper): the
    processor does not stall to hide them, the compiler must schedule around
    them.
    """

    branch_delay_slots: int = 2
    call_delay_slots: int = 3
    load_delay_slots: int = 1
    mul_delay_slots: int = 2
    dual_issue: bool = True
    store_buffer_entries: int = 4


@dataclass(frozen=True)
class MemoryMap:
    """Static layout of the address space used by the linker."""

    code_base: int = 0x0001_0000
    const_base: int = 0x0004_0000
    data_base: int = 0x0008_0000
    heap_base: int = 0x0010_0000
    shadow_stack_base: int = 0x001E_0000
    stack_top: int = 0x0020_0000


@dataclass(frozen=True)
class PatmosConfig:
    """Complete configuration of a Patmos core and its memory hierarchy."""

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    method_cache: MethodCacheConfig = field(default_factory=MethodCacheConfig)
    stack_cache: StackCacheConfig = field(default_factory=StackCacheConfig)
    static_cache: SetAssocCacheConfig = field(
        default_factory=lambda: SetAssocCacheConfig(
            size_bytes=2048, line_bytes=16, associativity=2
        )
    )
    data_cache: SetAssocCacheConfig = field(
        default_factory=lambda: SetAssocCacheConfig(
            size_bytes=1024, line_bytes=16, associativity=8
        )
    )
    scratchpad: ScratchpadConfig = field(default_factory=ScratchpadConfig)
    memory_map: MemoryMap = field(default_factory=MemoryMap)

    def __post_init__(self) -> None:
        validate_config(self)

    def with_(self, **kwargs) -> "PatmosConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)

    def single_issue(self) -> "PatmosConfig":
        """Return a copy configured as a single-issue pipeline (baseline)."""
        return self.with_(pipeline=replace(self.pipeline, dual_issue=False))

    def with_overrides(self, overrides: Mapping[str, Any]) -> "PatmosConfig":
        """Return a copy with dotted-path fields replaced.

        Keys name one leaf field as ``"section.field"``, e.g.
        ``{"method_cache.size_bytes": 2048}``.  Every intermediate copy is
        re-validated, so an inconsistent override raises :class:`ConfigError`.
        """
        config = self
        for path, value in overrides.items():
            section_name, _, field_name = path.partition(".")
            if section_name not in _SECTION_TYPES:
                raise ConfigError(
                    f"unknown configuration section {section_name!r} in "
                    f"override {path!r}; sections: {sorted(_SECTION_TYPES)}")
            section = getattr(config, section_name)
            if field_name not in {f.name for f in fields(section)}:
                raise ConfigError(
                    f"unknown field {field_name!r} in override {path!r}; "
                    f"{section_name} has: "
                    f"{sorted(f.name for f in fields(section))}")
            current = getattr(section, field_name)
            if (not isinstance(value, type(current))
                    or (isinstance(value, bool)
                        and not isinstance(current, bool))):
                raise ConfigError(
                    f"override {path!r} expects "
                    f"{type(current).__name__}, got {value!r}")
            config = replace(
                config,
                **{section_name: replace(section, **{field_name: value})})
        return config

    def to_dict(self) -> dict:
        """Serialize to a nested dict of plain JSON types (round-trips)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PatmosConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        kwargs = {}
        for section_name, section_data in data.items():
            if section_name not in _SECTION_TYPES:
                raise ConfigError(
                    f"unknown configuration section {section_name!r}; "
                    f"sections: {sorted(_SECTION_TYPES)}")
            section_type = _SECTION_TYPES[section_name]
            known = {f.name for f in fields(section_type)}
            unknown = set(section_data) - known
            if unknown:
                raise ConfigError(
                    f"unknown fields {sorted(unknown)} in section "
                    f"{section_name!r}")
            kwargs[section_name] = section_type(**section_data)
        return cls(**kwargs)

    def content_hash(self) -> str:
        """Stable hex digest of the configuration content.

        Two configurations hash equally iff :meth:`to_dict` agrees, so the
        hash is usable as a cache key across processes and sessions.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Section name -> dataclass type, for serialization and dotted overrides.
_SECTION_TYPES: dict[str, type] = {
    "pipeline": PipelineConfig,
    "memory": MemoryConfig,
    "method_cache": MethodCacheConfig,
    "stack_cache": StackCacheConfig,
    "static_cache": SetAssocCacheConfig,
    "data_cache": SetAssocCacheConfig,
    "scratchpad": ScratchpadConfig,
    "memory_map": MemoryMap,
}


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def validate_config(config: PatmosConfig) -> None:
    """Validate a :class:`PatmosConfig`, raising :class:`ConfigError` on error."""
    mem = config.memory
    _require(mem.size_bytes > 0, "memory size must be positive")
    _require(mem.burst_words > 0, "burst length must be positive")
    _require(mem.setup_cycles >= 0, "memory setup cycles must be non-negative")
    _require(mem.cycles_per_word >= 1, "cycles per word must be at least 1")

    mc = config.method_cache
    _require(mc.num_blocks > 0, "method cache needs at least one block")
    _require(
        mc.size_bytes % mc.num_blocks == 0,
        "method cache size must be a multiple of the block count",
    )
    _require(
        mc.replacement in ("fifo", "lru"),
        "method cache replacement must be 'fifo' or 'lru'",
    )

    sc = config.stack_cache
    _require(_is_power_of_two(sc.size_bytes), "stack cache size must be a power of two")
    _require(sc.burst_words > 0, "stack cache burst length must be positive")

    for name, cache in (("static", config.static_cache), ("data", config.data_cache)):
        _require(
            _is_power_of_two(cache.line_bytes) and cache.line_bytes >= WORD_SIZE,
            f"{name} cache line size must be a power of two >= {WORD_SIZE}",
        )
        _require(cache.associativity >= 1, f"{name} cache associativity must be >= 1")
        _require(
            cache.size_bytes % (cache.line_bytes * cache.associativity) == 0,
            f"{name} cache size must be a multiple of line size * associativity",
        )
        _require(
            cache.replacement in ("lru", "fifo"),
            f"{name} cache replacement must be 'lru' or 'fifo'",
        )

    pipe = config.pipeline
    _require(pipe.branch_delay_slots >= 0, "branch delay slots must be non-negative")
    _require(pipe.call_delay_slots >= 0, "call delay slots must be non-negative")
    _require(pipe.load_delay_slots >= 0, "load delay slots must be non-negative")
    _require(pipe.mul_delay_slots >= 0, "mul delay slots must be non-negative")
    _require(pipe.store_buffer_entries >= 0, "store buffer entries must be >= 0")

    mm = config.memory_map
    _require(
        0 < mm.code_base < mm.const_base < mm.data_base < mm.heap_base
        < mm.shadow_stack_base < mm.stack_top <= mem.size_bytes,
        "memory map regions must be ordered and fit into main memory",
    )


DEFAULT_CONFIG = PatmosConfig()
