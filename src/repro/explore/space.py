"""Declarative design-space descriptions over the Patmos model.

The paper's central trade-off — average-case throughput versus WCET — depends
on architecture parameters (method-cache size, stack-cache size, TDMA slot
length) and on compilation strategy (single-path versus branching code,
dual- versus single-issue).  A :class:`ParameterSpace` describes a sweep over
any combination of those declaratively; :meth:`ParameterSpace.specs` expands
it into concrete, picklable :class:`ExperimentSpec` objects that the batch
runner executes and the result cache keys.

Axes come in five kinds:

* ``config`` axes set one dotted :class:`~repro.config.PatmosConfig` field,
  e.g. ``method_cache.size_bytes``;
* ``compile`` axes set one :class:`~repro.compiler.passes.CompileOptions`
  field, e.g. ``single_path``;
* ``wcet`` axes set one :class:`~repro.wcet.analyzer.WcetOptions` field,
  e.g. ``method_cache`` (the analysis mode, not the hardware);
* the ``cores`` axis sweeps the number of cores of the multicore system
  (co-simulated against one shared memory);
* the ``arbiter`` axis sweeps the memory arbitration policy
  (``tdma``, ``round_robin``, ``priority``);
* the ``engine`` axis picks the execution engine (``reference``, ``fast``,
  ``jit``); engines are bit-identical by the golden equivalence suite, but
  the engine is still part of the cache key so sweeps never mix results;
* the ``slot_cycles`` axis sweeps the TDMA slot length;
* the ``slot_weights`` axis sweeps per-core TDMA slot weights, written as
  colon-separated integers (``1:2:1:1``); the pattern is cycled over the
  core count so it composes with a ``cores`` axis;
* ``rtos`` axes (``taskset_utilisation``, ``taskset_period_spread``,
  ``taskset_priorities``, ``tasks_per_core``, ``task_policy``,
  ``taskset_seed``, ``taskset_bodies``) turn a design point into an RTOS
  task-set point: instead of one bare-metal program per core, each core
  runs a synthesized preemptive task set (:mod:`repro.rtos`) and the
  collected figures include the response-time analysis outcome.  The
  task bodies come from ``taskset_bodies`` (a colon-separated kernel or
  suite list, default the ``rtos`` suite) — the space's kernel entry does
  not select bodies, so build RTOS spaces over a single kernel.

Friendly aliases (``method_cache_size`` for ``method_cache.size_bytes`` and
so on) keep command lines short; see :data:`AXIS_ALIASES`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Iterable, Optional, Sequence

from ..compiler.passes import CompileOptions
from ..config import PatmosConfig
from ..errors import ExplorationError
from ..wcet.analyzer import WcetOptions
from ..workloads.suite import resolve_kernels

#: Friendly axis names -> (kind, target).  Dotted names are accepted directly
#: as ``config`` axes and bare CompileOptions field names as ``compile`` axes.
AXIS_ALIASES: dict[str, tuple[str, Optional[str]]] = {
    "method_cache_size": ("config", "method_cache.size_bytes"),
    "method_cache_blocks": ("config", "method_cache.num_blocks"),
    "method_cache_replacement": ("config", "method_cache.replacement"),
    "stack_cache_size": ("config", "stack_cache.size_bytes"),
    "static_cache_size": ("config", "static_cache.size_bytes"),
    "data_cache_size": ("config", "data_cache.size_bytes"),
    "scratchpad_size": ("config", "scratchpad.size_bytes"),
    "burst_words": ("config", "memory.burst_words"),
    "dual_issue": ("config", "pipeline.dual_issue"),
    "method_cache_analysis": ("wcet", "method_cache"),
    "static_cache_analysis": ("wcet", "static_cache"),
    "stack_cache_analysis": ("wcet", "stack_cache"),
    "analysis": ("wcet", "analysis"),
    "cores": ("cores", None),
    "arbiter": ("arbiter", None),
    "engine": ("engine", None),
    "slot_cycles": ("slot_cycles", None),
    "slot_weights": ("slot_weights", None),
    "taskset_utilisation": ("rtos", "utilisation"),
    "taskset_period_spread": ("rtos", "period_spread"),
    "taskset_priorities": ("rtos", "priority_assignment"),
    "taskset_seed": ("rtos", "seed"),
    "tasks_per_core": ("rtos", "tasks_per_core"),
    "task_policy": ("rtos", "policy"),
    "taskset_bodies": ("rtos", "bodies"),
}

_COMPILE_FIELDS = frozenset(f.name for f in fields(CompileOptions))
_WCET_FIELDS = frozenset(f.name for f in fields(WcetOptions))
#: WCET option fields that must receive a real boolean: truthiness would
#: silently turn a typo like ``analysis=bogus`` into ``True``.
_WCET_BOOL_FIELDS = frozenset(
    f.name for f in fields(WcetOptions) if f.type in ("bool", bool))


def resolve_axis(name: str) -> tuple[str, Optional[str]]:
    """Map an axis name to its ``(kind, target)`` pair.

    Resolution order: explicit alias, dotted ``PatmosConfig`` path,
    ``CompileOptions`` field name.  Anything else is an error.
    """
    if name in AXIS_ALIASES:
        return AXIS_ALIASES[name]
    if "." in name:
        return ("config", name)
    if name in _COMPILE_FIELDS:
        return ("compile", name)
    raise ExplorationError(
        f"unknown axis {name!r}; use an alias ({sorted(AXIS_ALIASES)}), a "
        f"dotted PatmosConfig path like 'method_cache.size_bytes', or a "
        f"CompileOptions field ({sorted(_COMPILE_FIELDS)})")


@dataclass(frozen=True)
class Axis:
    """One swept dimension: every value spawns a family of experiments."""

    name: str            # the name the user wrote (display)
    kind: str            # "config" | "compile" | "wcet" | "cores" | "engine" | ...
    target: Optional[str]  # dotted config path / options field, None otherwise
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ExplorationError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully resolved design point: everything a worker needs to run it.

    Specs are self-contained and picklable so they can be shipped to
    ``multiprocessing`` workers, and deterministic so :meth:`key` can address
    a result cache shared between runs and machines.
    """

    kernel: str
    config: PatmosConfig
    options: CompileOptions = CompileOptions()
    kernel_params: tuple[tuple[str, Any], ...] = ()
    wcet_overrides: tuple[tuple[str, Any], ...] = ()
    cores: int = 1
    arbiter: str = "tdma"
    #: Execution engine for the simulated side ("reference" | "fast" |
    #: "jit"); part of the content hash — results from different engines
    #: must never alias in the cache even though they are required to agree.
    engine: str = "fast"
    slot_cycles: Optional[int] = None
    slot_weights: Optional[tuple[int, ...]] = None
    #: RTOS task-set parameters (sorted name/value pairs); non-empty turns
    #: this design point into a multi-task point (see the module docstring).
    rtos: tuple[tuple[str, Any], ...] = ()
    analyse_wcet: bool = True
    #: The axis assignment that produced this spec (display only; two specs
    #: that resolve to the same content share a cache key regardless).
    parameters: tuple[tuple[str, Any], ...] = ()

    def tdma_schedule(self):
        """The TDMA schedule of this design point (``None`` off-TDMA).

        ``slot_weights`` is treated as a *pattern* cycled over the cores so
        that a weights axis composes with a cores axis in one sweep:
        ``1:2`` on four cores becomes ``1:2:1:2``.
        """
        if self.cores <= 1 or self.arbiter != "tdma":
            return None
        from ..memory.tdma import TdmaSchedule
        slot = (self.slot_cycles if self.slot_cycles is not None
                else self.config.memory.burst_cycles())
        weights: tuple[int, ...] = ()
        if self.slot_weights:
            weights = tuple(self.slot_weights[i % len(self.slot_weights)]
                            for i in range(self.cores))
        return TdmaSchedule(num_cores=self.cores, slot_cycles=slot,
                            slot_weights=weights)

    def wcet_options(self) -> WcetOptions:
        """The WCET analysis options of this design point.

        The interference model follows the arbiter axis through the shared
        :meth:`WcetOptions.for_arbiter` mapping: TDMA is exact, round-robin
        uses the ``(N - 1)``-transfers bound, and priority is analysable at
        the top rank only (the options here describe that core; the runner
        still reports no bound for priority points, since no bound covers
        the makespan).

        TDMA points analyse the schedule's *bottleneck* core (smallest
        slot): its refined per-transfer bound dominates every other core's,
        so the single reported bound still covers the makespan of the
        homogeneous system while staying tighter than the blanket
        ``period - 1`` charge.
        """
        schedule = self.tdma_schedule()
        core_id = schedule.bottleneck_core() if schedule is not None else None
        return WcetOptions.for_arbiter(
            self.arbiter, self.cores, schedule=schedule, core_id=core_id,
            **dict(self.wcet_overrides))

    def key(self) -> str:
        """Stable content hash of the design point (the cache key)."""
        payload = {
            "kernel": self.kernel,
            "kernel_params": sorted(self.kernel_params),
            "config": self.config.to_dict(),
            "options": asdict(self.options),
            "cores": self.cores,
            "arbiter": self.arbiter,
            "engine": self.engine,
            "slot_cycles": self.slot_cycles,
            "slot_weights": (list(self.slot_weights)
                             if self.slot_weights else None),
            "wcet": (self.wcet_options().to_dict()
                     if self.analyse_wcet else None),
        }
        if self.rtos:
            # Added conditionally so the keys of pre-RTOS design points (and
            # hence existing result caches) stay valid.
            payload["rtos"] = sorted(self.rtos)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for tables and logs."""
        parts = [f"{name}={value}" for name, value in self.parameters]
        return f"{self.kernel}" + (f" [{', '.join(parts)}]" if parts else "")


class ParameterSpace:
    """A declarative sweep: kernels x axis values, expanded on demand.

    >>> space = (ParameterSpace(["vector_sum", "fir_filter"])
    ...          .axis("method_cache_size", [1024, 2048, 4096]))
    >>> len(space.specs())
    6
    """

    def __init__(self, kernels: Iterable[str],
                 base_config: Optional[PatmosConfig] = None,
                 base_options: CompileOptions = CompileOptions(),
                 kernel_params: Optional[dict[str, dict]] = None,
                 analyse_wcet: bool = True):
        self.kernels = resolve_kernels(kernels)
        if not self.kernels:
            raise ExplorationError("a parameter space needs at least one kernel")
        self.base_config = base_config or PatmosConfig()
        self.base_options = base_options
        self.kernel_params = dict(kernel_params or {})
        self.analyse_wcet = analyse_wcet
        self.axes: list[Axis] = []

    def axis(self, name: str, values: Sequence) -> "ParameterSpace":
        """Add one swept dimension (chainable)."""
        kind, target = resolve_axis(name)
        if any(existing.name == name for existing in self.axes):
            raise ExplorationError(f"duplicate axis {name!r}")
        self.axes.append(Axis(name=name, kind=kind, target=target,
                              values=tuple(values)))
        return self

    def __len__(self) -> int:
        count = len(self.kernels)
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def specs(self) -> list[ExperimentSpec]:
        """Expand the space into concrete experiment specs (kernel-major)."""
        value_grid = itertools.product(*(axis.values for axis in self.axes))
        combos = list(value_grid)
        specs = []
        for kernel in self.kernels:
            for combo in combos:
                specs.append(self._make_spec(kernel, combo))
        return specs

    def _make_spec(self, kernel: str, combo: tuple) -> ExperimentSpec:
        config_overrides: dict[str, Any] = {}
        compile_overrides: dict[str, Any] = {}
        wcet_overrides: dict[str, Any] = {}
        cores = 1
        arbiter = "tdma"
        engine = "fast"
        slot_cycles: Optional[int] = None
        slot_weights: Optional[tuple[int, ...]] = None
        rtos_overrides: dict[str, Any] = {}
        parameters = []
        for axis, value in zip(self.axes, combo):
            parameters.append((axis.name, value))
            if axis.kind == "config":
                config_overrides[axis.target] = value
            elif axis.kind == "compile":
                compile_overrides[axis.target] = value
            elif axis.kind == "wcet":
                if axis.target not in _WCET_FIELDS:
                    raise ExplorationError(
                        f"unknown WCET option {axis.target!r}")
                if (axis.target in _WCET_BOOL_FIELDS
                        and not isinstance(value, bool)):
                    raise ExplorationError(
                        f"axis {axis.name!r} expects bool, got {value!r}")
                wcet_overrides[axis.target] = value
            elif axis.kind == "cores":
                cores = int(value)
            elif axis.kind == "arbiter":
                arbiter = _parse_arbiter(value)
            elif axis.kind == "engine":
                engine = _parse_engine(value)
            elif axis.kind == "slot_cycles":
                slot_cycles = int(value)
            elif axis.kind == "slot_weights":
                slot_weights = _parse_slot_weights(value)
            elif axis.kind == "rtos":
                rtos_overrides[axis.target] = value
            else:  # pragma: no cover - resolve_axis guards this
                raise ExplorationError(f"unknown axis kind {axis.kind!r}")
        if cores == 1:
            # Arbitration axes cannot affect a single core; normalising them
            # to the defaults lets e.g. (cores=1, arbiter=round_robin) and
            # (cores=1, arbiter=tdma) share one cache entry and one run
            # (the runner dedupes equal keys and relabels per spec).
            arbiter = "tdma"
            slot_cycles = None
            slot_weights = None
        elif arbiter != "tdma":
            # TDMA slot geometry has no effect under other arbiters either.
            slot_cycles = None
            slot_weights = None
        config = self.base_config.with_overrides(config_overrides)
        options = (CompileOptions(**{**asdict(self.base_options),
                                     **compile_overrides})
                   if compile_overrides else self.base_options)
        params = self.kernel_params.get(kernel, {})
        return ExperimentSpec(
            kernel=kernel,
            config=config,
            options=options,
            kernel_params=tuple(sorted(params.items())),
            wcet_overrides=tuple(sorted(wcet_overrides.items())),
            cores=cores,
            arbiter=arbiter,
            engine=engine,
            slot_cycles=slot_cycles,
            slot_weights=slot_weights,
            rtos=tuple(sorted(rtos_overrides.items())),
            analyse_wcet=self.analyse_wcet,
            parameters=tuple(parameters),
        )


_ENGINES = ("reference", "fast", "jit")


def _parse_engine(value) -> str:
    name = str(value).strip().lower()
    if name not in _ENGINES:
        raise ExplorationError(
            f"unknown engine {name!r}; available: {list(_ENGINES)}")
    return name


def _parse_arbiter(value) -> str:
    from ..memory.arbiter import ARBITER_KINDS
    name = str(value).strip().lower()
    if name not in ARBITER_KINDS:
        raise ExplorationError(
            f"unknown arbiter {value!r}; choose from {list(ARBITER_KINDS)}")
    return name


def _parse_slot_weights(value) -> tuple[int, ...]:
    """Normalise a slot-weights axis value to a tuple of positive ints.

    Accepts sequences (``[1, 2, 1]``) and the CLI's colon-separated string
    form (``"1:2:1"`` — colons, because commas already separate axis
    values on the command line).
    """
    if isinstance(value, str):
        parts = [part for part in value.split(":") if part.strip()]
    elif isinstance(value, (list, tuple)):
        parts = list(value)
    else:
        parts = [value]
    try:
        # Round-tripping through str rejects non-integral values (1.5)
        # instead of silently truncating them to a different design point.
        weights = tuple(int(str(part).strip()) for part in parts)
    except (TypeError, ValueError):
        raise ExplorationError(
            f"slot_weights must be integers like '1:2:1', got {value!r}")
    if not weights or any(weight < 1 for weight in weights):
        raise ExplorationError(
            f"slot_weights must be positive integers, got {value!r}")
    return weights
