"""Declarative design-space descriptions over the Patmos model.

The paper's central trade-off — average-case throughput versus WCET — depends
on architecture parameters (method-cache size, stack-cache size, TDMA slot
length) and on compilation strategy (single-path versus branching code,
dual- versus single-issue).  A :class:`ParameterSpace` describes a sweep over
any combination of those declaratively; :meth:`ParameterSpace.specs` expands
it into concrete, picklable :class:`ExperimentSpec` objects that the batch
runner executes and the result cache keys.

Axes come in five kinds:

* ``config`` axes set one dotted :class:`~repro.config.PatmosConfig` field,
  e.g. ``method_cache.size_bytes``;
* ``compile`` axes set one :class:`~repro.compiler.passes.CompileOptions`
  field, e.g. ``single_path``;
* ``wcet`` axes set one :class:`~repro.wcet.analyzer.WcetOptions` field,
  e.g. ``method_cache`` (the analysis mode, not the hardware);
* the ``cores`` axis sweeps the number of TDMA-arbitrated cores;
* the ``slot_cycles`` axis sweeps the TDMA slot length.

Friendly aliases (``method_cache_size`` for ``method_cache.size_bytes`` and
so on) keep command lines short; see :data:`AXIS_ALIASES`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Iterable, Optional, Sequence

from ..compiler.passes import CompileOptions
from ..config import PatmosConfig
from ..errors import ExplorationError
from ..wcet.analyzer import WcetOptions
from ..workloads.suite import resolve_kernels

#: Friendly axis names -> (kind, target).  Dotted names are accepted directly
#: as ``config`` axes and bare CompileOptions field names as ``compile`` axes.
AXIS_ALIASES: dict[str, tuple[str, Optional[str]]] = {
    "method_cache_size": ("config", "method_cache.size_bytes"),
    "method_cache_blocks": ("config", "method_cache.num_blocks"),
    "method_cache_replacement": ("config", "method_cache.replacement"),
    "stack_cache_size": ("config", "stack_cache.size_bytes"),
    "static_cache_size": ("config", "static_cache.size_bytes"),
    "data_cache_size": ("config", "data_cache.size_bytes"),
    "scratchpad_size": ("config", "scratchpad.size_bytes"),
    "burst_words": ("config", "memory.burst_words"),
    "dual_issue": ("config", "pipeline.dual_issue"),
    "method_cache_analysis": ("wcet", "method_cache"),
    "static_cache_analysis": ("wcet", "static_cache"),
    "stack_cache_analysis": ("wcet", "stack_cache"),
    "cores": ("cores", None),
    "slot_cycles": ("slot_cycles", None),
}

_COMPILE_FIELDS = frozenset(f.name for f in fields(CompileOptions))
_WCET_FIELDS = frozenset(f.name for f in fields(WcetOptions))


def resolve_axis(name: str) -> tuple[str, Optional[str]]:
    """Map an axis name to its ``(kind, target)`` pair.

    Resolution order: explicit alias, dotted ``PatmosConfig`` path,
    ``CompileOptions`` field name.  Anything else is an error.
    """
    if name in AXIS_ALIASES:
        return AXIS_ALIASES[name]
    if "." in name:
        return ("config", name)
    if name in _COMPILE_FIELDS:
        return ("compile", name)
    raise ExplorationError(
        f"unknown axis {name!r}; use an alias ({sorted(AXIS_ALIASES)}), a "
        f"dotted PatmosConfig path like 'method_cache.size_bytes', or a "
        f"CompileOptions field ({sorted(_COMPILE_FIELDS)})")


@dataclass(frozen=True)
class Axis:
    """One swept dimension: every value spawns a family of experiments."""

    name: str            # the name the user wrote (display)
    kind: str            # "config" | "compile" | "wcet" | "cores" | "slot_cycles"
    target: Optional[str]  # dotted config path / options field, None otherwise
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ExplorationError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully resolved design point: everything a worker needs to run it.

    Specs are self-contained and picklable so they can be shipped to
    ``multiprocessing`` workers, and deterministic so :meth:`key` can address
    a result cache shared between runs and machines.
    """

    kernel: str
    config: PatmosConfig
    options: CompileOptions = CompileOptions()
    kernel_params: tuple[tuple[str, Any], ...] = ()
    wcet_overrides: tuple[tuple[str, Any], ...] = ()
    cores: int = 1
    slot_cycles: Optional[int] = None
    analyse_wcet: bool = True
    #: The axis assignment that produced this spec (display only; two specs
    #: that resolve to the same content share a cache key regardless).
    parameters: tuple[tuple[str, Any], ...] = ()

    def wcet_options(self) -> WcetOptions:
        """The WCET analysis options of this design point (TDMA included)."""
        kwargs = dict(self.wcet_overrides)
        if self.cores > 1:
            from ..memory.tdma import TdmaSchedule
            slot = (self.slot_cycles if self.slot_cycles is not None
                    else self.config.memory.burst_cycles())
            kwargs["tdma"] = TdmaSchedule(num_cores=self.cores,
                                          slot_cycles=slot)
        return WcetOptions(**kwargs)

    def key(self) -> str:
        """Stable content hash of the design point (the cache key)."""
        payload = {
            "kernel": self.kernel,
            "kernel_params": sorted(self.kernel_params),
            "config": self.config.to_dict(),
            "options": asdict(self.options),
            "cores": self.cores,
            "slot_cycles": self.slot_cycles,
            "wcet": (self.wcet_options().to_dict()
                     if self.analyse_wcet else None),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for tables and logs."""
        parts = [f"{name}={value}" for name, value in self.parameters]
        return f"{self.kernel}" + (f" [{', '.join(parts)}]" if parts else "")


class ParameterSpace:
    """A declarative sweep: kernels x axis values, expanded on demand.

    >>> space = (ParameterSpace(["vector_sum", "fir_filter"])
    ...          .axis("method_cache_size", [1024, 2048, 4096]))
    >>> len(space.specs())
    6
    """

    def __init__(self, kernels: Iterable[str],
                 base_config: Optional[PatmosConfig] = None,
                 base_options: CompileOptions = CompileOptions(),
                 kernel_params: Optional[dict[str, dict]] = None,
                 analyse_wcet: bool = True):
        self.kernels = resolve_kernels(kernels)
        if not self.kernels:
            raise ExplorationError("a parameter space needs at least one kernel")
        self.base_config = base_config or PatmosConfig()
        self.base_options = base_options
        self.kernel_params = dict(kernel_params or {})
        self.analyse_wcet = analyse_wcet
        self.axes: list[Axis] = []

    def axis(self, name: str, values: Sequence) -> "ParameterSpace":
        """Add one swept dimension (chainable)."""
        kind, target = resolve_axis(name)
        if any(existing.name == name for existing in self.axes):
            raise ExplorationError(f"duplicate axis {name!r}")
        self.axes.append(Axis(name=name, kind=kind, target=target,
                              values=tuple(values)))
        return self

    def __len__(self) -> int:
        count = len(self.kernels)
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def specs(self) -> list[ExperimentSpec]:
        """Expand the space into concrete experiment specs (kernel-major)."""
        value_grid = itertools.product(*(axis.values for axis in self.axes))
        combos = list(value_grid)
        specs = []
        for kernel in self.kernels:
            for combo in combos:
                specs.append(self._make_spec(kernel, combo))
        return specs

    def _make_spec(self, kernel: str, combo: tuple) -> ExperimentSpec:
        config_overrides: dict[str, Any] = {}
        compile_overrides: dict[str, Any] = {}
        wcet_overrides: dict[str, Any] = {}
        cores = 1
        slot_cycles: Optional[int] = None
        parameters = []
        for axis, value in zip(self.axes, combo):
            parameters.append((axis.name, value))
            if axis.kind == "config":
                config_overrides[axis.target] = value
            elif axis.kind == "compile":
                compile_overrides[axis.target] = value
            elif axis.kind == "wcet":
                if axis.target not in _WCET_FIELDS:
                    raise ExplorationError(
                        f"unknown WCET option {axis.target!r}")
                wcet_overrides[axis.target] = value
            elif axis.kind == "cores":
                cores = int(value)
            elif axis.kind == "slot_cycles":
                slot_cycles = int(value)
            else:  # pragma: no cover - resolve_axis guards this
                raise ExplorationError(f"unknown axis kind {axis.kind!r}")
        config = self.base_config.with_overrides(config_overrides)
        options = (CompileOptions(**{**asdict(self.base_options),
                                     **compile_overrides})
                   if compile_overrides else self.base_options)
        params = self.kernel_params.get(kernel, {})
        return ExperimentSpec(
            kernel=kernel,
            config=config,
            options=options,
            kernel_params=tuple(sorted(params.items())),
            wcet_overrides=tuple(sorted(wcet_overrides.items())),
            cores=cores,
            slot_cycles=slot_cycles,
            analyse_wcet=self.analyse_wcet,
            parameters=tuple(parameters),
        )
