"""Text-table rendering shared by the exploration result and Pareto views."""

from __future__ import annotations


def format_table(headers: list, rows: list[list]) -> str:
    """Render an aligned table: header row, dash separator, one row per entry."""
    widths = [max(len(str(headers[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(headers))]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)
