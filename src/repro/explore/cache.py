"""On-disk result cache making repeated exploration sweeps incremental.

The cache is one JSON file mapping :meth:`ExperimentSpec.key` digests to
result records (:meth:`SpecResult.to_record`).  Because the key is a content
hash of (kernel, config, compile options, analysis options, core count), a
sweep that shares design points with an earlier sweep — a refined grid, an
added kernel, a re-run after a crash — only simulates the new points.

The file format is versioned; a cache written by an incompatible version of
the tooling is discarded rather than trusted.  Writes are atomic (temp file
plus ``os.replace``) so a crashed sweep never corrupts previous results.

An *unreadable* cache file (truncated by a power cut, hand-edited, wrong
encoding) does not abort the sweep either: it is moved aside into the
cache's ``quarantine/`` directory with a warning, and the sweep proceeds
from an empty cache.  Only when even the quarantine move fails does the
cache raise :class:`~repro.errors.CacheCorruption`.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Optional

from ..errors import CacheCorruption

try:  # POSIX file locking for the save-time merge; absent e.g. on Windows.
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None


@contextlib.contextmanager
def _save_lock(path: Path):
    """Exclusive advisory lock serialising concurrent ``save()`` merges.

    Writers lock a ``.lock`` sidecar for the read-merge-replace sequence so
    no update can land between the merge's re-read and the atomic replace.
    Readers never need the lock (``os.replace`` keeps every read a complete
    file).  Where ``fcntl`` is unavailable the lock degrades to a no-op and
    the merge still narrows the race to that window.
    """
    if fcntl is None:  # pragma: no cover - platform-dependent
        yield
        return
    handle = open(path, "a+")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

#: Bump when the record format or the simulation semantics change in a way
#: that invalidates stored results.
#: v2: multicore design points run the interleaved co-simulation (arbiter /
#: slot_weights axes) and records carry the interference metrics.
#: v3: WCET options carry ``tdma_core_id`` and TDMA design points use the
#: refined per-core, per-transfer interference bound.
#: v4: co-simulation serves simultaneous memory requests strictly in the
#: arbiter's preference order (a core catching up from behind yields the
#: bus tie instead of keeping a scheduling-slice privilege), which can
#: shift round-robin/priority interference timings by a few cycles.
#: v5: the execution engine ("reference" | "fast" | "jit") joined the spec
#: content hash, so pre-v5 keys no longer address the same design point.
#: v6: WCET options gained the ``analysis`` toggle (abstract-interpretation
#: value analysis); bounds of cached records may differ from pre-v6 runs.
CACHE_VERSION = 6


class ResultCache:
    """A persistent key -> record store for exploration results."""

    def __init__(self, path):
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self._entries: Optional[dict[str, dict]] = None
        self._dirty = False
        #: Keys written by *this* process since the last save; on save these
        #: win over whatever concurrent sweeps persisted in the meantime.
        self._dirty_keys: set[str] = set()
        self._cleared = False

    # ------------------------------------------------------------------
    # Loading and saving
    # ------------------------------------------------------------------

    def _load(self) -> dict[str, dict]:
        if self._entries is None:
            if self.path.exists():
                try:
                    data = json.loads(self.path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError) as exc:
                    self._quarantine(exc)
                    self._entries = {}
                else:
                    self._entries = self._valid_entries(data)
            else:
                self._entries = {}
        return self._entries

    @staticmethod
    def _valid_entries(data) -> dict[str, dict]:
        """The entry table of a parsed cache file ({} on any mismatch)."""
        if (isinstance(data, dict)
                and data.get("version") == CACHE_VERSION
                and isinstance(data.get("entries"), dict)):
            return data["entries"]
        return {}

    @property
    def quarantine_dir(self) -> Path:
        """Where unreadable cache files are moved for post-mortem."""
        return self.path.parent / "quarantine"

    def _quarantine(self, exc: Exception) -> None:
        """Move the unreadable cache file aside and continue empty.

        The corrupt bytes are preserved under ``quarantine/`` for
        inspection instead of being silently clobbered by the next save.
        Only a failed *move* escalates to :class:`CacheCorruption` — then
        neither trusting nor bypassing the file is safe.
        """
        target = self.quarantine_dir / self.path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_dir / f"{self.path.name}.{suffix}"
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(self.path, target)
        except OSError as move_exc:
            raise CacheCorruption(
                f"corrupt result cache {self.path} ({exc}) could not be "
                f"quarantined: {move_exc}", path=self.path) from exc
        warnings.warn(
            f"corrupt result cache {self.path} ({exc}); moved to {target} "
            f"and starting from an empty cache", RuntimeWarning,
            stacklevel=3)

    def _reread_disk(self) -> dict[str, dict]:
        """Best-effort fresh read of the on-disk entries for the save merge.

        Unlike :meth:`_load` this never raises: a file another sweep is just
        replacing (or has corrupted) must not lose *our* computed results —
        the merge simply proceeds without the unreadable content.
        """
        if not self.path.exists():
            return {}
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        return self._valid_entries(data)

    def save(self) -> None:
        """Atomically persist the cache (no-op if nothing changed).

        Concurrent sweeps may share one cache file: the read-merge-replace
        sequence runs under an exclusive advisory lock, and the re-read
        picks up records persisted by other processes since our
        :meth:`_load`.  Per key the newest record wins — ours for keys this
        process wrote, the disk's for keys it merely loaded.  :meth:`clear`
        skips the merge (an explicit clear must actually empty the file).
        """
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _save_lock(self.path.with_name(self.path.name + ".lock")):
            entries = dict(self._load())
            if not self._cleared:
                disk = self._reread_disk()
                merged = {**entries, **disk}
                for key in self._dirty_keys:
                    if key in entries:
                        merged[key] = entries[key]
                entries = merged
            payload = {"version": CACHE_VERSION,
                       "entries": {key: entries[key]
                                   for key in sorted(entries)}}
            fd, tmp_name = tempfile.mkstemp(dir=str(self.path.parent),
                                            prefix=self.path.name,
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True, indent=1)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self._entries = entries
        self._dirty = False
        self._dirty_keys.clear()
        self._cleared = False

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Look up one record, counting the hit or miss."""
        record = self._load().get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        self._load()[key] = record
        self._dirty_keys.add(key)
        self._dirty = True

    def clear(self) -> None:
        """Drop every entry — and any quarantined file from past corruption."""
        self._entries = {}
        self._dirty_keys.clear()
        self._cleared = True
        self._dirty = True
        if self.quarantine_dir.is_dir():
            for stale in self.quarantine_dir.iterdir():
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - racing cleaner
                    pass

    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()
